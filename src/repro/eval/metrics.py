"""Anomaly-detection evaluation metrics.

The paper evaluates accuracy with AUC-ROC: each detector is interpreted as a
binary classifier whose decision threshold is swept over the anomaly score,
and the area under the resulting ROC curve summarises its ability to rank
anomalous samples above normal ones.  Precision/recall/F1 utilities and the
event-level "point-adjust" protocol common in MTSAD literature are included
for completeness and for the extended analyses in the examples.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "roc_curve",
    "roc_auc_score",
    "precision_recall_curve",
    "average_precision_score",
    "f1_score",
    "best_f1_score",
    "point_adjust",
    "confusion_counts",
]


def _validate(scores: np.ndarray, labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=np.float64).ravel()
    labels = np.asarray(labels).ravel().astype(np.int64)
    if scores.shape[0] != labels.shape[0]:
        raise ValueError("scores and labels must have the same length")
    if scores.shape[0] == 0:
        raise ValueError("scores and labels are empty")
    finite = np.isfinite(scores)
    if not finite.all():
        scores = scores[finite]
        labels = labels[finite]
        if scores.size == 0:
            raise ValueError("all scores are non-finite")
    if not np.isin(labels, (0, 1)).all():
        raise ValueError("labels must be binary (0 or 1)")
    return scores, labels


def roc_curve(scores: np.ndarray, labels: np.ndarray
              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (false_positive_rate, true_positive_rate, thresholds).

    Thresholds are the distinct score values in decreasing order; a point is
    predicted anomalous when its score is >= the threshold.
    """
    scores, labels = _validate(scores, labels)
    n_positive = int(labels.sum())
    n_negative = labels.shape[0] - n_positive
    if n_positive == 0 or n_negative == 0:
        raise ValueError("ROC curve requires both positive and negative samples")

    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = labels[order]

    # Cumulative true/false positives at every position; collapse ties so a
    # threshold between equal scores is not counted twice.
    true_positives = np.cumsum(sorted_labels)
    false_positives = np.cumsum(1 - sorted_labels)
    distinct = np.where(np.diff(sorted_scores))[0]
    threshold_index = np.concatenate([distinct, [sorted_labels.size - 1]])

    tpr = true_positives[threshold_index] / n_positive
    fpr = false_positives[threshold_index] / n_negative
    thresholds = sorted_scores[threshold_index]

    # Prepend the (0, 0) origin.
    tpr = np.concatenate([[0.0], tpr])
    fpr = np.concatenate([[0.0], fpr])
    thresholds = np.concatenate([[np.inf], thresholds])
    return fpr, tpr, thresholds


def roc_auc_score(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve (threshold-free ranking quality in [0, 1])."""
    fpr, tpr, _ = roc_curve(scores, labels)
    return float(np.trapezoid(tpr, fpr))


def precision_recall_curve(scores: np.ndarray, labels: np.ndarray
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (precision, recall, thresholds) for decreasing thresholds."""
    scores, labels = _validate(scores, labels)
    n_positive = int(labels.sum())
    if n_positive == 0:
        raise ValueError("precision/recall requires at least one positive sample")

    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    true_positives = np.cumsum(sorted_labels)
    predicted_positives = np.arange(1, sorted_labels.size + 1)

    distinct = np.where(np.diff(sorted_scores))[0]
    threshold_index = np.concatenate([distinct, [sorted_labels.size - 1]])

    precision = true_positives[threshold_index] / predicted_positives[threshold_index]
    recall = true_positives[threshold_index] / n_positive
    thresholds = sorted_scores[threshold_index]
    return precision, recall, thresholds


def average_precision_score(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the precision-recall curve (step-wise interpolation)."""
    precision, recall, _ = precision_recall_curve(scores, labels)
    recall = np.concatenate([[0.0], recall])
    return float(np.sum((recall[1:] - recall[:-1]) * precision))


def confusion_counts(predictions: np.ndarray, labels: np.ndarray
                     ) -> Tuple[int, int, int, int]:
    """Return (true_positives, false_positives, true_negatives, false_negatives)."""
    predictions = np.asarray(predictions).astype(bool)
    labels = np.asarray(labels).astype(bool)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    tp = int(np.sum(predictions & labels))
    fp = int(np.sum(predictions & ~labels))
    tn = int(np.sum(~predictions & ~labels))
    fn = int(np.sum(~predictions & labels))
    return tp, fp, tn, fn


def f1_score(predictions: np.ndarray, labels: np.ndarray) -> float:
    """F1 of binary predictions against binary labels."""
    tp, fp, _, fn = confusion_counts(predictions, labels)
    denominator = 2 * tp + fp + fn
    return 2 * tp / denominator if denominator else 0.0


def best_f1_score(scores: np.ndarray, labels: np.ndarray,
                  n_thresholds: int = 200) -> Tuple[float, float]:
    """Best F1 over a grid of thresholds; returns (best_f1, best_threshold)."""
    scores, labels = _validate(scores, labels)
    candidates = np.quantile(scores, np.linspace(0.0, 1.0, n_thresholds))
    best = (0.0, float(candidates[0]))
    for threshold in np.unique(candidates):
        f1 = f1_score(scores > threshold, labels)
        if f1 > best[0]:
            best = (f1, float(threshold))
    return best


def point_adjust(predictions: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Point-adjust protocol: if any point of an anomalous event is detected,
    the whole event counts as detected.

    Returns the adjusted prediction array.  This is the standard (if lenient)
    event-level evaluation used across the MTSAD literature; the paper's
    AUC-ROC is point-wise, so point-adjust is only used in the extended
    analyses.
    """
    predictions = np.asarray(predictions).astype(bool).copy()
    labels = np.asarray(labels).astype(bool)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    n = labels.shape[0]
    index = 0
    while index < n:
        if labels[index]:
            end = index
            while end < n and labels[end]:
                end += 1
            if predictions[index:end].any():
                predictions[index:end] = True
            index = end
        else:
            index += 1
    return predictions.astype(np.int64)
