"""Ablation studies over VARADE's design choices.

The paper motivates two central choices that these ablations quantify:

* **Variational head vs deterministic forecasting.**  Section 3.1 reports
  that a compact deterministic forecaster fails to deliver usable anomaly
  scores, which is what motivated the probabilistic (variance-as-score)
  formulation.  :func:`run_variational_ablation` trains the same backbone
  with (a) the variational head scored by predicted variance and (b) a
  deterministic L2 forecasting score, and compares AUC-ROC.

* **Window size / depth coupling and the KL weight.**  The number of layers
  is tied to the window (N = log2 T) and the KL term is what calibrates the
  variance; :func:`run_window_sweep` and :func:`run_kl_weight_sweep` sweep
  them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.config import TrainingConfig, VaradeConfig
from ..core.detector import VaradeDetector
from ..data.dataset import BenchmarkDataset
from .metrics import roc_auc_score

__all__ = [
    "AblationResult",
    "run_variational_ablation",
    "run_kl_weight_sweep",
    "run_window_sweep",
]


@dataclass(frozen=True)
class AblationResult:
    """One ablation configuration and its accuracy."""

    label: str
    auc_roc: float
    parameters: int
    train_time_s: float

    def as_row(self) -> Dict[str, object]:
        return {
            "configuration": self.label,
            "auc_roc": self.auc_roc,
            "parameters": self.parameters,
            "train_time_s": self.train_time_s,
        }


def _training_config(epochs: int, max_windows: int, seed: int) -> TrainingConfig:
    return TrainingConfig(learning_rate=1e-3, epochs=epochs, batch_size=32,
                          max_train_windows=max_windows, seed=seed)


def _evaluate(detector: VaradeDetector, dataset: BenchmarkDataset,
              score_mode: str = "variance") -> float:
    """AUC-ROC of a trained detector under the requested scoring rule."""
    result = detector.score_stream(dataset.test)
    if score_mode == "variance":
        scores, labels = result.aligned(dataset.test_labels)
        return float(roc_auc_score(scores, labels))
    if score_mode != "l2":
        raise ValueError("score_mode must be 'variance' or 'l2'")
    # Deterministic forecasting score: euclidean norm of (mean - observed).
    from ..data.windowing import WindowDataset

    pairs = WindowDataset.from_stream(dataset.test, detector.config.window, horizon=1)
    errors = np.empty(len(pairs))
    for start in range(0, len(pairs), 256):
        stop = min(start + 256, len(pairs))
        mean, _ = detector.network.predict_distribution(pairs.contexts[start:stop])
        errors[start:stop] = np.linalg.norm(mean - pairs.targets[start:stop], axis=1)
    labels = dataset.test_labels[pairs.target_indices]
    return float(roc_auc_score(errors, labels))


def run_variational_ablation(dataset: BenchmarkDataset, window: int = 32,
                             feature_maps: int = 16, epochs: int = 3,
                             max_windows: int = 400, seed: int = 0
                             ) -> List[AblationResult]:
    """Variance-as-score vs deterministic L2 score on the same trained backbone."""
    config = VaradeConfig(n_channels=dataset.n_channels, window=window,
                          base_feature_maps=feature_maps, kl_weight=0.1)
    detector = VaradeDetector(config, _training_config(epochs, max_windows, seed))
    detector.fit(dataset.train)

    results = [
        AblationResult(
            label="variational (variance score)",
            auc_roc=_evaluate(detector, dataset, score_mode="variance"),
            parameters=detector.network.num_parameters(),
            train_time_s=detector.history.wall_time_s,
        ),
        AblationResult(
            label="deterministic (L2 forecast error)",
            auc_roc=_evaluate(detector, dataset, score_mode="l2"),
            parameters=detector.network.num_parameters(),
            train_time_s=detector.history.wall_time_s,
        ),
    ]
    return results


def run_kl_weight_sweep(dataset: BenchmarkDataset, kl_weights: Sequence[float] = (0.0, 0.01, 0.1, 1.0),
                        window: int = 32, feature_maps: int = 16, epochs: int = 3,
                        max_windows: int = 400, seed: int = 0) -> List[AblationResult]:
    """Sweep the KL weight (lambda in Eq. 7)."""
    results: List[AblationResult] = []
    for kl_weight in kl_weights:
        config = VaradeConfig(n_channels=dataset.n_channels, window=window,
                              base_feature_maps=feature_maps, kl_weight=float(kl_weight))
        detector = VaradeDetector(config, _training_config(epochs, max_windows, seed))
        detector.fit(dataset.train)
        results.append(AblationResult(
            label=f"kl_weight={kl_weight}",
            auc_roc=_evaluate(detector, dataset),
            parameters=detector.network.num_parameters(),
            train_time_s=detector.history.wall_time_s,
        ))
    return results


def run_window_sweep(dataset: BenchmarkDataset, windows: Sequence[int] = (16, 32, 64),
                     feature_maps: int = 16, epochs: int = 3,
                     max_windows: int = 400, seed: int = 0) -> List[AblationResult]:
    """Sweep the context window (and therefore the network depth, N = log2 T - 1)."""
    results: List[AblationResult] = []
    for window in windows:
        config = VaradeConfig(n_channels=dataset.n_channels, window=int(window),
                              base_feature_maps=feature_maps, kl_weight=0.1)
        detector = VaradeDetector(config, _training_config(epochs, max_windows, seed))
        detector.fit(dataset.train)
        results.append(AblationResult(
            label=f"window={window} ({config.n_layers} layers)",
            auc_roc=_evaluate(detector, dataset),
            parameters=detector.network.num_parameters(),
            train_time_s=detector.history.wall_time_s,
        ))
    return results
