"""Rendering experiment results as the paper's tables and figures.

Benchmarks and examples print their output through these helpers so every
entry point shows the same, directly comparable formatting: Table 2 rows per
board, the Figure 3 frequency-vs-accuracy series, and side-by-side
paper-vs-reproduction comparisons recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = [
    "format_table2",
    "format_figure3",
    "format_comparison",
    "PAPER_TABLE2",
    "PAPER_AUC",
]

# Reference values transcribed from the paper's Table 2 (used for the
# paper-vs-measured comparisons; AUC-ROC and inference Hz are the columns the
# paper's analysis focuses on).
PAPER_TABLE2: Dict[str, Dict[str, Dict[str, float]]] = {
    "Jetson Xavier NX": {
        "AR-LSTM": {"auc_roc": 0.719, "inference_hz": 5.200, "power_w": 11.288},
        "GBRF": {"auc_roc": 0.655, "inference_hz": 20.575, "power_w": 6.108},
        "AE": {"auc_roc": 0.810, "inference_hz": 2.247, "power_w": 6.010},
        "kNN": {"auc_roc": 0.718, "inference_hz": 1.116, "power_w": 7.208},
        "Isolation Forest": {"auc_roc": 0.629, "inference_hz": 4.568, "power_w": 5.777},
        "VARADE": {"auc_roc": 0.844, "inference_hz": 14.937, "power_w": 6.333},
    },
    "Jetson AGX Orin": {
        "AR-LSTM": {"auc_roc": 0.719, "inference_hz": 8.687, "power_w": 11.139},
        "GBRF": {"auc_roc": 0.655, "inference_hz": 44.128, "power_w": 9.741},
        "AE": {"auc_roc": 0.810, "inference_hz": 4.284, "power_w": 10.168},
        "kNN": {"auc_roc": 0.718, "inference_hz": 4.754, "power_w": 16.887},
        "Isolation Forest": {"auc_roc": 0.629, "inference_hz": 10.732, "power_w": 9.169},
        "VARADE": {"auc_roc": 0.844, "inference_hz": 26.461, "power_w": 10.220},
    },
}

#: Point-wise AUC-ROC per detector as reported by the paper (board independent).
PAPER_AUC: Dict[str, float] = {
    name: values["auc_roc"] for name, values in PAPER_TABLE2["Jetson Xavier NX"].items()
}


def _format_number(value, digits: int = 3) -> str:
    if value is None:
        return "."
    return f"{value:,.{digits}f}"


def format_table2(rows: Sequence[Dict[str, object]], title: Optional[str] = None) -> str:
    """Render Table-2 style rows (one board) as fixed-width text."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = (f"{'Model':<18}{'CPU %':>9}{'GPU %':>9}{'RAM MB':>12}{'GPU RAM MB':>12}"
              f"{'Power W':>10}{'AUC-ROC':>10}{'Hz':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{str(row['model']):<18}"
            f"{_format_number(row['cpu_percent'], 1):>9}"
            f"{_format_number(row['gpu_percent'], 1):>9}"
            f"{_format_number(row['ram_mb'], 0):>12}"
            f"{_format_number(row['gpu_ram_mb'], 0):>12}"
            f"{_format_number(row['power_w'], 2):>10}"
            f"{_format_number(row.get('auc_roc')):>10}"
            f"{_format_number(row.get('inference_hz'), 2):>10}"
        )
    return "\n".join(lines)


def format_figure3(points: Sequence[Dict[str, float]], title: Optional[str] = None) -> str:
    """Render the Figure-3 scatter series (Hz vs AUC, size = power) as text."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'Model':<18}{'Board':<20}{'Hz':>10}{'AUC-ROC':>10}{'Power W':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for point in sorted(points, key=lambda p: (p["board"], -p["inference_hz"])):
        lines.append(
            f"{point['model']:<18}{point['board']:<20}"
            f"{point['inference_hz']:>10.2f}{point['auc_roc']:>10.3f}{point['power_w']:>10.2f}"
        )
    return "\n".join(lines)


def format_comparison(measured: Dict[str, float], reference: Dict[str, float],
                      metric_name: str, title: Optional[str] = None) -> str:
    """Side-by-side paper-vs-reproduction comparison of one metric."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'Model':<18}{'paper ' + metric_name:>18}{'measured':>12}{'ratio':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for name in reference:
        paper_value = reference[name]
        measured_value = measured.get(name)
        if measured_value is None:
            lines.append(f"{name:<18}{paper_value:>18.3f}{'---':>12}{'---':>8}")
            continue
        ratio = measured_value / paper_value if paper_value else float("nan")
        lines.append(
            f"{name:<18}{paper_value:>18.3f}{measured_value:>12.3f}{ratio:>8.2f}"
        )
    return "\n".join(lines)
