"""The paper's evaluation protocol (Table 2, Figure 3) as a reusable harness.

The experiment follows Section 4 of the paper:

1. build the train (normal) and test (collision) streams, normalised to
   [-1, 1] with the training minima/maxima;
2. train every detector on the normal stream;
3. score the collision stream and compute AUC-ROC against the ground-truth
   collision labels;
4. estimate, for each edge board, the deployment metrics of the detector's
   *full-scale* (paper) configuration: inference frequency, power, CPU/GPU
   utilisation and RAM / GPU-RAM usage.

Accuracy therefore comes from actually training and scoring the models
(scaled to CPU budgets), while the board metrics come from the analytical
edge model applied to the architectures exactly as the paper sizes them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


from ..baselines.ar_lstm import ARLSTMConfig, ARLSTMDetector
from ..baselines.autoencoder import AutoencoderConfig, AutoencoderDetector
from ..baselines.gbrf import GBRFConfig, GBRFDetector
from ..baselines.isolation_forest import IsolationForestConfig, IsolationForestDetector
from ..baselines.knn import KNNConfig, KNNDetector
from ..baselines.registry import DETECTOR_NAMES, DetectorRegistry
from ..core.config import VaradeConfig
from ..core.detector import AnomalyDetector, InferenceCost, VaradeDetector
from ..data.dataset import BenchmarkDataset, DatasetConfig, build_benchmark_dataset
from ..edge.device import get_device
from ..edge.estimator import EdgeEstimator, EdgeMetrics
from .metrics import average_precision_score, best_f1_score, roc_auc_score

__all__ = [
    "ExperimentConfig",
    "DetectorEvaluation",
    "ExperimentResult",
    "paper_scale_costs",
    "run_full_experiment",
    "evaluate_detector",
]


def paper_scale_costs(n_channels: int = 86) -> Dict[str, InferenceCost]:
    """Per-inference cost profiles of the detectors at the paper's full scale.

    These drive the edge-board estimates: the reproduction trains scaled-down
    models for accuracy, but the deployment metrics in Table 2 describe the
    architectures exactly as the paper sizes them (T = 512, 128-1024 feature
    maps, 5x256 LSTM, 6 ResNet blocks, 30 boosted trees, k = 5 over the full
    training set, 100 isolation trees).
    """
    return {
        "VARADE": VaradeDetector(VaradeConfig.paper(n_channels)).inference_cost(),
        "AR-LSTM": ARLSTMDetector(ARLSTMConfig.paper(n_channels)).inference_cost(),
        "AE": AutoencoderDetector(AutoencoderConfig.paper(n_channels)).inference_cost(),
        "GBRF": GBRFDetector(GBRFConfig.paper(n_channels)).inference_cost(),
        "kNN": KNNDetector(KNNConfig.paper(n_channels)).inference_cost(),
        "Isolation Forest": IsolationForestDetector(
            IsolationForestConfig.paper(n_channels)
        ).inference_cost(),
    }


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of a full Table-2 / Figure-3 style experiment."""

    dataset: DatasetConfig = field(default_factory=DatasetConfig)
    window: int = 32
    neural_epochs: int = 3
    max_train_windows: int = 400
    varade_feature_maps: int = 16
    detectors: Sequence[str] = DETECTOR_NAMES
    devices: Sequence[str] = ("Jetson Xavier NX", "Jetson AGX Orin")
    sensor_rate_hz: float = 200.0
    seed: int = 0


@dataclass
class DetectorEvaluation:
    """Everything the experiment measures for one detector."""

    name: str
    auc_roc: float
    average_precision: float
    best_f1: float
    train_time_s: float
    host_score_hz: float
    samples_scored: int
    edge: Dict[str, EdgeMetrics] = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """All detector evaluations plus the dataset description."""

    evaluations: List[DetectorEvaluation]
    dataset_summary: str
    devices: List[str]

    def by_name(self, name: str) -> DetectorEvaluation:
        for evaluation in self.evaluations:
            if evaluation.name == name:
                return evaluation
        raise KeyError(f"no evaluation for detector {name!r}")

    # ------------------------------------------------------------------ #
    # Table 2 and Figure 3 views
    # ------------------------------------------------------------------ #
    def table2_rows(self, device_name: str) -> List[Dict[str, object]]:
        """Rows of Table 2 for one board, idle row first."""
        device = get_device(device_name)
        rows: List[Dict[str, object]] = [{
            "board": device.name,
            "model": "Idle",
            "cpu_percent": device.idle_cpu_percent,
            "gpu_percent": device.idle_gpu_percent,
            "ram_mb": device.idle_ram_mb,
            "gpu_ram_mb": device.idle_gpu_ram_mb,
            "power_w": device.idle_power_w,
            "auc_roc": None,
            "inference_hz": None,
        }]
        for evaluation in self.evaluations:
            metrics = evaluation.edge.get(device.name)
            if metrics is None:
                continue
            row = metrics.as_row()
            row["auc_roc"] = evaluation.auc_roc
            rows.append(row)
        return rows

    def figure3_series(self) -> List[Dict[str, float]]:
        """The (frequency, AUC, power) points of Figure 3 for every board/model."""
        points: List[Dict[str, float]] = []
        for evaluation in self.evaluations:
            for device_name, metrics in evaluation.edge.items():
                points.append({
                    "model": evaluation.name,
                    "board": device_name,
                    "inference_hz": metrics.inference_frequency_hz,
                    "auc_roc": evaluation.auc_roc,
                    "power_w": metrics.power_w,
                })
        return points


def evaluate_detector(detector: AnomalyDetector, dataset: BenchmarkDataset) -> DetectorEvaluation:
    """Train one detector on the normal stream and score the collision stream."""
    start = time.perf_counter()
    detector.fit(dataset.train)
    train_time = time.perf_counter() - start

    start = time.perf_counter()
    result = detector.score_stream(dataset.test)
    scoring_time = time.perf_counter() - start
    scores, labels = result.aligned(dataset.test_labels)

    auc = roc_auc_score(scores, labels)
    ap = average_precision_score(scores, labels)
    f1, _ = best_f1_score(scores, labels)
    n_scored = int(result.valid_mask.sum())
    host_hz = n_scored / scoring_time if scoring_time > 0 else float("inf")

    return DetectorEvaluation(
        name=detector.name,
        auc_roc=float(auc),
        average_precision=float(ap),
        best_f1=float(f1),
        train_time_s=float(train_time),
        host_score_hz=float(host_hz),
        samples_scored=n_scored,
    )


def run_full_experiment(config: Optional[ExperimentConfig] = None,
                        dataset: Optional[BenchmarkDataset] = None) -> ExperimentResult:
    """Run the full evaluation: every detector, every board.

    Detector construction goes through the declarative pipeline
    (:class:`repro.pipeline.Pipeline` over the registry's
    :meth:`~repro.baselines.registry.DetectorRegistry.deployment_spec`
    bridge), so the harness exercises the same front door as the CLI and
    the examples while producing bit-identical detectors to the legacy
    ``registry.specs(...)[i].build()`` path.
    """
    # Imported here: repro.eval loads before repro.pipeline in the package
    # __init__, so the pipeline must not be a module-level dependency.
    from ..pipeline import Pipeline

    config = config if config is not None else ExperimentConfig()
    if dataset is None:
        dataset = build_benchmark_dataset(config.dataset)

    registry = DetectorRegistry(
        n_channels=dataset.n_channels,
        window=config.window,
        neural_epochs=config.neural_epochs,
        max_train_windows=config.max_train_windows,
        varade_feature_maps=config.varade_feature_maps,
        seed=config.seed,
    )
    costs = paper_scale_costs(n_channels=86)
    estimators = {name: EdgeEstimator(get_device(name)) for name in config.devices}

    # Validate every requested name upfront (as registry.specs always did)
    # so a typo fails before any detector burns training time.
    deployments = [(name, registry.deployment_spec(name))
                   for name in config.detectors]

    evaluations: List[DetectorEvaluation] = []
    for name, deployment in deployments:
        detector = Pipeline.from_spec(deployment).build_detector()
        evaluation = evaluate_detector(detector, dataset)
        for device_name, estimator in estimators.items():
            evaluation.edge[estimator.device.name] = estimator.estimate(
                costs[name], name, max_rate_hz=config.sensor_rate_hz
            )
        evaluations.append(evaluation)

    return ExperimentResult(
        evaluations=evaluations,
        dataset_summary=dataset.summary(),
        devices=[get_device(name).name for name in config.devices],
    )
