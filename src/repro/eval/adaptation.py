"""Metrics for online drift adaptation.

AUC-ROC is threshold-free, so it cannot see the failure mode drift
adaptation exists for: a *threshold* calibrated on the pre-drift score
distribution mis-classifying everything after the distribution moves.
These metrics therefore work on the *alarm* streams of
:class:`~repro.edge.StreamingResult` runs, split at the ground-truth drift
onset of a :class:`~repro.data.drift.DriftScenario`:

* :func:`drift_detection_delay` -- samples between the true drift onset and
  the adaptation that answered it (flag or recalibration);
* :func:`alarm_precision` / :func:`false_alarm_rate` -- alarm quality over a
  sample range;
* :func:`compare_adaptation` -- the full frozen-vs-adaptive scorecard: the
  pre-drift precision both runtimes share, the post-drift precision each
  retains, and the fraction of pre-drift precision the adaptive runtime
  *recovers* -- the headline number of
  ``benchmarks/bench_drift_adaptation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..drift.policy import AdaptationEvent
from ..edge.runtime import StreamingResult

__all__ = [
    "drift_detection_delay",
    "alarm_precision",
    "false_alarm_rate",
    "AdaptationReport",
    "compare_adaptation",
]


def drift_detection_delay(events: Sequence[AdaptationEvent], drift_start: int,
                          *, of: str = "adapted") -> float:
    """Samples from the true drift onset to the first answering adaptation.

    ``of="adapted"`` (default) measures to the sample where the new
    threshold took effect -- the delay that matters operationally;
    ``of="flagged"`` measures to the underlying drift flag.  Only
    drift-triggered ``"recalibration"`` events count: a ``"refinement"`` is
    scheduled follow-up of an earlier adaptation, and crediting one would
    let the refinements of a *spurious pre-drift* adaptation masquerade as
    having answered the drift.  Events from before the onset are ignored;
    ``inf`` when no recalibration answered the drift at all.
    """
    if of not in ("adapted", "flagged"):
        raise ValueError("of must be 'adapted' or 'flagged'")
    if drift_start < 0:
        raise ValueError("drift_start must be non-negative")
    marks = [event.adapted_at if of == "adapted" else event.flagged_at
             for event in events if event.kind == "recalibration"]
    answered = [mark for mark in marks if mark >= drift_start]
    if not answered:
        return float("inf")
    return float(min(answered) - drift_start)


def _alarm_counts(result: StreamingResult, start: int, stop: Optional[int]
                  ) -> tuple[int, int, int, int]:
    """(tp, fp, fn, tn) over the *scored* samples of ``[start, stop)``."""
    stop = result.scores.shape[0] if stop is None else stop
    if not 0 <= start < stop <= result.scores.shape[0]:
        raise ValueError(f"invalid sample range [{start}, {stop})")
    mask = result.valid_mask.copy()
    mask[:start] = False
    mask[stop:] = False
    alarms = result.alarms[mask].astype(bool)
    labels = result.labels[mask].astype(bool)
    tp = int(np.count_nonzero(alarms & labels))
    fp = int(np.count_nonzero(alarms & ~labels))
    fn = int(np.count_nonzero(~alarms & labels))
    tn = int(np.count_nonzero(~alarms & ~labels))
    return tp, fp, fn, tn


def alarm_precision(result: StreamingResult, start: int = 0,
                    stop: Optional[int] = None) -> float:
    """Precision of the alarm stream over ``[start, stop)``.

    ``nan`` when the runtime raised no alarm in the range (precision of an
    empty prediction set is undefined).
    """
    tp, fp, _, _ = _alarm_counts(result, start, stop)
    if tp + fp == 0:
        return float("nan")
    return tp / (tp + fp)


def false_alarm_rate(result: StreamingResult, start: int = 0,
                     stop: Optional[int] = None) -> float:
    """Fraction of scored *normal* samples that alarmed over ``[start, stop)``."""
    _, fp, _, tn = _alarm_counts(result, start, stop)
    if fp + tn == 0:
        return float("nan")
    return fp / (fp + tn)


@dataclass(frozen=True)
class AdaptationReport:
    """Frozen-vs-adaptive scorecard around one ground-truth drift onset."""

    drift_start: int
    settle_samples: int               # post-drift samples excluded as settling time
    detection_delay: float            # samples to the answering recalibration
    pre_drift_precision: float        # shared by both runtimes (identical pre-drift)
    post_precision_frozen: float
    post_precision_adaptive: float
    pre_drift_false_alarm_rate: float
    post_far_frozen: float
    post_far_adaptive: float
    n_adaptations: int

    @property
    def precision_recovered(self) -> float:
        """Fraction of pre-drift precision the adaptive runtime retains post-drift.

        The frozen runtime's same ratio is
        ``post_precision_frozen / pre_drift_precision``; an adaptive runtime
        doing its job keeps this near 1.0 while the frozen one collapses.
        """
        if not np.isfinite(self.pre_drift_precision) or self.pre_drift_precision == 0:
            return float("nan")
        return self.post_precision_adaptive / self.pre_drift_precision

    @property
    def frozen_precision_retained(self) -> float:
        """Same ratio for the frozen baseline (the number to beat)."""
        if not np.isfinite(self.pre_drift_precision) or self.pre_drift_precision == 0:
            return float("nan")
        return self.post_precision_frozen / self.pre_drift_precision


def compare_adaptation(frozen: StreamingResult, adaptive: StreamingResult,
                       drift_start: int,
                       settle_samples: Optional[int] = None) -> AdaptationReport:
    """Score a frozen and an adaptive run of the *same* drifted stream.

    Both results must come from the same stream (same labels, same length).
    The post-drift window starts ``settle_samples`` after the drift onset
    -- the adaptation needs its confirmation window, cooldown and
    refinements before the threshold reaches its final form, and excluding
    the settling period from *both* runtimes keeps the comparison fair.
    The default settle time runs to the adaptive run's *last* adaptation
    event (the emergency recalibration is followed by scheduled
    refinements; only after the last one is the threshold steady), or zero
    when it never adapted, which charges the full post-drift window
    against it.
    """
    if frozen.scores.shape[0] != adaptive.scores.shape[0]:
        raise ValueError("frozen and adaptive results must cover the same stream")
    if not np.array_equal(frozen.labels, adaptive.labels):
        raise ValueError("frozen and adaptive results carry different labels")
    n_samples = frozen.scores.shape[0]
    if not 0 <= drift_start < n_samples:
        raise ValueError("drift_start must fall inside the stream")

    delay = drift_detection_delay(adaptive.adaptation_events, drift_start)
    if settle_samples is None:
        if np.isfinite(delay):
            answered = [event.adapted_at for event in adaptive.adaptation_events
                        if event.adapted_at >= drift_start]
            settle_samples = max(answered) - drift_start
        else:
            # No recalibration answered the drift: charge the adaptive run
            # the full post-drift window (refinements of a spurious
            # pre-drift adaptation do not buy settling time).
            settle_samples = 0
    post_start = min(drift_start + settle_samples, n_samples - 1)

    # An onset at sample 0 leaves no pre-drift window; the pre-drift
    # metrics are undefined rather than an invalid-range error.
    no_pre = drift_start == 0
    return AdaptationReport(
        drift_start=drift_start,
        settle_samples=settle_samples,
        detection_delay=delay,
        pre_drift_precision=float("nan") if no_pre
        else alarm_precision(frozen, 0, drift_start),
        post_precision_frozen=alarm_precision(frozen, post_start),
        post_precision_adaptive=alarm_precision(adaptive, post_start),
        pre_drift_false_alarm_rate=float("nan") if no_pre
        else false_alarm_rate(frozen, 0, drift_start),
        post_far_frozen=false_alarm_rate(frozen, post_start),
        post_far_adaptive=false_alarm_rate(adaptive, post_start),
        n_adaptations=len(adaptive.adaptation_events),
    )
