"""Evaluation layer: metrics (AUC-ROC, PR, F1, point-adjust), the Table-2 /
Figure-3 experiment harness, drift-adaptation metrics, ablations and result
formatting.
"""

from .adaptation import (
    AdaptationReport,
    alarm_precision,
    compare_adaptation,
    drift_detection_delay,
    false_alarm_rate,
)
from .ablation import (
    AblationResult,
    run_kl_weight_sweep,
    run_variational_ablation,
    run_window_sweep,
)
from .experiment import (
    DetectorEvaluation,
    ExperimentConfig,
    ExperimentResult,
    evaluate_detector,
    paper_scale_costs,
    run_full_experiment,
)
from .metrics import (
    average_precision_score,
    best_f1_score,
    confusion_counts,
    f1_score,
    point_adjust,
    precision_recall_curve,
    roc_auc_score,
    roc_curve,
)
from .reporting import (
    PAPER_AUC,
    PAPER_TABLE2,
    format_comparison,
    format_figure3,
    format_table2,
)

__all__ = [
    "AdaptationReport",
    "alarm_precision",
    "compare_adaptation",
    "drift_detection_delay",
    "false_alarm_rate",
    "AblationResult",
    "run_kl_weight_sweep",
    "run_variational_ablation",
    "run_window_sweep",
    "DetectorEvaluation",
    "ExperimentConfig",
    "ExperimentResult",
    "evaluate_detector",
    "paper_scale_costs",
    "run_full_experiment",
    "average_precision_score",
    "best_f1_score",
    "confusion_counts",
    "f1_score",
    "point_adjust",
    "precision_recall_curve",
    "roc_auc_score",
    "roc_curve",
    "PAPER_AUC",
    "PAPER_TABLE2",
    "format_comparison",
    "format_figure3",
    "format_table2",
]
