"""Neural-network layers used by VARADE and the neural baselines.

Layouts follow the channels-first convention: sequence inputs are
``(batch, channels, length)`` and dense inputs are ``(batch, features)``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from . import init as initializers
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "Linear",
    "Conv1d",
    "ConvTranspose1d",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Flatten",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "ResidualBlock1d",
    "GlobalAveragePool1d",
]


class Linear(Module):
    """Fully connected layer: ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear requires positive in_features and out_features")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            initializers.glorot_uniform((out_features, in_features), rng), name="weight"
        )
        self.bias = Parameter(initializers.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight.transpose())
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Linear({self.in_features}, {self.out_features})"


class Conv1d(Module):
    """1-D convolution over ``(batch, channels, length)`` inputs.

    VARADE uses kernel size 2 with stride 2, which halves the time dimension at
    every layer; this class supports arbitrary kernel/stride/padding so the
    auto-encoder baseline can reuse it.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if kernel_size <= 0 or stride <= 0:
            raise ValueError("Conv1d requires positive kernel_size and stride")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            initializers.he_uniform((out_channels, in_channels, kernel_size), rng), name="weight"
        )
        self.bias = Parameter(initializers.zeros((out_channels,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return x.conv1d(self.weight, self.bias, stride=self.stride, padding=self.padding)

    def output_length(self, length: int) -> int:
        """Length of the output sequence for an input of ``length`` samples."""
        return (length + 2 * self.padding - self.kernel_size) // self.stride + 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Conv1d({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride})")


class ConvTranspose1d(Module):
    """1-D transposed convolution (decoder side of the auto-encoder baseline)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if kernel_size <= 0 or stride <= 0:
            raise ValueError("ConvTranspose1d requires positive kernel_size and stride")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            initializers.he_uniform((in_channels, out_channels, kernel_size), rng), name="weight"
        )
        self.bias = Parameter(initializers.zeros((out_channels,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return x.conv_transpose1d(self.weight, self.bias, stride=self.stride,
                                  padding=self.padding)

    def output_length(self, length: int) -> int:
        """Length of the output sequence for an input of ``length`` samples."""
        return (length - 1) * self.stride - 2 * self.padding + self.kernel_size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ConvTranspose1d({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride})")


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    """Leaky rectified linear activation."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Identity(Module):
    """Pass-through module (useful for optional blocks)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Flatten(Module):
    """Flatten everything except the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=1)


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(x.data.dtype) / keep
        return x * Tensor(mask)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.gain = Parameter(initializers.ones((normalized_shape,)), name="gain")
        self.bias = Parameter(initializers.zeros((normalized_shape,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        variance = (centred * centred).mean(axis=-1, keepdims=True)
        normalised = centred / (variance + self.eps).sqrt()
        return normalised * self.gain + self.bias


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for index, module in enumerate(modules):
            self.register_module(f"layer{index}", module)
            self._layers.append(module)

    def append(self, module: Module) -> "Sequential":
        self.register_module(f"layer{len(self._layers)}", module)
        self._layers.append(module)
        return self

    def __iter__(self):
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x


class ResidualBlock1d(Module):
    """Pre-activation residual block with two 1-D convolutions.

    Used by the convolutional auto-encoder baseline, which the paper builds
    from six ResNet blocks [He et al., 2016].  When the input and output
    channel counts differ (or the block downsamples), a 1x1 convolution adapts
    the skip connection.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3,
                 stride: int = 1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        padding = kernel_size // 2
        self.conv1 = Conv1d(in_channels, out_channels, kernel_size, stride=stride,
                            padding=padding, rng=rng)
        self.conv2 = Conv1d(out_channels, out_channels, kernel_size, stride=1,
                            padding=padding, rng=rng)
        self.activation = ReLU()
        if in_channels != out_channels or stride != 1:
            self.shortcut: Module = Conv1d(in_channels, out_channels, 1, stride=stride, rng=rng)
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        residual = self.shortcut(x)
        out = self.activation(self.conv1(x))
        out = self.conv2(out)
        return self.activation(out + residual)


class GlobalAveragePool1d(Module):
    """Average over the time dimension of a ``(batch, channels, length)`` input."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=-1)
