"""A small from-scratch neural-network framework (autograd, layers, optimisers).

This package is the substrate that replaces TensorFlow in the VARADE
reproduction: reverse-mode automatic differentiation on numpy arrays, the
layers required by the paper's models (1-D convolutions, transposed
convolutions, dense layers, LSTMs, residual blocks), optimisers and loss
functions, plus model profiling utilities used by the edge cost model.
"""

from .tensor import Tensor, no_grad, is_grad_enabled
from .module import Module, Parameter
from .layers import (
    Conv1d,
    ConvTranspose1d,
    Dropout,
    Flatten,
    GlobalAveragePool1d,
    Identity,
    LayerNorm,
    LeakyReLU,
    Linear,
    ReLU,
    ResidualBlock1d,
    Sequential,
    Sigmoid,
    Tanh,
)
from .recurrent import LSTM, LSTMCell
from .optim import Adam, Optimizer, RMSprop, SGD, clip_grad_norm
from .losses import elbo_loss, gaussian_nll, kl_standard_normal, mae_loss, mse_loss
from .fastpath import FastForwardPlan, IncrementalForwardPlan, fast_conv1d
from .quant import (
    IncrementalQuantizedPlan,
    QuantizedConv1d,
    QuantizedForwardPlan,
    QuantizedLinear,
    dequantize,
    quantize_values,
    quantize_weight,
)
from .utils import LayerProfile, ModelProfile, count_parameters, profile_model
from . import init

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "Linear",
    "Conv1d",
    "ConvTranspose1d",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Flatten",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "ResidualBlock1d",
    "GlobalAveragePool1d",
    "LSTM",
    "LSTMCell",
    "Optimizer",
    "SGD",
    "Adam",
    "RMSprop",
    "clip_grad_norm",
    "mse_loss",
    "mae_loss",
    "gaussian_nll",
    "kl_standard_normal",
    "elbo_loss",
    "FastForwardPlan",
    "IncrementalForwardPlan",
    "fast_conv1d",
    "IncrementalQuantizedPlan",
    "QuantizedConv1d",
    "QuantizedForwardPlan",
    "QuantizedLinear",
    "dequantize",
    "quantize_values",
    "quantize_weight",
    "LayerProfile",
    "ModelProfile",
    "profile_model",
    "count_parameters",
    "init",
]
