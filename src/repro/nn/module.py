"""Module / Parameter abstractions for the :mod:`repro.nn` framework.

A :class:`Module` owns :class:`Parameter` tensors and child modules, mirroring
the structure of common deep-learning frameworks so that the VARADE network
and the neural baselines can be expressed as small, composable building
blocks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a trainable model parameter."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True)
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(name={self.name!r}, shape={self.shape})"


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically for optimisation, state
    (de)serialisation and parameter counting.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, parameter: Parameter) -> None:
        """Explicitly register a parameter (used by container modules)."""
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)

    def register_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module (used by container modules)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """Return every trainable parameter in this module and its children."""
        found: List[Parameter] = []
        seen: set[int] = set()
        for _, parameter in self.named_parameters():
            if id(parameter) not in seen:
                seen.add(id(parameter))
                found.append(parameter)
        return found

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs."""
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for child_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants, depth first."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # Mode switching and gradient handling
    # ------------------------------------------------------------------ #
    def train(self) -> "Module":
        """Put the module (and children) into training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Put the module (and children) into inference mode."""
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every parameter."""
        for parameter in self.parameters():
            parameter.grad = None

    # ------------------------------------------------------------------ #
    # State (de)serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of parameter names to array copies."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values from a mapping produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=parameter.data.dtype)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: expected {parameter.data.shape}, "
                    f"got {value.shape}"
                )
            parameter.data = value.copy()

    # ------------------------------------------------------------------ #
    # Forward dispatch
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
