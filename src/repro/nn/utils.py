"""Utilities for model analysis: parameter counting, FLOP estimation and
activation-traffic accounting.

These feed the edge-device cost model (:mod:`repro.edge`), which estimates
inference frequency and power from the amount of arithmetic and memory
traffic a model performs per inference -- the quantity the paper argues
dominates CNN inference speed on edge hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .layers import (Conv1d, ConvTranspose1d, Dropout, Flatten,
                     GlobalAveragePool1d, Identity, LayerNorm, LeakyReLU,
                     Linear, ReLU, ResidualBlock1d, Sequential, Sigmoid, Tanh)
from .module import Module
from .recurrent import LSTM, LSTMCell

__all__ = ["LayerProfile", "ModelProfile", "profile_model", "count_parameters"]

_BYTES_PER_VALUE = 4  # float32 on the edge device


@dataclass
class LayerProfile:
    """Per-layer cost summary."""

    name: str
    kind: str
    output_shape: Tuple[int, ...]
    parameters: int
    flops: int
    activation_bytes: int


@dataclass
class ModelProfile:
    """Aggregate cost summary of one forward pass of a model."""

    layers: List[LayerProfile] = field(default_factory=list)

    @property
    def total_parameters(self) -> int:
        return sum(layer.parameters for layer in self.layers)

    @property
    def total_flops(self) -> int:
        return sum(layer.flops for layer in self.layers)

    @property
    def total_activation_bytes(self) -> int:
        return sum(layer.activation_bytes for layer in self.layers)

    @property
    def parameter_bytes(self) -> int:
        return self.total_parameters * _BYTES_PER_VALUE

    @property
    def memory_traffic_bytes(self) -> int:
        """Bytes moved per inference: weights read once plus activations written."""
        return self.parameter_bytes + self.total_activation_bytes

    def summary_lines(self) -> List[str]:
        """Human-readable layer table (used by the Figure-1 benchmark)."""
        lines = [f"{'layer':<28}{'kind':<20}{'output':<20}{'params':>12}{'MFLOPs':>10}"]
        for layer in self.layers:
            lines.append(
                f"{layer.name:<28}{layer.kind:<20}{str(layer.output_shape):<20}"
                f"{layer.parameters:>12,}{layer.flops / 1e6:>10.2f}"
            )
        lines.append(
            f"{'TOTAL':<28}{'':<20}{'':<20}{self.total_parameters:>12,}"
            f"{self.total_flops / 1e6:>10.2f}"
        )
        return lines


def count_parameters(module: Module) -> int:
    """Number of scalar trainable parameters in ``module``."""
    return module.num_parameters()


def _activation_bytes(shape: Tuple[int, ...]) -> int:
    total = 1
    for dim in shape:
        total *= dim
    return total * _BYTES_PER_VALUE


def _profile_layer(module: Module, name: str, input_shape: Tuple[int, ...],
                   profiles: List[LayerProfile]) -> Tuple[int, ...]:
    """Append the profile of ``module`` and return its output shape.

    ``input_shape`` excludes the batch dimension: ``(channels, length)`` for
    sequence modules and ``(features,)`` for dense modules.
    """
    kind = type(module).__name__
    params = sum(p.size for p in module._parameters.values() if p is not None)

    if isinstance(module, Conv1d):
        channels, length = input_shape
        out_length = module.output_length(length)
        out_shape = (module.out_channels, out_length)
        flops = 2 * module.out_channels * module.in_channels * module.kernel_size * out_length
        params = module.num_parameters()
    elif isinstance(module, ConvTranspose1d):
        channels, length = input_shape
        out_length = module.output_length(length)
        out_shape = (module.out_channels, out_length)
        flops = 2 * module.out_channels * module.in_channels * module.kernel_size * length
        params = module.num_parameters()
    elif isinstance(module, Linear):
        out_shape = input_shape[:-1] + (module.out_features,)
        positions = 1
        for dim in input_shape[:-1]:
            positions *= dim
        flops = 2 * module.in_features * module.out_features * positions
        params = module.num_parameters()
    elif isinstance(module, LSTM):
        length, features = input_shape
        hidden = module.hidden_size
        per_step = 0
        for cell in module.cells:
            per_step += 2 * 4 * hidden * (cell.input_size + hidden)
        flops = per_step * length
        out_shape = (length, hidden)
        params = module.num_parameters()
    elif isinstance(module, LSTMCell):
        hidden = module.hidden_size
        flops = 2 * 4 * hidden * (module.input_size + hidden)
        out_shape = (hidden,)
        params = module.num_parameters()
    elif isinstance(module, Flatten):
        total = 1
        for dim in input_shape:
            total *= dim
        out_shape = (total,)
        flops = 0
    elif isinstance(module, GlobalAveragePool1d):
        channels, length = input_shape
        out_shape = (channels,)
        flops = channels * length
    elif isinstance(module, (ReLU, LeakyReLU, Tanh, Sigmoid, Dropout, Identity)):
        out_shape = input_shape
        total = 1
        for dim in input_shape:
            total *= dim
        flops = total
    elif isinstance(module, LayerNorm):
        out_shape = input_shape
        total = 1
        for dim in input_shape:
            total *= dim
        flops = 5 * total
        params = module.num_parameters()
    elif isinstance(module, ResidualBlock1d):
        shape = input_shape
        shape = _profile_layer(module.conv1, f"{name}.conv1", shape, profiles)
        shape = _profile_layer(module.conv2, f"{name}.conv2", shape, profiles)
        if not isinstance(module.shortcut, Identity):
            _profile_layer(module.shortcut, f"{name}.shortcut", input_shape, profiles)
        return shape
    elif isinstance(module, Sequential):
        shape = input_shape
        for index, layer in enumerate(module):
            shape = _profile_layer(layer, f"{name}.{index}", shape, profiles)
        return shape
    else:
        # Fallback: assume shape-preserving with negligible compute.
        out_shape = input_shape
        flops = 0

    profiles.append(LayerProfile(
        name=name,
        kind=kind,
        output_shape=out_shape,
        parameters=params,
        flops=flops,
        activation_bytes=_activation_bytes(out_shape),
    ))
    return out_shape


def profile_model(module: Module, input_shape: Tuple[int, ...],
                  name: Optional[str] = None) -> ModelProfile:
    """Estimate per-layer parameters, FLOPs and activation traffic.

    ``input_shape`` excludes the batch dimension (e.g. ``(channels, window)``
    for VARADE).  Composite modules (Sequential, residual blocks) are expanded
    recursively; unknown custom modules are profiled through their registered
    children when they expose a ``profile_children`` hook, otherwise treated
    as shape-preserving.
    """
    profile = ModelProfile()
    root_name = name or type(module).__name__
    hook = getattr(module, "profile_children", None)
    if callable(hook):
        hook(root_name, input_shape, profile.layers, _profile_layer)
    else:
        _profile_layer(module, root_name, input_shape, profile.layers)
    return profile
