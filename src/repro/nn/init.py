"""Weight initialisation schemes for :mod:`repro.nn` modules.

The schemes mirror the defaults used by common deep-learning frameworks so
the reproduced models start from a comparable operating point to the paper's
TensorFlow implementation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "glorot_uniform",
    "glorot_normal",
    "he_uniform",
    "he_normal",
    "uniform",
    "zeros",
    "ones",
    "orthogonal",
]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in and fan-out for a weight tensor shape.

    Linear weights are ``(out, in)``; convolution weights are
    ``(out_channels, in_channels, kernel)``.
    """
    if len(shape) < 1:
        raise ValueError("weight shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive_field = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_out = shape[0] * receptive_field
    fan_in = shape[1] * receptive_field
    return fan_in, fan_out


def glorot_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation (TensorFlow's Dense/Conv default)."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform initialisation, suited to ReLU networks such as VARADE."""
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal initialisation."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def uniform(shape: Tuple[int, ...], rng: np.random.Generator, low: float = -0.1,
            high: float = 0.1) -> np.ndarray:
    """Plain uniform initialisation in ``[low, high)``."""
    return rng.uniform(low, high, size=shape)


def zeros(shape: Tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zeros initialisation (biases)."""
    return np.zeros(shape)


def ones(shape: Tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-ones initialisation (normalisation gains)."""
    return np.ones(shape)


def orthogonal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialisation, commonly used for recurrent weight matrices."""
    if len(shape) < 2:
        raise ValueError("orthogonal initialisation requires at least a 2-D shape")
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols].reshape(shape)
