"""Gradient-based optimisers for :mod:`repro.nn` parameters.

The paper trains its neural detectors with Adam at a fixed learning rate of
1e-5; SGD and RMSprop are provided for ablations and tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "RMSprop", "clip_grad_norm"]


class Optimizer:
    """Base class holding a parameter list and a zero-grad helper."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter."""
        for parameter in self.parameters:
            parameter.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity = self._velocity.get(id(parameter))
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(parameter)] = velocity
                grad = velocity
            parameter.data = parameter.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            key = id(parameter)
            m = self._first_moment.get(key)
            v = self._second_moment.get(key)
            if m is None:
                m = np.zeros_like(parameter.data)
                v = np.zeros_like(parameter.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._first_moment[key] = m
            self._second_moment[key] = v
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class RMSprop(Optimizer):
    """RMSprop optimiser."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 alpha: float = 0.99, eps: float = 1e-8) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= alpha < 1.0:
            raise ValueError("alpha must be in [0, 1)")
        self.alpha = alpha
        self.eps = eps
        self._square_avg: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            key = id(parameter)
            avg = self._square_avg.get(key)
            if avg is None:
                avg = np.zeros_like(parameter.data)
            avg = self.alpha * avg + (1.0 - self.alpha) * grad * grad
            self._square_avg[key] = avg
            parameter.data = parameter.data - self.lr * grad / (np.sqrt(avg) + self.eps)


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm; useful to stabilise LSTM training.
    """
    parameters = [p for p in parameters if p.grad is not None]
    if not parameters:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for parameter in parameters:
            parameter.grad = parameter.grad * scale
    return total
