"""Recurrent layers: LSTM cell and multi-layer LSTM.

The AR-LSTM baseline in the paper uses five stacked LSTM layers with 256
feature maps followed by two fully connected layers.  This module provides
the recurrent machinery on top of the autograd engine.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from . import init as initializers
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """A single LSTM cell following the standard formulation.

    Gates are computed jointly from the input and previous hidden state:

    ``i, f, g, o = split(x W_ih^T + h W_hh^T + b)``

    with sigmoid activations for the input/forget/output gates, ``tanh`` for
    the candidate cell state, and a unit forget-gate bias to aid training on
    long windows.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("LSTMCell requires positive input_size and hidden_size")
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            initializers.glorot_uniform((4 * hidden_size, input_size), rng), name="weight_ih"
        )
        self.weight_hh = Parameter(
            initializers.orthogonal((4 * hidden_size, hidden_size), rng), name="weight_hh"
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size:2 * hidden_size] = 1.0  # forget-gate bias
        self.bias = Parameter(bias, name="bias")

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        """Advance one time step.

        ``x`` is ``(batch, input_size)``; ``state`` is ``(h, c)`` each of shape
        ``(batch, hidden_size)``.  Returns the new ``(h, c)``.
        """
        h_prev, c_prev = state
        gates = x.matmul(self.weight_ih.transpose()) + h_prev.matmul(self.weight_hh.transpose())
        gates = gates + self.bias
        hidden = self.hidden_size
        i_gate = gates[:, 0 * hidden:1 * hidden].sigmoid()
        f_gate = gates[:, 1 * hidden:2 * hidden].sigmoid()
        g_gate = gates[:, 2 * hidden:3 * hidden].tanh()
        o_gate = gates[:, 3 * hidden:4 * hidden].sigmoid()
        c_new = f_gate * c_prev + i_gate * g_gate
        h_new = o_gate * c_new.tanh()
        return h_new, c_new

    def initial_state(self, batch_size: int) -> Tuple[Tensor, Tensor]:
        """Zero hidden and cell state for ``batch_size`` sequences."""
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros.copy()), Tensor(zeros.copy())


class LSTM(Module):
    """A stack of LSTM layers operating on ``(batch, length, features)`` input."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if num_layers <= 0:
            raise ValueError("LSTM requires at least one layer")
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.cells: List[LSTMCell] = []
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            cell = LSTMCell(in_size, hidden_size, rng=rng)
            self.register_module(f"cell{layer}", cell)
            self.cells.append(cell)

    def forward(self, x: Tensor,
                states: Optional[List[Tuple[Tensor, Tensor]]] = None
                ) -> Tuple[Tensor, List[Tuple[Tensor, Tensor]]]:
        """Run the full sequence.

        Returns ``(outputs, final_states)`` where ``outputs`` has shape
        ``(batch, length, hidden_size)`` (the top layer's hidden states) and
        ``final_states`` holds the last ``(h, c)`` pair per layer.
        """
        if x.ndim != 3:
            raise ValueError("LSTM expects input of shape (batch, length, features)")
        batch, length, _ = x.shape
        if states is None:
            states = [cell.initial_state(batch) for cell in self.cells]
        elif len(states) != self.num_layers:
            raise ValueError(f"expected {self.num_layers} states, got {len(states)}")

        outputs: List[Tensor] = []
        current_states = list(states)
        for step in range(length):
            step_input = x[:, step, :]
            for layer, cell in enumerate(self.cells):
                h, c = cell(step_input, current_states[layer])
                current_states[layer] = (h, c)
                step_input = h
            outputs.append(step_input)
        stacked = Tensor.stack(outputs, axis=1)
        return stacked, current_states

    def last_hidden(self, x: Tensor) -> Tensor:
        """Convenience helper: hidden state of the top layer at the final step."""
        outputs, _ = self.forward(x)
        return outputs[:, -1, :]
