"""Post-training int8 quantization of Conv1d/Linear forecasters.

The paper benchmarks VARADE against int8-quantized rivals, and the related
edge-AD literature (PaSTe, squeezed convolutional VAEs) treats int8
post-training quantization as *the* enabling step for on-device inference.
This module provides that step for the :mod:`repro.nn` stack:

* :func:`quantize_weight` -- symmetric per-output-channel int8 quantization
  of a weight array: one positive scale per output channel, integer codes in
  ``[-127, 127]``.  Symmetric scales keep the matmul zero-point free, which
  is what lets the integer products accumulate without cross terms.
* :func:`quantize_values` / :func:`dequantize` -- the elementwise
  quantize/dequantize pair.  The round-trip error is bounded by half a scale
  step per element (asserted by the hypothesis suite in
  ``tests/test_nn/test_quant.py``); all-zero and constant channels produce
  finite, positive scales rather than nan/inf.
* :class:`QuantizedConv1d` / :class:`QuantizedLinear` -- inference-only
  parameter containers: int8 codes, per-channel weight scales, a per-tensor
  activation scale calibrated from representative data, and the float bias.
* :class:`QuantizedForwardPlan` -- the int8 mirror of
  :class:`repro.nn.fastpath.FastForwardPlan`: a preallocated-buffer forward
  pass over a ``Conv1d``/``ReLU`` backbone plus linear heads in which every
  convolution and head is an int8 x int8 matmul with float accumulators.

Execution model
---------------

NumPy has no int8 BLAS kernel, so the integer matmuls are executed the way
int8 inference is emulated on hardware without integer dot-product units:
the int8 codes are staged in float32 operands and contracted with a float32
GEMM.  Every product of two codes is an integer of magnitude at most
``127 * 127 = 16129`` and every partial sum stays below ``2**24`` for the
reduction depths used here (asserted at plan construction), so the float32
accumulator represents each intermediate value *exactly* -- the arithmetic
is bit-for-bit integer arithmetic, merely carried in float registers, and
therefore independent of the GEMM's summation order.  A given input row
produces bit-identical outputs in any batch, the same contract the float
fast path gives the fleet-parity suite.

The quantized plan additionally keeps the batch dimension *inside* the GEMM
(activations are laid out ``(channels, batch, length)`` so each layer is one
large ``(O, C*K) x (C*K, N*L)`` contraction rather than N small ones), which
together with the halved memory traffic of float32 staging is where the
measured speed-up over the float64 fast path comes from
(``benchmarks/bench_quantized_inference.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .fastpath import fast_conv1d
from .layers import Conv1d, Linear, ReLU, Sequential

__all__ = [
    "QMAX",
    "quantize_weight",
    "quantize_values",
    "dequantize",
    "QuantizedConv1d",
    "QuantizedLinear",
    "QuantizedForwardPlan",
    "IncrementalQuantizedPlan",
]

#: largest int8 code used by the symmetric scheme (the -128 code is unused so
#: the grid is symmetric around zero).
QMAX = 127

#: float32 holds integers exactly up to 2**24; partial sums of int8 products
#: must stay below this for the float-carried integer arithmetic to be exact.
_EXACT_ACCUMULATOR_LIMIT = float(2 ** 24)

#: how many distinct batch sizes a plan keeps buffers for (mirrors
#: repro.nn.fastpath._MAX_CACHED_BATCH_SIZES).
_MAX_CACHED_BATCH_SIZES = 8

#: smallest usable quantization scale: the float32 minimum normal, so every
#: scale's reciprocal (and every ratio of scales) is representable in float32.
_MIN_SCALE = float(np.finfo(np.float32).tiny)


def _safe_scale(amax: np.ndarray) -> np.ndarray:
    """Scale(s) from max-magnitude statistics; zero ranges map to scale 1.

    A channel that is identically zero (or an activation tensor that never
    fires) has ``amax == 0``; dividing by a zero scale would produce nan/inf
    codes, so those entries fall back to a scale of one, under which every
    value in the degenerate channel quantizes exactly to code 0.
    """
    amax = np.asarray(amax, dtype=np.float64)
    if not np.all(np.isfinite(amax)):
        raise ValueError("cannot derive quantization scales from non-finite values")
    scales = amax / QMAX
    # Guard the quotient, not just amax: a subnormal amax underflows the
    # division to 0.0, which would poison the codes with inf.  The floor is
    # the float32 minimum normal, so the cached float32 reciprocals and
    # requantization multipliers derived from any scale stay finite; a range
    # this far below the representable grid is a dead channel anyway, and the
    # unit fallback quantizes it exactly to code 0.
    return np.where(scales >= _MIN_SCALE, scales, 1.0)


def quantize_weight(weight: np.ndarray, channel_axis: int = 0
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-output-channel int8 quantization of a weight array.

    Returns ``(codes, scales)`` where ``codes`` is an int8 array of
    ``weight``'s shape and ``scales`` has one positive float per slice along
    ``channel_axis`` such that ``codes * scale ~= weight`` with at most half
    a scale step of error per element.
    """
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim < 1:
        raise ValueError("quantize_weight expects an array with at least one axis")
    reduce_axes = tuple(axis for axis in range(weight.ndim) if axis != channel_axis % weight.ndim)
    amax = np.abs(weight).max(axis=reduce_axes) if reduce_axes else np.abs(weight)
    scales = _safe_scale(amax)
    shape = [1] * weight.ndim
    shape[channel_axis % weight.ndim] = -1
    codes = quantize_values(weight, scales.reshape(shape))
    return codes, scales


def quantize_values(values: np.ndarray, scale) -> np.ndarray:
    """Quantize ``values`` to int8 codes under ``scale`` (round-to-nearest-even).

    ``scale`` broadcasts against ``values``; values outside ``+-QMAX * scale``
    saturate.  (:class:`QuantizedForwardPlan` quantizes in place inside its
    own buffers with the same round/clip semantics.)
    """
    codes = np.rint(np.asarray(values, dtype=np.float64) / scale)
    np.clip(codes, -QMAX, QMAX, out=codes)
    return codes.astype(np.int8)


def dequantize(codes: np.ndarray, scale, channel_axis: Optional[int] = None) -> np.ndarray:
    """Map int8 codes back to float values (``codes * scale``)."""
    codes = np.asarray(codes, dtype=np.float64)
    scale = np.asarray(scale, dtype=np.float64)
    if channel_axis is not None and scale.ndim == 1:
        shape = [1] * codes.ndim
        shape[channel_axis % codes.ndim] = -1
        scale = scale.reshape(shape)
    return codes * scale


class QuantizedConv1d:
    """Inference-only int8 convolution parameters (codes + scales + bias)."""

    def __init__(self, weight_q: np.ndarray, weight_scale: np.ndarray,
                 bias: Optional[np.ndarray], stride: int, padding: int,
                 act_scale: float) -> None:
        weight_q = np.asarray(weight_q, dtype=np.int8)
        if weight_q.ndim != 3:
            raise ValueError("QuantizedConv1d weight codes must be (O, C, K)")
        if padding != 0:
            raise ValueError("QuantizedForwardPlan backbones use padding 0")
        self.weight_q = weight_q
        self.weight_scale = np.asarray(weight_scale, dtype=np.float64).reshape(-1)
        if self.weight_scale.shape[0] != weight_q.shape[0]:
            raise ValueError("one weight scale per output channel is required")
        if not np.all(np.isfinite(self.weight_scale)) \
                or np.any(self.weight_scale < _MIN_SCALE):
            raise ValueError(
                "weight scales must be finite and at least the float32 minimum "
                "normal (their reciprocals must be representable)"
            )
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        self.stride = int(stride)
        self.padding = int(padding)
        self.act_scale = float(act_scale)
        if not np.isfinite(self.act_scale) or self.act_scale < _MIN_SCALE:
            raise ValueError(
                "activation scale must be finite and at least the float32 "
                "minimum normal"
            )
        self.out_channels, self.in_channels, self.kernel_size = weight_q.shape
        # Float32 staging copy of the integer codes for the GEMM.  (The
        # accumulator's dequantization factors live in the plan's fused
        # requantization constants, not here.)
        self._weight_f32 = np.ascontiguousarray(
            weight_q.reshape(self.out_channels, -1).astype(np.float32)
        )

    @classmethod
    def from_layer(cls, layer: Conv1d, act_scale: float) -> "QuantizedConv1d":
        codes, scales = quantize_weight(layer.weight.data, channel_axis=0)
        bias = None if layer.bias is None else layer.bias.data
        return cls(codes, scales, bias, layer.stride, layer.padding, act_scale)

    def output_length(self, length: int) -> int:
        return (length + 2 * self.padding - self.kernel_size) // self.stride + 1


class QuantizedLinear:
    """Inference-only int8 dense parameters (codes + scales + bias)."""

    def __init__(self, weight_q: np.ndarray, weight_scale: np.ndarray,
                 bias: Optional[np.ndarray], act_scale: float) -> None:
        weight_q = np.asarray(weight_q, dtype=np.int8)
        if weight_q.ndim != 2:
            raise ValueError("QuantizedLinear weight codes must be (O, I)")
        self.weight_q = weight_q
        self.weight_scale = np.asarray(weight_scale, dtype=np.float64).reshape(-1)
        if self.weight_scale.shape[0] != weight_q.shape[0]:
            raise ValueError("one weight scale per output feature is required")
        if not np.all(np.isfinite(self.weight_scale)) \
                or np.any(self.weight_scale < _MIN_SCALE):
            raise ValueError(
                "weight scales must be finite and at least the float32 minimum "
                "normal (their reciprocals must be representable)"
            )
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        self.act_scale = float(act_scale)
        if not np.isfinite(self.act_scale) or self.act_scale < _MIN_SCALE:
            raise ValueError(
                "activation scale must be finite and at least the float32 "
                "minimum normal"
            )
        self.out_features, self.in_features = weight_q.shape
        # (I, O) float32 staging copy so the head GEMM is (N, I) @ (I, O).
        self._weight_f32_t = np.ascontiguousarray(weight_q.T.astype(np.float32))
        self._dequant = (self.act_scale * self.weight_scale).astype(np.float32)

    @classmethod
    def from_layer(cls, layer: Linear, act_scale: float) -> "QuantizedLinear":
        codes, scales = quantize_weight(layer.weight.data, channel_axis=0)
        bias = None if layer.bias is None else layer.bias.data
        return cls(codes, scales, bias, act_scale)


def _collect_calibration_ranges(backbone: Sequential, in_channels: int, in_length: int,
                                calibration: np.ndarray) -> Tuple[List[float], float]:
    """Max-abs of the float input to every conv and to the head block.

    Runs the float backbone over the calibration batch layer by layer and
    records the dynamic range each quantized operand must cover.
    """
    x = np.ascontiguousarray(np.asarray(calibration, dtype=np.float64))
    if x.ndim != 3 or x.shape[1] != in_channels or x.shape[2] != in_length:
        raise ValueError(
            f"calibration inputs must have shape (n, {in_channels}, {in_length}), "
            f"got {x.shape}"
        )
    if x.shape[0] == 0:
        raise ValueError("calibration requires at least one input window")
    conv_ranges: List[float] = []
    current = x
    for layer in backbone:
        if isinstance(layer, Conv1d):
            conv_ranges.append(float(np.abs(current).max()))
            current = fast_conv1d(current, layer.weight.data,
                                  None if layer.bias is None else layer.bias.data,
                                  stride=layer.stride, padding=layer.padding)
        elif isinstance(layer, ReLU):
            current = np.maximum(current, 0.0)
        else:
            raise TypeError(
                f"quantization supports Conv1d/ReLU backbones, got {type(layer).__name__}"
            )
    head_range = float(np.abs(current).max())
    return conv_ranges, head_range


class QuantizedForwardPlan:
    """Int8 mirror of :class:`repro.nn.fastpath.FastForwardPlan`.

    The plan executes a ``Conv1d``/``ReLU`` backbone plus linear heads with
    per-output-channel int8 weights and per-tensor int8 activations.
    Activations live in ``(channels, batch, length)`` float32 buffers so each
    convolution is a single ``(O, C*K) @ (C*K, N*L)`` GEMM over staged
    integer codes; each accumulator is mapped to its consumer's codes with a
    single fused requantization pass (per-channel scale + bias + ReLU folded
    into the clip lower bound + round), so intermediate float activations are
    never materialized and the elementwise traffic stays below the float
    path's.

    Build it from a trained float network with :meth:`from_network` (which
    calibrates the activation scales on representative windows) or directly
    from stored :class:`QuantizedConv1d`/:class:`QuantizedLinear` parameters
    (the deserialization path).

    .. warning::
       Like the float plan, :meth:`forward` returns views of internal buffers
       that the next same-batch-size call overwrites; callers must copy what
       they keep.
    """

    def __init__(self, conv_layers: List[QuantizedConv1d],
                 heads: Mapping[str, QuantizedLinear],
                 in_channels: int, in_length: int,
                 steps: Optional[List[str]] = None) -> None:
        if not heads:
            raise ValueError("QuantizedForwardPlan needs at least one head")
        if steps is None:
            steps = []
            for _ in conv_layers:
                steps.extend(["conv", "relu"])
        if [step for step in steps if step == "conv"] != ["conv"] * len(conv_layers):
            raise ValueError("steps must reference each conv layer exactly once, in order")
        if any(step not in ("conv", "relu") for step in steps):
            raise ValueError("steps may only contain 'conv' and 'relu'")
        self._steps = list(steps)
        self._convs = list(conv_layers)
        self._shapes: List[Tuple[int, int]] = []
        channels, length = in_channels, in_length
        for conv in self._convs:
            if conv.in_channels != channels:
                raise ValueError(
                    f"backbone expects {conv.in_channels} channels, carrying {channels}"
                )
            length = conv.output_length(length)
            if length <= 0:
                raise ValueError("backbone reduces the sequence to zero length")
            channels = conv.out_channels
            self._shapes.append((channels, length))
            depth = conv.in_channels * conv.kernel_size
            if depth * QMAX * QMAX >= _EXACT_ACCUMULATOR_LIMIT:
                raise ValueError(
                    f"conv reduction depth {depth} overflows the exact float32 "
                    "integer accumulator (2**24); reduce the layer width"
                )
        self._flat_features = channels * length
        self._final_shape = (channels, length)
        for name, head in heads.items():
            if head.in_features != self._flat_features:
                raise ValueError(
                    f"head {name!r} expects {head.in_features} features, backbone "
                    f"produces {self._flat_features}"
                )
            if head.in_features * QMAX * QMAX >= _EXACT_ACCUMULATOR_LIMIT:
                raise ValueError(
                    f"head reduction depth {head.in_features} overflows the exact "
                    "float32 integer accumulator (2**24)"
                )
        head_scales = {head.act_scale for head in heads.values()}
        if len(head_scales) != 1:
            raise ValueError(
                "all heads consume the same flattened features and must share "
                "one activation scale"
            )
        self._heads = dict(heads)
        self._in_channels = in_channels
        self._in_length = in_length
        self._buffers: "OrderedDict[int, dict]" = OrderedDict()
        self._prepare_requantization()

    def _prepare_requantization(self) -> None:
        """Fuse each layer boundary into one requantization per conv output.

        Instead of dequantizing an accumulator to float and re-quantizing it
        for the next layer (two elementwise scale passes plus separate bias /
        ReLU passes), each conv output is mapped straight from accumulator
        codes to the next operand's codes:

        ``next_codes = clip(round(acc * m + b'), lo, 127)``

        with ``m = act_scale * weight_scale / next_scale`` and
        ``b' = bias / next_scale`` per output channel.  A ReLU between the
        two layers commutes with the positive per-channel scales, so it folds
        into a clip lower bound of 0.  The arithmetic is the same quantizer,
        just evaluated in one pass -- this is the requantization trick real
        int8 runtimes use, and it is what keeps the elementwise traffic of
        the int8 path below the float path's.
        """
        head_scale = next(iter(self._heads.values())).act_scale
        # Consumer scale of conv i: the act_scale of conv i+1, or the heads'
        # shared scale for the last conv.
        consumer_scales = [conv.act_scale for conv in self._convs[1:]] + [head_scale]
        # Does a ReLU sit between conv i's output and its consumer?
        conv_positions = [idx for idx, step in enumerate(self._steps) if step == "conv"]
        relu_before_consumer: List[bool] = []
        for order, position in enumerate(conv_positions):
            end = conv_positions[order + 1] if order + 1 < len(conv_positions) \
                else len(self._steps)
            relu_before_consumer.append("relu" in self._steps[position + 1:end])
        # A ReLU ahead of the first conv applies to the float input itself.
        first_conv = conv_positions[0] if conv_positions else len(self._steps)
        self._leading_relu = "relu" in self._steps[:first_conv]

        self._requant_mult: List[np.ndarray] = []
        self._requant_bias: List[Optional[np.ndarray]] = []
        self._requant_low: List[float] = []
        for conv, scale, has_relu in zip(self._convs, consumer_scales,
                                         relu_before_consumer):
            mult = (conv.act_scale * conv.weight_scale / scale).astype(np.float32)
            self._requant_mult.append(mult[:, None, None])
            if conv.bias is None:
                self._requant_bias.append(None)
            else:
                bias = (conv.bias / scale).astype(np.float32)
                self._requant_bias.append(bias[:, None, None])
            self._requant_low.append(0.0 if has_relu else float(-QMAX))
        # Head dequantization constants (float32, cached once).
        self._head_bias_f32 = {
            name: None if head.bias is None else head.bias.astype(np.float32)
            for name, head in self._heads.items()
        }
        self._input_inv_scale = np.float32(1.0 / self._convs[0].act_scale) \
            if self._convs else None

    # ------------------------------------------------------------------ #
    # Construction from a float network
    # ------------------------------------------------------------------ #
    @classmethod
    def from_network(cls, backbone: Sequential, heads: Mapping[str, Linear],
                     in_channels: int, in_length: int,
                     calibration: np.ndarray,
                     headroom: float = 1.0) -> "QuantizedForwardPlan":
        """Quantize a trained float backbone + heads against calibration data.

        ``calibration`` is a ``(n, in_channels, in_length)`` batch of
        representative (normal) inputs; its per-stage dynamic ranges become
        the activation scales.  ``headroom`` multiplies those ranges before
        the scales are derived: values above 1 trade quantization resolution
        for saturation margin, which matters when inference-time inputs are
        *expected* to exceed the calibration distribution -- an anomaly
        detector's whole job is to score such inputs, so
        :meth:`repro.core.detector.VaradeDetector.quantize` calibrates with
        headroom by default.
        """
        if not np.isfinite(headroom) or headroom < 1.0:
            raise ValueError("headroom must be a finite factor >= 1")
        conv_ranges, head_range = _collect_calibration_ranges(
            backbone, in_channels, in_length, calibration
        )
        steps: List[str] = []
        conv_layers: List[QuantizedConv1d] = []
        conv_index = 0
        for layer in backbone:
            if isinstance(layer, Conv1d):
                act_scale = float(_safe_scale(headroom * conv_ranges[conv_index]))
                conv_layers.append(QuantizedConv1d.from_layer(layer, act_scale))
                steps.append("conv")
                conv_index += 1
            else:  # ReLU (anything else was rejected during calibration)
                steps.append("relu")
        head_scale = float(_safe_scale(headroom * head_range))
        quantized_heads = {name: QuantizedLinear.from_layer(head, head_scale)
                           for name, head in heads.items()}
        return cls(conv_layers, quantized_heads, in_channels, in_length, steps=steps)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def conv_layers(self) -> List[QuantizedConv1d]:
        return list(self._convs)

    @property
    def heads(self) -> Dict[str, QuantizedLinear]:
        return dict(self._heads)

    @property
    def steps(self) -> List[str]:
        return list(self._steps)

    @property
    def in_channels(self) -> int:
        return self._in_channels

    @property
    def in_length(self) -> int:
        return self._in_length

    def parameter_bytes(self) -> int:
        """Bytes of stored model state: int8 codes + float32 scales/biases."""
        total = 0
        for conv in self._convs:
            total += conv.weight_q.size                  # int8 codes
            total += conv.weight_scale.size * 4          # scales as float32
            total += 0 if conv.bias is None else conv.bias.size * 4
        for head in self._heads.values():
            total += head.weight_q.size
            total += head.weight_scale.size * 4
            total += 0 if head.bias is None else head.bias.size * 4
        return total

    # ------------------------------------------------------------------ #
    # Buffer management
    # ------------------------------------------------------------------ #
    def _get_buffers(self, batch: int) -> dict:
        cached = self._buffers.get(batch)
        if cached is not None:
            self._buffers.move_to_end(batch)
            return cached
        acts = [np.empty((self._in_channels, batch, self._in_length), dtype=np.float32)]
        cols: List[np.ndarray] = []
        for conv, (out_channels, out_length) in zip(self._convs, self._shapes):
            cols.append(np.empty(
                (conv.in_channels * conv.kernel_size, batch * out_length),
                dtype=np.float32,
            ))
            acts.append(np.empty((out_channels, batch, out_length), dtype=np.float32))
        flat = np.empty((batch, self._flat_features), dtype=np.float32)
        heads = {name: np.empty((batch, head.out_features), dtype=np.float32)
                 for name, head in self._heads.items()}
        buffers = {"acts": acts, "cols": cols, "flat": flat, "heads": heads}
        self._buffers[batch] = buffers
        while len(self._buffers) > _MAX_CACHED_BATCH_SIZES:
            self._buffers.popitem(last=False)
        return buffers

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    @staticmethod
    def _im2col(act: np.ndarray, kernel: int, stride: int, out_length: int,
                cols: np.ndarray) -> np.ndarray:
        """Copy the sliding view of a (C, N, L) activation into (C*K, N*Lout)."""
        channels, batch, _ = act.shape
        stride_c, stride_n, stride_l = act.strides
        view = as_strided(
            act,
            shape=(channels, kernel, batch, out_length),
            strides=(stride_c, stride_l, stride_n, stride_l * stride),
            writeable=False,
        )
        np.copyto(cols.reshape(channels, kernel, batch, out_length), view)
        return cols

    def forward(self, x: np.ndarray, layout: str = "ncl") -> Dict[str, np.ndarray]:
        """Run the quantized backbone + heads over a batch of inputs.

        ``layout`` names the axis order of ``x``: ``"ncl"`` is the
        channels-first ``(batch, channels, length)`` convention of the float
        plan; ``"nlc"`` accepts the stream layout ``(batch, length,
        channels)`` directly, saving the caller a transposition copy (the
        plan stages into its own ``(channels, batch, length)`` buffer either
        way).  Returns a mapping from head name to its ``(N, out_features)``
        float32 output buffer (overwritten by the next same-batch-size call).
        """
        x = np.asarray(x)
        if layout == "ncl":
            expected = (self._in_channels, self._in_length)
            stage_axes = (1, 0, 2)
        elif layout == "nlc":
            expected = (self._in_length, self._in_channels)
            stage_axes = (2, 0, 1)
        else:
            raise ValueError(f"layout must be 'ncl' or 'nlc', got {layout!r}")
        if x.ndim != 3 or x.shape[1:] != expected:
            raise ValueError(
                f"expected input of shape (batch, {expected[0]}, {expected[1]}) "
                f"for layout {layout!r}, got {x.shape}"
            )
        batch = x.shape[0]
        buffers = self._get_buffers(batch)
        acts = buffers["acts"]
        # Stage the input in (C, N, L) layout so every conv is one large GEMM,
        # folding the first quantization divide into the staging copy.
        if self._convs:
            np.multiply(x.transpose(stage_axes), self._input_inv_scale, out=acts[0])
        else:
            head_scale = next(iter(self._heads.values())).act_scale
            np.multiply(x.transpose(stage_axes), np.float32(1.0 / head_scale),
                        out=acts[0])
        if self._leading_relu:
            np.maximum(acts[0], 0.0, out=acts[0])
        np.rint(acts[0], out=acts[0])
        np.clip(acts[0], -QMAX, QMAX, out=acts[0])

        current = acts[0]
        for conv_index, conv in enumerate(self._convs):
            out_channels, out_length = self._shapes[conv_index]
            cols = self._im2col(current, conv.kernel_size, conv.stride,
                                out_length, buffers["cols"][conv_index])
            out = acts[conv_index + 1]
            # Integer matmul carried exactly in a float32 accumulator.
            np.matmul(conv._weight_f32, cols,
                      out=out.reshape(out_channels, batch * out_length))
            # Fused requantization straight to the consumer's codes (ReLU, if
            # present, is folded into the clip's lower bound of 0).
            out *= self._requant_mult[conv_index]
            if self._requant_bias[conv_index] is not None:
                out += self._requant_bias[conv_index]
            np.rint(out, out=out)
            np.clip(out, self._requant_low[conv_index], QMAX, out=out)
            current = out

        # `current` already holds int8 codes under the heads' shared scale.
        flat = buffers["flat"]
        np.copyto(
            flat.reshape(batch, self._final_shape[0], self._final_shape[1]),
            current.transpose(1, 0, 2),
        )
        results: Dict[str, np.ndarray] = {}
        for name, head in self._heads.items():
            out = buffers["heads"][name]
            np.matmul(flat, head._weight_f32_t, out=out)
            out *= head._dequant
            if self._head_bias_f32[name] is not None:
                out += self._head_bias_f32[name]
            results[name] = out
        return results


class IncrementalQuantizedPlan:
    """Int8 twin of :class:`repro.nn.fastpath.IncrementalForwardPlan`.

    Carries per-stream int8 state so that one new sample (or a chunk of
    samples, via :meth:`push_many`) advances every layer by computing only
    the new activation columns, bit-identical to
    :meth:`QuantizedForwardPlan.forward` on the same windows.

    Unlike the float plan this needs no BLAS width-class probe: the plan
    construction already guarantees every reduction depth keeps the integer
    accumulator below ``2**24`` (see the module docstring), so the staged
    int8 GEMMs are *exact* under any call shape -- the update calls use
    plain single-column (or single-block) widths.  The elementwise
    quantize/requantize passes replicate the batch plan's ufunc sequence
    operand for operand, which keeps them bit-identical too.

    Construction raises ``ValueError`` when a conv is not right-anchored on
    the window (``(L_in - kernel) % stride != 0``); use :meth:`supports` to
    test first and fall back to the batch plan.  Call :meth:`reset` on any
    gap in the stream.
    """

    def __init__(self, plan: QuantizedForwardPlan,
                 heads: Optional[List[str]] = None) -> None:
        self._plan = plan
        self._in_channels = plan._in_channels
        self._in_length = plan._in_length
        if heads is None:
            head_names = list(plan._heads)
        else:
            unknown = [name for name in heads if name not in plan._heads]
            if unknown:
                raise ValueError(f"unknown heads {unknown!r}")
            head_names = list(heads)
        self._heads = {name: plan._heads[name] for name in head_names}
        if not plan._convs:
            raise ValueError(
                "incremental quantized plans need a conv backbone")
        length, d = self._in_length, 1
        self._d_in: List[int] = []
        first_t = 0
        self._first_t: List[int] = []
        for conv in plan._convs:
            if (length - conv.kernel_size) % conv.stride != 0:
                raise ValueError(
                    "conv is not right-anchored on the window: "
                    f"(L_in={length} - kernel={conv.kernel_size}) is not a "
                    f"multiple of stride={conv.stride}"
                )
            self._d_in.append(d)
            first_t += (conv.kernel_size - 1) * d
            self._first_t.append(first_t)
            length = conv.output_length(length)
            d *= conv.stride
        self._final_channels, self._final_length = plan._final_shape
        self._final_d = d
        self._warm_t = first_t + (self._final_length - 1) * d

        from .fastpath import _BLOCK
        self._block = _BLOCK
        capacity = self._in_length + self._block
        self._bufs: List[np.ndarray] = [
            np.zeros((self._in_channels, capacity), dtype=np.float32)]
        self._pos: List[int] = [0]
        for conv in plan._convs:
            self._bufs.append(
                np.zeros((conv.out_channels, capacity), dtype=np.float32))
            self._pos.append(0)
        self._gathers = [
            np.empty((conv.in_channels * conv.kernel_size, 1),
                     dtype=np.float32)
            for conv in plan._convs
        ]
        self._final_buf = np.empty(
            (1, self._final_channels * self._final_length), dtype=np.float32)
        self._t = 0

    @classmethod
    def supports(cls, plan: QuantizedForwardPlan) -> bool:
        """Whether ``plan``'s shapes allow incremental updates; ``False``
        means callers must stay on the batch plan."""
        try:
            cls(plan)
        except (TypeError, ValueError):
            return False
        return True

    # ------------------------------------------------------------------ #
    @property
    def samples_seen(self) -> int:
        """Pushes since construction or the last :meth:`reset`."""
        return self._t

    @property
    def warm(self) -> bool:
        """Whether the buffers cover a full window (push returns outputs)."""
        return self._t > self._warm_t

    def reset(self) -> None:
        """Forget all stream state (call on any gap in the sample stream)."""
        self._t = 0
        self._pos = [0] * len(self._pos)

    def _room(self, index: int, n: int) -> int:
        buf = self._bufs[index]
        pos = self._pos[index]
        if pos + n <= buf.shape[1]:
            return pos
        keep = min(pos, self._in_length)
        buf[:, :keep] = buf[:, pos - keep:pos].copy()
        self._pos[index] = keep
        return keep

    def _stage_input(self, values: np.ndarray, out: np.ndarray) -> None:
        """Replicate the batch plan's input quantization ufunc for ufunc."""
        plan = self._plan
        np.multiply(values, plan._input_inv_scale, out=out)
        if plan._leading_relu:
            np.maximum(out, 0.0, out=out)
        np.rint(out, out=out)
        np.clip(out, -QMAX, QMAX, out=out)

    def _requantize(self, out: np.ndarray, conv_index: int) -> None:
        """The batch plan's fused requantization on a (O, width) column."""
        plan = self._plan
        out *= plan._requant_mult[conv_index][:, :, 0]
        bias = plan._requant_bias[conv_index]
        if bias is not None:
            out += bias[:, :, 0]
        np.rint(out, out=out)
        np.clip(out, plan._requant_low[conv_index], QMAX, out=out)

    def _head_outputs(self, flat: np.ndarray) -> Dict[str, np.ndarray]:
        results: Dict[str, np.ndarray] = {}
        for name, head in self._heads.items():
            out = flat @ head._weight_f32_t
            out *= head._dequant
            bias = self._plan._head_bias_f32[name]
            if bias is not None:
                out += bias
            results[name] = out
        return results

    # ------------------------------------------------------------------ #
    def push(self, sample: np.ndarray) -> Optional[Dict[str, np.ndarray]]:
        """Advance the stream by one sample of shape ``(in_channels,)``.

        Returns the head outputs (name -> fresh ``(1, out_features)``
        float32 array) for the window ending at this sample, or ``None``
        while warming up -- bit-identical to
        ``QuantizedForwardPlan.forward`` on the same window.
        """
        sample = np.asarray(sample, dtype=np.float64).ravel()
        if sample.shape[0] != self._in_channels:
            raise ValueError(
                f"expected a sample of {self._in_channels} channels, "
                f"got {sample.shape[0]}"
            )
        t = self._t
        self._t = t + 1
        pos = self._room(0, 1)
        self._stage_input(sample, self._bufs[0][:, pos])
        self._pos[0] = pos + 1
        for index, conv in enumerate(self._plan._convs):
            if t < self._first_t[index]:
                break
            previous = self._bufs[index]
            newest = self._pos[index] - 1
            kernel, d_in = conv.kernel_size, self._d_in[index]
            gather = self._gathers[index]
            g3 = gather.reshape(conv.in_channels, kernel)
            for tap in range(kernel):
                g3[:, tap] = previous[:, newest - (kernel - 1 - tap) * d_in]
            out = conv._weight_f32 @ gather
            self._requantize(out, index)
            pos = self._room(index + 1, 1)
            self._bufs[index + 1][:, pos] = out[:, 0]
            self._pos[index + 1] = pos + 1
        if t < self._warm_t:
            return None
        buf = self._bufs[-1]
        newest = self._pos[-1] - 1
        length, d = self._final_length, self._final_d
        final = self._final_buf.reshape(self._final_channels, length)
        for j in range(length):
            final[:, j] = buf[:, newest - (length - 1 - j) * d]
        return self._head_outputs(self._final_buf)

    def push_many(self, samples: np.ndarray) -> Dict[str, np.ndarray]:
        """Advance by ``(S, in_channels)`` samples; returns per-head
        ``(S, out_features)`` float32 arrays with NaN warm-up rows --
        bit-identical to :meth:`push` one sample at a time."""
        samples = np.ascontiguousarray(np.asarray(samples, dtype=np.float64))
        if samples.ndim != 2 or samples.shape[1] != self._in_channels:
            raise ValueError(
                f"expected samples of shape (S, {self._in_channels}), "
                f"got {samples.shape}"
            )
        total = samples.shape[0]
        outs = {name: np.full((total, head.out_features), np.nan,
                              dtype=np.float32)
                for name, head in self._heads.items()}
        i = 0
        while i < total and self._t < self._warm_t:
            self.push(samples[i])
            i += 1
        while i < total:
            block = samples[i:i + self._block]
            for name, arr in self._advance_block(block).items():
                outs[name][i:i + block.shape[0]] = arr
            i += block.shape[0]
        return outs

    def _advance_block(self, block: np.ndarray) -> Dict[str, np.ndarray]:
        count = block.shape[0]
        self._t += count
        pos = self._room(0, count)
        self._stage_input(block.T, self._bufs[0][:, pos:pos + count])
        self._pos[0] = pos + count
        for index, conv in enumerate(self._plan._convs):
            previous = self._bufs[index]
            base = self._pos[index] - count
            kernel, d_in = conv.kernel_size, self._d_in[index]
            gather = np.empty(
                (conv.in_channels * conv.kernel_size, count),
                dtype=np.float32)
            g3 = gather.reshape(conv.in_channels, kernel, count)
            for tap in range(kernel):
                start = base - (kernel - 1 - tap) * d_in
                g3[:, tap] = previous[:, start:start + count]
            out = conv._weight_f32 @ gather
            self._requantize(out, index)
            pos = self._room(index + 1, count)
            self._bufs[index + 1][:, pos:pos + count] = out
            self._pos[index + 1] = pos + count
        buf = self._bufs[-1]
        base = self._pos[-1] - count
        length, d = self._final_length, self._final_d
        flat = np.empty((count, self._final_channels, length),
                        dtype=np.float32)
        for j in range(length):
            start = base - (length - 1 - j) * d
            flat[:, :, j] = buf[:, start:start + count].T
        return self._head_outputs(
            np.ascontiguousarray(flat.reshape(count, -1)))
