"""Graph-free batched inference for convolutional forecasters.

Training needs the full autograd graph (:mod:`repro.nn.tensor`), but the
streaming hot path does not -- and in the seed implementation every scored
sample still paid for Python ``Tensor`` allocation, graph bookkeeping and a
fresh im2col copy per convolution.  On small edge-sized models that per-call
overhead dominates the arithmetic, exactly as the
:class:`repro.core.detector.InferenceCost.n_kernel_launches` model predicts.

This module is the vectorized fast path used by
:meth:`repro.core.varade.VaradeNetwork.predict_distribution`:

* :func:`fast_conv1d` runs a ``Conv1d`` forward on raw arrays.  The input is
  expanded into an im2col matrix with numpy stride tricks (a zero-copy view;
  the only copy is one buffered write) and contracted with the flattened
  ``(out_channels, in_channels * kernel)`` weight in a single batched matmul.
* :class:`FastForwardPlan` compiles a ``Conv1d``/``ReLU`` backbone plus a set
  of linear heads into a flat list of preallocated-buffer operations.
  Buffers are allocated once per batch size and reused, so steady-state
  streaming inference allocates almost nothing.

Numerical contract: for a fixed input row the outputs are bit-identical no
matter which batch the row is scored in.  The convolution contracts every
batch slice with the same ``(O, C*K) x (C*K, L)`` matmul, and the heads use
``np.einsum`` whose reduction order does not depend on the batch size.  The
score-parity suite (``tests/test_edge/test_fleet_parity.py``) relies on this
to compare batched multi-stream scores against the sequential runtime.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .layers import Conv1d, Linear, ReLU, Sequential
from .module import Module

__all__ = ["fast_conv1d", "FastForwardPlan"]

#: how many distinct batch sizes a plan keeps buffers for before evicting the
#: least recently used set (a fleet whose streams end at different times asks
#: for a shrinking sequence of batch sizes).
_MAX_CACHED_BATCH_SIZES = 8


def _im2col_view(x: np.ndarray, kernel: int, stride: int) -> Tuple[np.ndarray, int]:
    """Zero-copy ``(N, C, K, L_out)`` sliding view over a contiguous input."""
    batch, channels, length = x.shape
    out_length = (length - kernel) // stride + 1
    if out_length <= 0:
        raise ValueError(
            f"conv1d output length would be {out_length} (input length {length}, "
            f"kernel {kernel}, stride {stride})"
        )
    stride_n, stride_c, stride_l = x.strides
    view = as_strided(
        x,
        shape=(batch, channels, kernel, out_length),
        strides=(stride_n, stride_c, stride_l, stride_l * stride),
        writeable=False,
    )
    return view, out_length


def fast_conv1d(x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None,
                stride: int = 1, padding: int = 0,
                cols_buf: Optional[np.ndarray] = None,
                out: Optional[np.ndarray] = None) -> np.ndarray:
    """1-D convolution forward on raw arrays as one batched matmul.

    ``x`` is ``(N, C_in, L)`` (C-contiguous), ``weight`` ``(C_out, C_in, K)``;
    the result is ``(N, C_out, L_out)`` and matches
    :meth:`repro.nn.tensor.Tensor.conv1d` numerically.  ``cols_buf`` of shape
    ``(N, C_in * K, L_out)`` and ``out`` of shape ``(N, C_out, L_out)`` let
    the caller reuse scratch memory across calls.
    """
    x = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
    if x.ndim != 3 or weight.ndim != 3:
        raise ValueError("fast_conv1d expects input (N, C, L) and weight (C_out, C_in, K)")
    out_channels, in_channels, kernel = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(
            f"fast_conv1d channel mismatch: input has {x.shape[1]}, "
            f"weight expects {in_channels}"
        )
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding)))
    view, out_length = _im2col_view(x, kernel, stride)
    batch = x.shape[0]
    if cols_buf is None:
        cols_buf = np.empty((batch, in_channels * kernel, out_length))
    np.copyto(cols_buf.reshape(batch, in_channels, kernel, out_length), view)
    if out is None:
        out = np.empty((batch, out_channels, out_length))
    np.matmul(weight.reshape(out_channels, in_channels * kernel), cols_buf, out=out)
    if bias is not None:
        out += bias.reshape(-1, 1)
    return out


class FastForwardPlan:
    """Preallocated, graph-free forward pass for a conv backbone with heads.

    The plan walks a :class:`~repro.nn.layers.Sequential` of ``Conv1d`` and
    ``ReLU`` layers once at construction time to derive every intermediate
    shape, then executes the whole stack with ``matmul``/``einsum`` into
    reusable buffers.  Weights are read from the source modules at call time,
    so the plan stays valid across optimiser steps and
    :meth:`~repro.nn.module.Module.load_state_dict`.

    .. warning::
       :meth:`forward` returns views of internal buffers that are overwritten
       by the next call with the same batch size; callers must copy (or
       derive new arrays from) anything they keep.
    """

    def __init__(self, backbone: Sequential, heads: Mapping[str, Linear],
                 in_channels: int, in_length: int) -> None:
        if not heads:
            raise ValueError("FastForwardPlan needs at least one head")
        self._steps: List[Tuple[str, Optional[Module]]] = []
        self._shapes: List[Tuple[int, int]] = []  # (channels, length) after each conv
        channels, length = in_channels, in_length
        for layer in backbone:
            if isinstance(layer, Conv1d):
                if layer.in_channels != channels:
                    raise ValueError(
                        f"backbone expects {layer.in_channels} channels, carrying {channels}"
                    )
                length = layer.output_length(length)
                if length <= 0:
                    raise ValueError("backbone reduces the sequence to zero length")
                channels = layer.out_channels
                self._steps.append(("conv", layer))
                self._shapes.append((channels, length))
            elif isinstance(layer, ReLU):
                self._steps.append(("relu", None))
            else:
                raise TypeError(
                    f"FastForwardPlan supports Conv1d/ReLU backbones, got {type(layer).__name__}"
                )
        self._flat_features = channels * length
        for name, head in heads.items():
            if not isinstance(head, Linear):
                raise TypeError(f"head {name!r} must be a Linear layer")
            if head.in_features != self._flat_features:
                raise ValueError(
                    f"head {name!r} expects {head.in_features} features, backbone "
                    f"produces {self._flat_features}"
                )
        self._heads = dict(heads)
        self._in_channels = in_channels
        self._in_length = in_length
        self._buffers: "OrderedDict[int, dict]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # Buffer management
    # ------------------------------------------------------------------ #
    def _get_buffers(self, batch: int) -> dict:
        cached = self._buffers.get(batch)
        if cached is not None:
            self._buffers.move_to_end(batch)
            return cached
        cols: List[np.ndarray] = []
        outs: List[np.ndarray] = []
        for step, layer in self._steps:
            if step != "conv":
                continue
            out_channels, out_length = self._shapes[len(outs)]
            cols.append(np.empty((batch, layer.in_channels * layer.kernel_size, out_length)))
            outs.append(np.empty((batch, out_channels, out_length)))
        heads = {name: np.empty((batch, head.out_features))
                 for name, head in self._heads.items()}
        buffers = {"cols": cols, "outs": outs, "heads": heads}
        self._buffers[batch] = buffers
        while len(self._buffers) > _MAX_CACHED_BATCH_SIZES:
            self._buffers.popitem(last=False)
        return buffers

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> Dict[str, np.ndarray]:
        """Run the backbone and heads over ``x`` of shape ``(N, C, L)``.

        Returns a mapping from head name to its ``(N, out_features)`` output
        buffer (overwritten by the next same-batch-size call).
        """
        x = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
        if x.ndim != 3 or x.shape[1] != self._in_channels or x.shape[2] != self._in_length:
            raise ValueError(
                f"expected input of shape (batch, {self._in_channels}, "
                f"{self._in_length}), got {x.shape}"
            )
        buffers = self._get_buffers(x.shape[0])
        current = x
        conv_index = 0
        for step, layer in self._steps:
            if step == "conv":
                current = fast_conv1d(
                    current,
                    layer.weight.data,
                    None if layer.bias is None else layer.bias.data,
                    stride=layer.stride,
                    padding=layer.padding,
                    cols_buf=buffers["cols"][conv_index],
                    out=buffers["outs"][conv_index],
                )
                conv_index += 1
            elif current is x:
                # A ReLU before any convolution must not clobber the caller's
                # array (ascontiguousarray returns the input unchanged when it
                # is already contiguous).
                current = np.maximum(current, 0.0)
            else:  # relu, in place on the conv output buffer
                np.maximum(current, 0.0, out=current)
        flat = current.reshape(current.shape[0], -1)
        results: Dict[str, np.ndarray] = {}
        for name, head in self._heads.items():
            out = buffers["heads"][name]
            # einsum keeps the reduction order independent of the batch size,
            # which the batched-vs-sequential score parity guarantee needs.
            np.einsum("nf,of->no", flat, head.weight.data, out=out)
            if head.bias is not None:
                out += head.bias.data
            results[name] = out
        return results
