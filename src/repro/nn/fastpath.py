"""Graph-free batched inference for convolutional forecasters.

Training needs the full autograd graph (:mod:`repro.nn.tensor`), but the
streaming hot path does not -- and in the seed implementation every scored
sample still paid for Python ``Tensor`` allocation, graph bookkeeping and a
fresh im2col copy per convolution.  On small edge-sized models that per-call
overhead dominates the arithmetic, exactly as the
:class:`repro.core.detector.InferenceCost.n_kernel_launches` model predicts.

This module is the vectorized fast path used by
:meth:`repro.core.varade.VaradeNetwork.predict_distribution`:

* :func:`fast_conv1d` runs a ``Conv1d`` forward on raw arrays.  The input is
  expanded into an im2col matrix with numpy stride tricks (a zero-copy view;
  the only copy is one buffered write) and contracted with the flattened
  ``(out_channels, in_channels * kernel)`` weight in a single batched matmul.
* :class:`FastForwardPlan` compiles a ``Conv1d``/``ReLU`` backbone plus a set
  of linear heads into a flat list of preallocated-buffer operations.
  Buffers are allocated once per batch size and reused, so steady-state
  streaming inference allocates almost nothing.

* :class:`IncrementalForwardPlan` is the single-stream streaming twin: it
  keeps a ring buffer of every layer's per-sample activation columns so that
  :meth:`~IncrementalForwardPlan.push` of one new sample computes only the
  newest timestep's column per layer -- O(layers) work per sample instead of
  the batch plan's O(window x layers) -- while staying bit-identical to
  :meth:`FastForwardPlan.forward` on the same window.

Numerical contract: for a fixed input row the outputs are bit-identical no
matter which batch the row is scored in.  The convolution contracts every
batch slice with the same ``(O, C*K) x (C*K, L)`` matmul, and the heads use
``np.einsum`` whose reduction order does not depend on the batch size.  The
score-parity suite (``tests/test_edge/test_fleet_parity.py``) relies on this
to compare batched multi-stream scores against the sequential runtime.

The incremental plan extends the contract to single-column updates.  BLAS
gemm kernels round differently depending on the output width class, so a
naive one-column matmul would drift from the batch result by ~1 ULP.  The
plan therefore picks, per conv layer and verified by a construction-time
probe against the real batch call, an update call shape that is
bit-identical to the batch matmul:

* ``pad8`` -- batch output widths that are a multiple of 8 place every
  column in a full width-8 kernel chunk, whose rounding any other
  multiple-of-8 call reproduces; new columns are computed zero-padded
  inside a width-8 (single push) or width-8k (chunked) call;
* ``padL`` -- other layers compute new columns at the exact batch call
  width ``L_out``: a fixed gemm shape rounds each column the same way
  regardless of its position or its neighbours' values (both probed), so
  a zero-padded call of that width reproduces the batch bits column for
  column.

:meth:`IncrementalForwardPlan.push_many` amortises the per-call Python
overhead by advancing whole blocks of samples at once -- each layer
computes all of a block's new columns in one (``pad8``) or a few
(``padL``) gemm calls of the probed width class, which is where the
single-stream throughput win over the batch plan comes from.

When a layer shape is not causally updatable (padding, or a stride that is
not right-anchored on the window) or the probe finds a BLAS build violating
the width-class assumption, construction raises and callers fall back to
the batch plan -- the fallback path, never silent drift.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .layers import Conv1d, Linear, ReLU, Sequential
from .module import Module

__all__ = ["fast_conv1d", "FastForwardPlan", "IncrementalForwardPlan"]

#: how many distinct batch sizes a plan keeps buffers for before evicting the
#: least recently used set (a fleet whose streams end at different times asks
#: for a shrinking sequence of batch sizes).
_MAX_CACHED_BATCH_SIZES = 8


def _im2col_view(x: np.ndarray, kernel: int, stride: int) -> Tuple[np.ndarray, int]:
    """Zero-copy ``(N, C, K, L_out)`` sliding view over a contiguous input."""
    batch, channels, length = x.shape
    out_length = (length - kernel) // stride + 1
    if out_length <= 0:
        raise ValueError(
            f"conv1d output length would be {out_length} (input length {length}, "
            f"kernel {kernel}, stride {stride})"
        )
    stride_n, stride_c, stride_l = x.strides
    view = as_strided(
        x,
        shape=(batch, channels, kernel, out_length),
        strides=(stride_n, stride_c, stride_l, stride_l * stride),
        writeable=False,
    )
    return view, out_length


def _check_scratch(buf: np.ndarray, shape: Tuple[int, ...], name: str) -> np.ndarray:
    """Validate a caller-provided scratch buffer before it feeds ``np.matmul``.

    ``np.matmul(..., out=...)`` (and the reshape the im2col copy relies on)
    silently produce garbage for mis-shaped, wrongly-typed or
    non-C-contiguous buffers, so reject anything that is not exactly the
    array the internal allocation would have produced.
    """
    buf = np.asarray(buf)
    if buf.shape != shape:
        raise ValueError(
            f"fast_conv1d {name} buffer has shape {buf.shape}, expected {shape}"
        )
    if buf.dtype != np.float64:
        raise ValueError(
            f"fast_conv1d {name} buffer must be float64, got {buf.dtype}"
        )
    if not buf.flags.c_contiguous:
        raise ValueError(f"fast_conv1d {name} buffer must be C-contiguous")
    return buf


def fast_conv1d(x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None,
                stride: int = 1, padding: int = 0,
                cols_buf: Optional[np.ndarray] = None,
                out: Optional[np.ndarray] = None) -> np.ndarray:
    """1-D convolution forward on raw arrays as one batched matmul.

    ``x`` is ``(N, C_in, L)`` (C-contiguous), ``weight`` ``(C_out, C_in, K)``;
    the result is ``(N, C_out, L_out)`` and matches
    :meth:`repro.nn.tensor.Tensor.conv1d` numerically.  ``cols_buf`` of shape
    ``(N, C_in * K, L_out)`` and ``out`` of shape ``(N, C_out, L_out)`` let
    the caller reuse scratch memory across calls; both must be C-contiguous
    float64 of exactly that shape (anything else raises ``ValueError``).
    """
    x = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
    if x.ndim != 3 or weight.ndim != 3:
        raise ValueError("fast_conv1d expects input (N, C, L) and weight (C_out, C_in, K)")
    out_channels, in_channels, kernel = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(
            f"fast_conv1d channel mismatch: input has {x.shape[1]}, "
            f"weight expects {in_channels}"
        )
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding)))
    view, out_length = _im2col_view(x, kernel, stride)
    batch = x.shape[0]
    if cols_buf is None:
        cols_buf = np.empty((batch, in_channels * kernel, out_length))
    else:
        cols_buf = _check_scratch(
            cols_buf, (batch, in_channels * kernel, out_length), "cols_buf")
    np.copyto(cols_buf.reshape(batch, in_channels, kernel, out_length), view)
    if out is None:
        out = np.empty((batch, out_channels, out_length))
    else:
        out = _check_scratch(out, (batch, out_channels, out_length), "out")
    np.matmul(weight.reshape(out_channels, in_channels * kernel), cols_buf, out=out)
    if bias is not None:
        out += bias.reshape(-1, 1)
    return out


class FastForwardPlan:
    """Preallocated, graph-free forward pass for a conv backbone with heads.

    The plan walks a :class:`~repro.nn.layers.Sequential` of ``Conv1d`` and
    ``ReLU`` layers once at construction time to derive every intermediate
    shape, then executes the whole stack with ``matmul``/``einsum`` into
    reusable buffers.  Weights are read from the source modules at call time,
    so the plan stays valid across optimiser steps and
    :meth:`~repro.nn.module.Module.load_state_dict`.

    .. warning::
       :meth:`forward` returns views of internal buffers that are overwritten
       by the next call with the same batch size; callers must copy (or
       derive new arrays from) anything they keep.
    """

    def __init__(self, backbone: Sequential, heads: Mapping[str, Linear],
                 in_channels: int, in_length: int) -> None:
        if not heads:
            raise ValueError("FastForwardPlan needs at least one head")
        self._steps: List[Tuple[str, Optional[Module]]] = []
        self._shapes: List[Tuple[int, int]] = []  # (channels, length) after each conv
        channels, length = in_channels, in_length
        for layer in backbone:
            if isinstance(layer, Conv1d):
                if layer.in_channels != channels:
                    raise ValueError(
                        f"backbone expects {layer.in_channels} channels, carrying {channels}"
                    )
                length = layer.output_length(length)
                if length <= 0:
                    raise ValueError("backbone reduces the sequence to zero length")
                channels = layer.out_channels
                self._steps.append(("conv", layer))
                self._shapes.append((channels, length))
            elif isinstance(layer, ReLU):
                self._steps.append(("relu", None))
            else:
                raise TypeError(
                    f"FastForwardPlan supports Conv1d/ReLU backbones, got {type(layer).__name__}"
                )
        self._flat_features = channels * length
        for name, head in heads.items():
            if not isinstance(head, Linear):
                raise TypeError(f"head {name!r} must be a Linear layer")
            if head.in_features != self._flat_features:
                raise ValueError(
                    f"head {name!r} expects {head.in_features} features, backbone "
                    f"produces {self._flat_features}"
                )
        self._heads = dict(heads)
        self._in_channels = in_channels
        self._in_length = in_length
        self._buffers: "OrderedDict[int, dict]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # Buffer management
    # ------------------------------------------------------------------ #
    def _get_buffers(self, batch: int) -> dict:
        cached = self._buffers.get(batch)
        if cached is not None:
            self._buffers.move_to_end(batch)
            return cached
        cols: List[np.ndarray] = []
        outs: List[np.ndarray] = []
        for step, layer in self._steps:
            if step != "conv":
                continue
            out_channels, out_length = self._shapes[len(outs)]
            cols.append(np.empty((batch, layer.in_channels * layer.kernel_size, out_length)))
            outs.append(np.empty((batch, out_channels, out_length)))
        heads = {name: np.empty((batch, head.out_features))
                 for name, head in self._heads.items()}
        buffers = {"cols": cols, "outs": outs, "heads": heads}
        self._buffers[batch] = buffers
        while len(self._buffers) > _MAX_CACHED_BATCH_SIZES:
            self._buffers.popitem(last=False)
        return buffers

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> Dict[str, np.ndarray]:
        """Run the backbone and heads over ``x`` of shape ``(N, C, L)``.

        Returns a mapping from head name to its ``(N, out_features)`` output
        buffer (overwritten by the next same-batch-size call).
        """
        x = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
        if x.ndim != 3 or x.shape[1] != self._in_channels or x.shape[2] != self._in_length:
            raise ValueError(
                f"expected input of shape (batch, {self._in_channels}, "
                f"{self._in_length}), got {x.shape}"
            )
        buffers = self._get_buffers(x.shape[0])
        current = x
        conv_index = 0
        for step, layer in self._steps:
            if step == "conv":
                current = fast_conv1d(
                    current,
                    layer.weight.data,
                    None if layer.bias is None else layer.bias.data,
                    stride=layer.stride,
                    padding=layer.padding,
                    cols_buf=buffers["cols"][conv_index],
                    out=buffers["outs"][conv_index],
                )
                conv_index += 1
            elif current is x:
                # A ReLU before any convolution must not clobber the caller's
                # array (ascontiguousarray returns the input unchanged when it
                # is already contiguous).
                current = np.maximum(current, 0.0)
            else:  # relu, in place on the conv output buffer
                np.maximum(current, 0.0, out=current)
        flat = current.reshape(current.shape[0], -1)
        results: Dict[str, np.ndarray] = {}
        for name, head in self._heads.items():
            out = buffers["heads"][name]
            # einsum keeps the reduction order independent of the batch size,
            # which the batched-vs-sequential score parity guarantee needs.
            np.einsum("nf,of->no", flat, head.weight.data, out=out)
            if head.bias is not None:
                out += head.bias.data
            results[name] = out
        return results


#: gemm output-width chunk: columns inside full width-8 chunks share their
#: rounding across every call whose width is a multiple of the chunk.
_GEMM_CHUNK = 8

#: how many samples a chunked advance processes per block (also the slack the
#: sliding layer buffers keep beyond the window before compacting).
_BLOCK = 256


def _probe_update_scheme(w2d: np.ndarray, depth: int, out_length: int,
                         width: int) -> bool:
    """Check, with the real layer weight, that zero-padded update calls of
    ``width`` columns reproduce the bits of the batch
    ``(O, depth) x (1, depth, L)`` matmul on random data.

    ``width`` is either ``_GEMM_CHUNK`` (requires ``out_length % 8 == 0``)
    or ``out_length`` itself (the ``padL`` scheme).
    """
    rng = np.random.default_rng(0x1C4)
    for _ in range(2):
        cols = np.ascontiguousarray(
            rng.standard_normal((1, depth, out_length)))
        reference = np.matmul(w2d, cols)[0]
        # (a) the plain 2-D call at the batch width matches the batch bits
        #     (chunked padL groups run at exactly this call shape).
        if not np.array_equal(w2d @ cols[0], reference):
            return False
        # (b) a zero-padded single column at position 0 of a width-`width`
        #     call matches the batch bits of a column at any position.
        for j in {0, out_length // 2, out_length - 1}:
            padded = np.zeros((depth, width))
            padded[:, 0] = cols[0][:, j]
            if not np.array_equal((w2d @ padded)[:, :1],
                                  reference[:, j:j + 1]):
                return False
        # (c) a column's bits do not depend on its neighbours' values.
        if out_length > 1:
            alt = np.array(cols[0])
            alt[:, 1:] = rng.standard_normal((depth, out_length - 1))
            if not np.array_equal((w2d @ alt)[:, :1], reference[:, :1]):
                return False
        # (d) full-chunk columns agree across multiple-of-8 widths (the
        #     chunked pad8 advance uses widths 8, 16, ... per block).
        if width == _GEMM_CHUNK:
            wide = rng.standard_normal((depth, 2 * _GEMM_CHUNK))
            halves = np.hstack([w2d @ np.ascontiguousarray(wide[:, :_GEMM_CHUNK]),
                                w2d @ np.ascontiguousarray(wide[:, _GEMM_CHUNK:])])
            if not np.array_equal(w2d @ wide, halves):
                return False
    return True


class _IncrementalConv:
    """Static per-layer recipe of an incremental plan (no stream state)."""

    __slots__ = ("layer", "relu_after", "in_channels", "out_channels",
                 "depth", "kernel", "stride", "out_length", "d_in", "d_out",
                 "first_t", "mode", "width", "w2d", "bias_col")

    def __init__(self, layer: Conv1d, in_channels: int, out_length: int,
                 d_in: int) -> None:
        self.layer = layer
        self.relu_after = False
        self.in_channels = in_channels
        self.out_channels = layer.out_channels
        self.kernel = layer.kernel_size
        self.stride = layer.stride
        self.depth = in_channels * layer.kernel_size
        self.out_length = out_length
        self.d_in = d_in
        self.d_out = d_in * layer.stride
        self.first_t = 0     # assigned once the update mode is known
        self.mode = ""
        self.width = 0
        # Views into the live parameter memory (reshape of a contiguous
        # array): in-place weight updates stay visible, rebinding
        # ``weight.data`` requires building a new incremental plan.
        self.w2d = np.ascontiguousarray(
            layer.weight.data).reshape(self.out_channels, self.depth)
        self.bias_col = None if layer.bias is None \
            else layer.bias.data.reshape(-1, 1)


class IncrementalForwardPlan:
    """O(layers)-per-sample streaming twin of :class:`FastForwardPlan`.

    One instance carries the per-stream state of a single session: a sliding
    buffer per layer holding that layer's activation column for each recent
    push.  :meth:`push` appends one sample, computes exactly one new column
    per conv layer (reusing every other column from the buffers) and, once
    enough samples have accumulated to cover the window, returns the head
    outputs for the window ending at that sample -- bit-identical to
    ``FastForwardPlan.forward`` on the same window (the module docstring
    describes the per-layer update call shapes and the construction-time
    BLAS probe backing that guarantee).  :meth:`push_many` advances whole
    blocks of samples with the same bit guarantee while amortising the
    per-push Python overhead, which is what makes single-stream replay
    several times faster than re-running the batch plan per window.

    Construction raises ``ValueError`` for backbones the scheme cannot
    update causally -- any padded conv, or a strided conv that is not
    right-anchored on the window (``(L_in - kernel) % stride != 0``) -- and
    when the BLAS probe fails; use :meth:`supports` to test first.  Callers
    fall back to the batch plan in that case.  A reset (or any gap in the
    stream) requires :meth:`reset`, after which the plan warms up again
    from scratch.

    ``heads`` optionally restricts which heads are evaluated per push (the
    serving hot path only needs ``log_var``); restricting heads does not
    change the bits of the ones kept.
    """

    def __init__(self, plan: FastForwardPlan,
                 heads: Optional[Sequence[str]] = None) -> None:
        self._plan = plan
        self._in_channels = plan._in_channels
        self._in_length = plan._in_length
        if heads is None:
            head_names = list(plan._heads)
        else:
            unknown = [name for name in heads if name not in plan._heads]
            if unknown:
                raise ValueError(f"unknown heads {unknown!r}")
            head_names = list(heads)
        self._heads = {name: plan._heads[name] for name in head_names}

        # -- layer walk: conv recipes + ReLU placement --------------------- #
        self._leading_relu = False
        convs: List[_IncrementalConv] = []
        channels, length, d = self._in_channels, self._in_length, 1
        for step, layer in plan._steps:
            if step != "conv":
                if convs:
                    convs[-1].relu_after = True
                else:
                    self._leading_relu = True
                continue
            if layer.padding != 0:
                raise ValueError(
                    "incremental plan needs unpadded (causal) convolutions, "
                    f"conv {len(convs)} has padding={layer.padding}"
                )
            if (length - layer.kernel_size) % layer.stride != 0:
                raise ValueError(
                    f"conv {len(convs)} is not right-anchored on the window: "
                    f"(L_in={length} - kernel={layer.kernel_size}) is not a "
                    f"multiple of stride={layer.stride}"
                )
            out_channels, out_length = plan._shapes[len(convs)]
            convs.append(_IncrementalConv(layer, channels, out_length, d))
            channels, length, d = out_channels, out_length, convs[-1].d_out
        self._convs = convs
        self._final_channels = channels
        self._final_length = length
        self._final_d = d

        # -- per-layer update modes (probed against the batch call) -------- #
        cached = getattr(plan, "_incremental_modes", None)
        modes: List[Tuple[str, int]] = []
        first_t = 0
        for index, conv in enumerate(convs):
            if cached is not None:
                conv.mode, conv.width = cached[index]
            else:
                conv.mode, conv.width = self._choose_mode(conv)
            modes.append((conv.mode, conv.width))
            # A layer's newest column first becomes computable once its taps
            # reach back only onto columns the previous layer has produced.
            first_t += (conv.kernel - 1) * conv.d_in
            conv.first_t = first_t
        plan._incremental_modes = tuple(modes)
        # Right-anchored layers satisfy L_in - 1 = (L_out - 1)s + k - 1, so
        # this telescopes to exactly in_length - 1: the first window fill.
        self._warm_t = first_t + (self._final_length - 1) * self._final_d

        # -- sliding buffers and scratch ----------------------------------- #
        # Buffer i holds one activation column of layer i per push, written
        # left to right; when the slack runs out the newest `in_length`
        # columns (every tap reaches back at most in_length - 1 pushes) are
        # compacted to the front.
        capacity = self._in_length + _BLOCK
        self._bufs: List[np.ndarray] = [
            np.zeros((self._in_channels, capacity))]
        self._pos: List[int] = [0]
        self._gathers: List[np.ndarray] = []
        self._gather_views: List[np.ndarray] = []
        self._outs: List[np.ndarray] = []
        for conv in convs:
            self._bufs.append(np.zeros((conv.out_channels, capacity)))
            self._pos.append(0)
            gather = np.zeros((conv.depth, conv.width))
            self._gathers.append(gather)
            self._gather_views.append(
                gather.reshape(conv.in_channels, conv.kernel, conv.width))
            self._outs.append(np.empty((conv.out_channels, conv.width)))
        self._final_buf = np.empty((self._final_channels, self._final_length))
        self._head_bufs = {name: np.empty((1, head.out_features))
                           for name, head in self._heads.items()}
        self._t = 0

    @staticmethod
    def _choose_mode(conv: "_IncrementalConv") -> Tuple[str, int]:
        candidates: List[Tuple[str, int]] = []
        if conv.out_length % _GEMM_CHUNK == 0:
            candidates.append(("pad8", _GEMM_CHUNK))
        candidates.append(("padL", conv.out_length))
        for mode, width in candidates:
            if _probe_update_scheme(conv.w2d, conv.depth, conv.out_length,
                                    width):
                return mode, width
        raise ValueError(
            "incremental plan disabled: this BLAS build reproduces none of "
            "the padded update call shapes bit for bit"
        )

    @classmethod
    def supports(cls, plan: FastForwardPlan) -> bool:
        """Whether ``plan``'s shapes (and the BLAS build) allow incremental
        updates; ``False`` means callers must stay on the batch plan."""
        try:
            cls(plan)
        except (TypeError, ValueError):
            return False
        return True

    # ------------------------------------------------------------------ #
    @property
    def samples_seen(self) -> int:
        """Pushes since construction or the last :meth:`reset`."""
        return self._t

    @property
    def warm(self) -> bool:
        """Whether the buffers cover a full window (push returns outputs)."""
        return self._t > self._warm_t

    def reset(self) -> None:
        """Forget all stream state (call on any gap in the sample stream)."""
        self._t = 0
        self._pos = [0] * len(self._pos)

    def _room(self, index: int, n: int) -> int:
        """Write position for ``n`` new columns in layer ``index``'s buffer,
        compacting the newest window of columns to the front when full."""
        buf = self._bufs[index]
        pos = self._pos[index]
        if pos + n <= buf.shape[1]:
            return pos
        keep = min(pos, self._in_length)
        buf[:, :keep] = buf[:, pos - keep:pos].copy()
        self._pos[index] = keep
        return keep

    # ------------------------------------------------------------------ #
    def push(self, sample: np.ndarray) -> Optional[Dict[str, np.ndarray]]:
        """Advance the stream by one sample of shape ``(in_channels,)``.

        Returns the head outputs (mapping name -> ``(1, out_features)``
        buffer, overwritten by the next push) for the window ending at this
        sample, or ``None`` while warming up.  The outputs are bit-identical
        to ``FastForwardPlan.forward`` on the same window.
        """
        sample = np.asarray(sample, dtype=np.float64).ravel()
        if sample.shape[0] != self._in_channels:
            raise ValueError(
                f"expected a sample of {self._in_channels} channels, "
                f"got {sample.shape[0]}"
            )
        t = self._t
        self._t = t + 1
        pos = self._room(0, 1)
        column = self._bufs[0][:, pos]
        if self._leading_relu:
            np.maximum(sample, 0.0, out=column)
        else:
            column[:] = sample
        self._pos[0] = pos + 1
        for index, conv in enumerate(self._convs):
            if t < conv.first_t:
                break       # deeper layers start strictly later
            previous = self._bufs[index]
            newest = self._pos[index] - 1        # column of push t
            gather = self._gather_views[index]
            kernel, d_in = conv.kernel, conv.d_in
            for tap in range(kernel):
                gather[:, tap, 0] = previous[
                    :, newest - (kernel - 1 - tap) * d_in]
            out = self._outs[index]
            np.matmul(conv.w2d, self._gathers[index], out=out)
            if conv.bias_col is not None:
                out += conv.bias_col
            if conv.relu_after:
                np.maximum(out, 0.0, out=out)
            pos = self._room(index + 1, 1)
            self._bufs[index + 1][:, pos] = out[:, 0]
            self._pos[index + 1] = pos + 1
        if t < self._warm_t:
            return None
        final = self._final_buf
        buf = self._bufs[-1]
        newest = self._pos[-1] - 1
        length, d = self._final_length, self._final_d
        for j in range(length):
            final[:, j] = buf[:, newest - (length - 1 - j) * d]
        flat = final.reshape(1, -1)
        results: Dict[str, np.ndarray] = {}
        for name, head in self._heads.items():
            out = self._head_bufs[name]
            # same einsum as the batch plan: its reduction order is
            # batch-size independent, so n=1 here matches any batch there.
            np.einsum("nf,of->no", flat, head.weight.data, out=out)
            if head.bias is not None:
                out += head.bias.data
            results[name] = out
        return results

    # ------------------------------------------------------------------ #
    def push_many(self, samples: np.ndarray) -> Dict[str, np.ndarray]:
        """Advance the stream by ``samples`` of shape ``(S, in_channels)``.

        Returns a mapping from head name to a fresh ``(S, out_features)``
        array whose row ``i`` holds the outputs for the window ending at
        sample ``i`` -- bit-identical to :meth:`push` one sample at a time
        (and therefore to the batch plan) -- with rows pushed during warm-up
        left as NaN.  Each layer advances a whole block per gemm call, so
        this is the high-throughput path for replay and bursty ingestion.
        """
        samples = np.ascontiguousarray(np.asarray(samples, dtype=np.float64))
        if samples.ndim != 2 or samples.shape[1] != self._in_channels:
            raise ValueError(
                f"expected samples of shape (S, {self._in_channels}), "
                f"got {samples.shape}"
            )
        total = samples.shape[0]
        outs = {name: np.full((total, head.out_features), np.nan)
                for name, head in self._heads.items()}
        i = 0
        # Warm-up pushes produce no outputs; run them one by one so the
        # chunked path below never has to gate layers on first_t.
        while i < total and self._t < self._warm_t:
            self.push(samples[i])
            i += 1
        while i < total:
            block = samples[i:i + _BLOCK]
            for name, arr in self._advance_block(block).items():
                outs[name][i:i + block.shape[0]] = arr
            i += block.shape[0]
        return outs

    def _advance_block(self, block: np.ndarray) -> Dict[str, np.ndarray]:
        """Advance every layer by one block of pushes (requires ``t`` past
        every layer's ``first_t``, i.e. the plan is warm)."""
        count = block.shape[0]
        self._t += count
        pos = self._room(0, count)
        target = self._bufs[0][:, pos:pos + count]
        np.copyto(target, block.T)
        if self._leading_relu:
            np.maximum(target, 0.0, out=target)
        self._pos[0] = pos + count
        for index, conv in enumerate(self._convs):
            previous = self._bufs[index]
            base = self._pos[index] - count      # column of the block start
            kernel, d_in = conv.kernel, conv.d_in
            group = _GEMM_CHUNK if conv.mode == "pad8" else conv.width
            padded = -(-count // group) * group
            gather = np.zeros((conv.depth, padded))
            g3 = gather.reshape(conv.in_channels, kernel, padded)
            for tap in range(kernel):
                start = base - (kernel - 1 - tap) * d_in
                g3[:, tap, :count] = previous[:, start:start + count]
            if conv.mode == "pad8":
                # one call at a multiple-of-8 width: every column sits in a
                # full width-8 chunk, the probed batch width class
                out = conv.w2d @ gather
            else:
                # padL: groups at exactly the batch call width
                out = np.empty((conv.out_channels, padded))
                for g in range(0, padded, group):
                    out[:, g:g + group] = conv.w2d @ np.ascontiguousarray(
                        gather[:, g:g + group])
            if conv.bias_col is not None:
                out += conv.bias_col
            if conv.relu_after:
                np.maximum(out, 0.0, out=out)
            pos = self._room(index + 1, count)
            self._bufs[index + 1][:, pos:pos + count] = out[:, :count]
            self._pos[index + 1] = pos + count
        buf = self._bufs[-1]
        base = self._pos[-1] - count
        length, d = self._final_length, self._final_d
        flat = np.empty((count, self._final_channels, length))
        for j in range(length):
            start = base - (length - 1 - j) * d
            flat[:, :, j] = buf[:, start:start + count].T
        flat2 = np.ascontiguousarray(flat.reshape(count, -1))
        results: Dict[str, np.ndarray] = {}
        for name, head in self._heads.items():
            out = np.einsum("nf,of->no", flat2, head.weight.data)
            if head.bias is not None:
                out += head.bias.data
            results[name] = out
        return results
