"""Loss functions shared by the neural detectors.

Includes the Gaussian negative log-likelihood and KL divergence used by the
VARADE variational objective (the exact expressions derived in Section 3.2 of
the paper) as well as standard regression losses for the baselines.
"""

from __future__ import annotations


from .tensor import Tensor

__all__ = [
    "mse_loss",
    "mae_loss",
    "gaussian_nll",
    "kl_standard_normal",
    "elbo_loss",
]


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error, averaged over every element."""
    diff = prediction - target
    return (diff * diff).mean()


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error, averaged over every element."""
    return (prediction - target).abs().mean()


def gaussian_nll(target: Tensor, mean: Tensor, log_var: Tensor) -> Tensor:
    """Gaussian negative log-likelihood (paper Eq. 5, constants dropped).

    ``NLL = 0.5 * (log(sigma^2) + (y - mu)^2 / sigma^2)`` averaged over every
    predicted element.  The model outputs ``log_var = log(sigma^2)`` so the
    variance is always positive.
    """
    inv_var = (-log_var).exp()
    squared_error = (target - mean) * (target - mean)
    per_element = 0.5 * (log_var + squared_error * inv_var)
    return per_element.mean()


def kl_standard_normal(mean: Tensor, log_var: Tensor) -> Tensor:
    """KL divergence from N(mean, sigma^2) to the standard normal prior (Eq. 6).

    ``D_KL = -0.5 * (1 + log(sigma^2) - mu^2 - sigma^2)`` averaged over every
    predicted element.  This is the regulariser that pushes the predicted
    distribution towards the prior when the model is uncertain, which is what
    makes the predicted variance usable as an anomaly score.
    """
    variance = log_var.exp()
    per_element = -0.5 * (1.0 + log_var - mean * mean - variance)
    return per_element.mean()


def elbo_loss(target: Tensor, mean: Tensor, log_var: Tensor,
              kl_weight: float = 1.0) -> Tensor:
    """Negative ELBO: reconstruction NLL plus weighted KL term (paper Eq. 7)."""
    return gaussian_nll(target, mean, log_var) + kl_weight * kl_standard_normal(mean, log_var)
