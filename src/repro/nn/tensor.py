"""Reverse-mode automatic differentiation on top of numpy arrays.

This module is the foundation of the :mod:`repro.nn` substrate.  The paper's
models were written in TensorFlow; no deep-learning framework is available in
this environment, so we provide a small but complete autograd engine.  A
:class:`Tensor` wraps a ``numpy.ndarray`` and records the operations applied to
it so that :meth:`Tensor.backward` can compute gradients of a scalar loss with
respect to every tensor created with ``requires_grad=True``.

The engine supports broadcasting for element-wise operations, matrix
multiplication, reductions, shape manipulation, indexing and one-dimensional
convolutions -- everything needed by the VARADE network, the AR-LSTM and the
convolutional auto-encoder baselines.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables gradient tracking.

    Used during inference (e.g. streaming anomaly scoring on the edge runtime)
    to avoid building the autograd graph.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded for autograd."""
    return _GRAD_ENABLED


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that its shape matches ``shape``.

    Element-wise operations broadcast their operands; the gradient flowing back
    must therefore be reduced over the broadcast dimensions.
    """
    if grad.shape == shape:
        return grad
    # Remove leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _op: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._backward: Callable[[np.ndarray], None] = lambda grad: None
        self._parents = _parents if self.requires_grad or any(
            p.requires_grad for p in _parents
        ) else ()
        self._op = _op

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ensure(value: Union["Tensor", ArrayLike]) -> "Tensor":
        if isinstance(value, Tensor):
            return value
        return Tensor(value)

    def _make_result(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        op: str,
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        result = Tensor(data, requires_grad=requires, _parents=parents if requires else (), _op=op)
        if requires:
            result._backward = backward
        return result

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return self._make_result(out_data, (self, other), "add", backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(-grad)

        return self._make_result(out_data, (self, other), "sub", backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return self._make_result(out_data, (self, other), "mul", backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))

        return self._make_result(out_data, (self, other), "div", backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make_result(out_data, (self,), "neg", backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make_result(out_data, (self,), "pow", backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
                return
            if a.ndim == 1:
                a2 = a.reshape(1, -1)
                grad2 = np.expand_dims(grad, axis=-2)
                self._accumulate((grad2 @ np.swapaxes(b, -1, -2)).reshape(a.shape))
                other._accumulate(_unbroadcast(np.swapaxes(a2, -1, -2) @ grad2, b.shape))
                return
            if b.ndim == 1:
                b2 = b.reshape(-1, 1)
                grad2 = np.expand_dims(grad, axis=-1)
                self._accumulate(_unbroadcast(grad2 @ b2.T, a.shape))
                other._accumulate((np.swapaxes(a, -1, -2) @ grad2).reshape(b.shape))
                return
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            self._accumulate(_unbroadcast(grad_a, a.shape))
            other._accumulate(_unbroadcast(grad_b, b.shape))

        return self._make_result(out_data, (self, other), "matmul", backward)

    # ------------------------------------------------------------------ #
    # Element-wise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make_result(out_data, (self,), "exp", backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make_result(out_data, (self,), "log", backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-300))

        return self._make_result(out_data, (self,), "sqrt", backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make_result(out_data, (self,), "relu", backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(mask, 1.0, negative_slope))

        return self._make_result(out_data, (self,), "leaky_relu", backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make_result(out_data, (self,), "sigmoid", backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return self._make_result(out_data, (self,), "tanh", backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return self._make_result(out_data, (self,), "abs", backward)

    def clip(self, minimum: Optional[float] = None, maximum: Optional[float] = None) -> "Tensor":
        out_data = np.clip(self.data, minimum, maximum)
        mask = np.ones_like(self.data)
        if minimum is not None:
            mask = mask * (self.data >= minimum)
        if maximum is not None:
            mask = mask * (self.data <= maximum)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make_result(out_data, (self,), "clip", backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            if axis is None:
                expanded = np.broadcast_to(grad, self.data.shape)
            else:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                if not keepdims:
                    for ax in sorted(a % self.data.ndim for a in axes):
                        grad = np.expand_dims(grad, axis=ax)
                expanded = np.broadcast_to(grad, self.data.shape)
            self._accumulate(expanded)

        return self._make_result(out_data, (self,), "sum", backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centred = self - mean
        return (centred * centred).mean(axis=axis, keepdims=keepdims)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            if axis is None:
                mask = (self.data == self.data.max()).astype(self.data.dtype)
                mask = mask / mask.sum()
                self._accumulate(mask * grad)
            else:
                expanded_max = self.data.max(axis=axis, keepdims=True)
                mask = (self.data == expanded_max).astype(self.data.dtype)
                mask = mask / mask.sum(axis=axis, keepdims=True)
                g = grad if keepdims else np.expand_dims(grad, axis=axis)
                self._accumulate(mask * g)

        return self._make_result(out_data, (self,), "max", backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.data.shape))

        return self._make_result(out_data, (self,), "reshape", backward)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.data.shape[:start_dim] + (-1,)
        return self.reshape(*shape)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make_result(out_data, (self,), "transpose", backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make_result(out_data, (self,), "getitem", backward)

    def pad1d(self, left: int, right: int, value: float = 0.0) -> "Tensor":
        """Pad the last axis with ``left``/``right`` constant entries."""
        pad_width = [(0, 0)] * (self.data.ndim - 1) + [(left, right)]
        out_data = np.pad(self.data, pad_width, constant_values=value)

        def backward(grad: np.ndarray) -> None:
            slicer = [slice(None)] * (self.data.ndim - 1)
            slicer.append(slice(left, out_data.shape[-1] - right if right else None))
            self._accumulate(grad[tuple(slicer)])

        return self._make_result(out_data, (self,), "pad1d", backward)

    # ------------------------------------------------------------------ #
    # Joining
    # ------------------------------------------------------------------ #
    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._ensure(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]

        def backward(grad: np.ndarray) -> None:
            offset = 0
            for tensor, size in zip(tensors, sizes):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(offset, offset + size)
                tensor._accumulate(grad[tuple(slicer)])
                offset += size

        requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
        result = Tensor(out_data, requires_grad=requires,
                        _parents=tuple(tensors) if requires else (), _op="concat")
        if requires:
            result._backward = backward
        return result

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._ensure(t) for t in tensors]
        expanded = []
        for tensor in tensors:
            shape = list(tensor.shape)
            shape.insert(axis if axis >= 0 else tensor.ndim + axis + 1, 1)
            expanded.append(tensor.reshape(*shape))
        return Tensor.concatenate(expanded, axis=axis)

    # ------------------------------------------------------------------ #
    # Convolution primitives (1-D, channels-first layout: (N, C, L))
    # ------------------------------------------------------------------ #
    def conv1d(self, weight: "Tensor", bias: Optional["Tensor"] = None,
               stride: int = 1, padding: int = 0) -> "Tensor":
        """1-D cross-correlation over a ``(N, C_in, L)`` input.

        ``weight`` has shape ``(C_out, C_in, K)``; the output has shape
        ``(N, C_out, L_out)`` with ``L_out = (L + 2*padding - K) // stride + 1``.
        """
        weight = self._ensure(weight)
        x = self.data
        w = weight.data
        if x.ndim != 3 or w.ndim != 3:
            raise ValueError("conv1d expects input (N, C, L) and weight (C_out, C_in, K)")
        batch, in_channels, length = x.shape
        out_channels, w_in_channels, kernel = w.shape
        if in_channels != w_in_channels:
            raise ValueError(
                f"conv1d channel mismatch: input has {in_channels}, weight expects {w_in_channels}"
            )
        if padding:
            x_padded = np.pad(x, ((0, 0), (0, 0), (padding, padding)))
        else:
            x_padded = x
        padded_length = x_padded.shape[-1]
        out_length = (padded_length - kernel) // stride + 1
        if out_length <= 0:
            raise ValueError(
                f"conv1d output length would be {out_length} (input length {length}, "
                f"kernel {kernel}, stride {stride}, padding {padding})"
            )

        # im2col: (N, C_in, K, L_out)
        col_index = (np.arange(out_length)[None, :] * stride + np.arange(kernel)[:, None])
        cols = x_padded[:, :, col_index]  # (N, C_in, K, L_out)
        cols_matrix = cols.reshape(batch, in_channels * kernel, out_length)
        w_matrix = w.reshape(out_channels, in_channels * kernel)
        out_data = np.einsum("ok,nkl->nol", w_matrix, cols_matrix)
        if bias is not None:
            bias = self._ensure(bias)
            out_data = out_data + bias.data.reshape(1, -1, 1)

        parents = (self, weight) + ((bias,) if bias is not None else ())

        def backward(grad: np.ndarray) -> None:
            # grad: (N, C_out, L_out)
            grad_w_matrix = np.einsum("nol,nkl->ok", grad, cols_matrix)
            weight._accumulate(grad_w_matrix.reshape(w.shape))
            if bias is not None:
                bias._accumulate(grad.sum(axis=(0, 2)))
            grad_cols_matrix = np.einsum("ok,nol->nkl", w_matrix, grad)
            grad_cols = grad_cols_matrix.reshape(batch, in_channels, kernel, out_length)
            grad_x_padded = np.zeros_like(x_padded)
            np.add.at(
                grad_x_padded,
                (slice(None), slice(None), col_index),
                grad_cols,
            )
            if padding:
                grad_x = grad_x_padded[:, :, padding:padded_length - padding]
            else:
                grad_x = grad_x_padded
            self._accumulate(grad_x)

        return self._make_result(out_data, parents, "conv1d", backward)

    def conv_transpose1d(self, weight: "Tensor", bias: Optional["Tensor"] = None,
                         stride: int = 1, padding: int = 0) -> "Tensor":
        """1-D transposed convolution (the gradient of :meth:`conv1d`).

        ``weight`` has shape ``(C_in, C_out, K)`` and the output length is
        ``(L - 1) * stride - 2*padding + K``.
        """
        weight = self._ensure(weight)
        x = self.data
        w = weight.data
        if x.ndim != 3 or w.ndim != 3:
            raise ValueError("conv_transpose1d expects input (N, C, L) and weight (C_in, C_out, K)")
        batch, in_channels, length = x.shape
        w_in_channels, out_channels, kernel = w.shape
        if in_channels != w_in_channels:
            raise ValueError(
                f"conv_transpose1d channel mismatch: input has {in_channels}, "
                f"weight expects {w_in_channels}"
            )
        full_length = (length - 1) * stride + kernel
        out_length = full_length - 2 * padding
        if out_length <= 0:
            raise ValueError("conv_transpose1d produces non-positive output length")

        col_index = (np.arange(length)[None, :] * stride + np.arange(kernel)[:, None])
        # cols[n, o, k, l] = sum_c x[n, c, l] * w[c, o, k]
        cols = np.einsum("ncl,cok->nokl", x, w)
        out_full = np.zeros((batch, out_channels, full_length))
        np.add.at(out_full, (slice(None), slice(None), col_index), cols)
        if padding:
            out_data = out_full[:, :, padding:full_length - padding]
        else:
            out_data = out_full
        if bias is not None:
            bias = self._ensure(bias)
            out_data = out_data + bias.data.reshape(1, -1, 1)

        parents = (self, weight) + ((bias,) if bias is not None else ())

        def backward(grad: np.ndarray) -> None:
            if padding:
                grad_full = np.zeros((batch, out_channels, full_length))
                grad_full[:, :, padding:full_length - padding] = grad
            else:
                grad_full = grad
            grad_cols = grad_full[:, :, col_index]  # (N, C_out, K, L)
            grad_x = np.einsum("nokl,cok->ncl", grad_cols, w)
            grad_w = np.einsum("nokl,ncl->cok", grad_cols, x)
            self._accumulate(grad_x)
            weight._accumulate(grad_w)
            if bias is not None:
                bias._accumulate(grad.sum(axis=(0, 2)))

        return self._make_result(out_data, parents, "conv_transpose1d", backward)

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node.grad is not None and node._parents:
                node._backward(node.grad)


def _tensor_sum(tensors: Iterable[Tensor]) -> Tensor:
    """Sum an iterable of tensors (used by losses and regularisers)."""
    total: Optional[Tensor] = None
    for tensor in tensors:
        total = tensor if total is None else total + tensor
    if total is None:
        raise ValueError("cannot sum an empty iterable of tensors")
    return total
