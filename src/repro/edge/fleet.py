"""Batched multi-stream inference: one detector serving N concurrent streams.

:class:`repro.edge.runtime.StreamingRuntime` reproduces the paper's edge test
script faithfully -- one sample from one stream per call -- but a deployment
that monitors a fleet of robot cells cannot afford a separate Python call,
graph-free forward and per-call overhead for every stream.
:class:`MultiStreamRuntime` multiplexes N concurrent
:class:`~repro.data.streaming.StreamReader` replays in lockstep: at every
tick it advances each live stream by one sample, maintains all rolling
context windows in a single ``(n_streams, window, channels)`` ring buffer,
gathers the full windows into one batch, and scores them with a single
:meth:`~repro.core.detector.AnomalyDetector.score_windows_batch` call.

Semantics are identical to running :class:`StreamingRuntime` once per
stream -- the same NaN prefix before the window fills, the same
``scores_current_sample`` alignment, the same ``max_samples`` budget and the
same thresholded alarms -- but the per-call overhead is amortised across the
whole fleet, which is where small-model edge throughput comes from.  The
parity suite (``tests/test_edge/test_fleet_parity.py``) checks the scores
are bit-identical for every detector in the study;
``benchmarks/bench_fleet_throughput.py`` measures the speed-up.

Latency accounting: one batched call scores several streams at once, so each
scored sample is charged an equal share (``batch wall-clock / batch size``)
of its call in the per-stream :class:`StreamingResult.latencies_s`; the
unsplit per-call numbers are kept in :attr:`FleetStats.batch_latencies_s`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..core.calibration import CalibratedThreshold
from ..core.detector import AnomalyDetector
from ..data.streaming import StreamReader
from ..drift.policy import AdaptationPolicy
from .runtime import StreamingResult, resolve_threshold

__all__ = ["FleetStats", "FleetResult", "MultiStreamRuntime"]


@dataclass
class FleetStats:
    """Aggregate throughput profile of one multi-stream run."""

    n_streams: int
    ticks: int                     # lockstep steps taken (longest stream length)
    samples_scored: int            # across all streams
    wall_time_s: float             # full run() wall clock, windows + scoring
    scoring_time_s: float          # wall clock inside score_windows_batch calls
    batch_sizes: np.ndarray        # rows per batched scoring call
    batch_latencies_s: np.ndarray  # wall clock per batched scoring call

    @property
    def samples_per_second(self) -> float:
        """End-to-end scored-sample throughput of the whole fleet."""
        if self.samples_scored == 0:
            return 0.0
        if self.wall_time_s <= 0.0:
            return float("inf")
        return self.samples_scored / self.wall_time_s

    @property
    def mean_batch_size(self) -> float:
        return float(self.batch_sizes.mean()) if self.batch_sizes.size else 0.0


@dataclass
class FleetResult:
    """Per-stream results plus fleet-wide throughput stats."""

    results: List[StreamingResult]  # one per input stream, in input order
    stats: FleetStats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[StreamingResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> StreamingResult:
        return self.results[index]


class MultiStreamRuntime:
    """Run one fitted detector over N concurrent streams with batched scoring.

    Streams may have different lengths; a stream that ends simply drops out
    of the batch while the rest keep going.  All streams must share the
    detector's channel count.

    Any detector honouring the ``score_windows_batch`` contract serves the
    fleet, including the int8 drop-ins produced by
    :meth:`~repro.core.detector.AnomalyDetector.quantize` -- quantized fleet
    serving is just ``MultiStreamRuntime(detector.quantize(calibration))``.
    When no explicit ``threshold`` is passed, the detector's own calibrated
    threshold (if any) drives the alarms; the fallback is resolved at
    :meth:`run` time, so a threshold calibrated after the runtime was built
    is still picked up.

    An optional :class:`~repro.drift.AdaptationPolicy` gives every stream an
    *independent* adaptation lane: the policy mints one
    :class:`~repro.drift.AdaptationState` per stream, so drift confirmed in
    one robot cell recalibrates only that cell's threshold while the rest of
    the fleet stays frozen.  Alarm semantics match the single-stream
    runtime: a sample is classified with the threshold in effect before the
    sample was observed, adaptations apply from the next tick, and a stream
    in which no drift is confirmed scores and alarms bit-identically to the
    non-adaptive engine.  Per-stream events land on
    :attr:`StreamingResult.adaptation_events`.
    """

    def __init__(self, detector: AnomalyDetector,
                 threshold: Optional[CalibratedThreshold] = None,
                 adaptation: Optional[AdaptationPolicy] = None) -> None:
        self.detector = detector
        #: explicit override; ``None`` defers to the detector's threshold.
        self.threshold = threshold
        #: optional online drift adaptation policy (one state per stream);
        #: ``None`` keeps every stream's threshold frozen.
        self.adaptation = adaptation

    def _resolve_threshold(self) -> Optional[CalibratedThreshold]:
        return resolve_threshold(self.threshold, self.detector)

    def run(self, readers: Sequence[StreamReader],
            max_samples: Optional[int] = None) -> FleetResult:
        """Advance every stream in lockstep, scoring one batch per tick.

        ``max_samples`` limits how many samples are scored *per stream* (the
        same budget :meth:`StreamingRuntime.run` applies to its one stream).
        """
        readers = list(readers)
        if not readers:
            raise ValueError("MultiStreamRuntime needs at least one stream")
        n_channels = readers[0].n_channels
        for reader in readers[1:]:
            if reader.n_channels != n_channels:
                raise ValueError(
                    f"all streams must share one channel count: "
                    f"got {reader.n_channels} and {n_channels}"
                )
        window = self.detector.window
        n_streams = len(readers)
        lengths = np.array([reader.n_samples for reader in readers], dtype=np.int64)
        max_length = int(lengths.max())
        data = [reader.data for reader in readers]

        scores = [np.full(int(length), np.nan) for length in lengths]
        alarms = [np.zeros(int(length), dtype=np.int64) for length in lengths]
        latencies: List[List[float]] = [[] for _ in range(n_streams)]
        scored = np.zeros(n_streams, dtype=np.int64)

        # One ring buffer for the whole fleet.  Streams push in lockstep, so
        # a single write slot cursor serves every live stream; rows of ended
        # streams go stale but are never scored again.
        ring = np.zeros((n_streams, window, n_channels))
        slots = np.arange(window)
        scores_current = self.detector.scores_current_sample
        resolved = self._resolve_threshold()
        threshold = None if resolved is None else resolved.threshold
        adapters = None
        if self.adaptation is not None:
            # One independent adaptation lane per stream: drift in one cell
            # must not recalibrate its neighbours.
            adapters = [self.adaptation.start(resolved) for _ in range(n_streams)]
        traces = None
        if resolved is not None:
            traces = [np.full(int(length), np.nan) for length in lengths]

        batch_sizes: List[int] = []
        batch_latencies: List[float] = []
        scoring_time = 0.0
        pushes = 0
        wall_start = time.perf_counter()
        for tick in range(max_length):
            active = np.flatnonzero(lengths > tick)
            samples = np.stack([data[stream][tick] for stream in active])
            if scores_current:
                # Window-state detectors (VARADE, AE) include the newest
                # sample in the context they score.
                ring[active, pushes % window] = samples
                filled = pushes + 1
            else:
                filled = pushes
            if filled >= window:
                if max_samples is None:
                    in_budget = np.arange(active.size)
                else:
                    in_budget = np.flatnonzero(scored[active] < max_samples)
                if in_budget.size:
                    stream_ids = active[in_budget]
                    # Gather every full window oldest-first from the ring.
                    oldest = filled % window
                    order = slots if oldest == 0 else np.concatenate(
                        [slots[oldest:], slots[:oldest]]
                    )
                    batch_windows = ring[stream_ids[:, None], order[None, :], :]
                    batch_targets = samples[in_budget]
                    start = time.perf_counter()
                    batch_scores = self.detector.score_windows_batch(
                        batch_windows, batch_targets
                    )
                    elapsed = time.perf_counter() - start
                    scoring_time += elapsed
                    batch_sizes.append(int(stream_ids.size))
                    batch_latencies.append(elapsed)
                    per_row = elapsed / stream_ids.size
                    for row, stream in enumerate(stream_ids):
                        value = float(batch_scores[row])
                        scores[stream][tick] = value
                        if adapters is not None:
                            current = adapters[stream].threshold.threshold
                            alarms[stream][tick] = int(value > current)
                            traces[stream][tick] = current
                            adapters[stream].observe(tick, value,
                                                     raw=batch_targets[row])
                        elif threshold is not None:
                            alarms[stream][tick] = int(value > threshold)
                            traces[stream][tick] = threshold
                        latencies[stream].append(per_row)
                        scored[stream] += 1
            if not scores_current:
                ring[active, pushes % window] = samples
            pushes += 1
        wall_time = time.perf_counter() - wall_start

        results = [
            StreamingResult(
                detector=self.detector.name,
                scores=scores[stream],
                labels=readers[stream].labels.copy(),
                alarms=alarms[stream],
                latencies_s=np.asarray(latencies[stream]),
                samples_scored=int(scored[stream]),
                adaptation_events=adapters[stream].events if adapters is not None else [],
                threshold_trace=None if traces is None else traces[stream],
            )
            for stream in range(n_streams)
        ]
        stats = FleetStats(
            n_streams=n_streams,
            ticks=max_length,
            samples_scored=int(scored.sum()),
            wall_time_s=wall_time,
            scoring_time_s=scoring_time,
            batch_sizes=np.asarray(batch_sizes, dtype=np.int64),
            batch_latencies_s=np.asarray(batch_latencies),
        )
        return FleetResult(results=results, stats=stats)
