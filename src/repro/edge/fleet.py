"""Batched multi-stream replay: a synchronous driver over ``repro.serve``.

.. deprecated::
    :class:`MultiStreamRuntime` predates the session-based serving API and
    is kept as a thin replay shim.  New serving code should use
    :mod:`repro.serve` -- :class:`~repro.serve.ScoringSession` +
    :class:`~repro.serve.MicroBatcher` for synchronous drivers, or
    :class:`~repro.serve.AnomalyService` for push-based async serving --
    which this class is now implemented on top of (see the migration table
    in the :mod:`repro.serve` docstring).

:class:`repro.edge.runtime.StreamingRuntime` reproduces the paper's edge
test script faithfully -- one sample from one stream per call.
:class:`MultiStreamRuntime` replays N recordings *in lockstep*: at every
tick it advances each live stream by one sample, submits every full window
to a shared :class:`~repro.serve.MicroBatcher`, and flushes once -- one
:meth:`~repro.core.detector.AnomalyDetector.score_windows_batch` call per
tick for the whole fleet.  Semantics are identical to running
:class:`StreamingRuntime` once per stream -- the same NaN prefix before
the window fills, the same ``scores_current_sample`` alignment, the same
``max_samples`` budget, the same thresholded alarms and per-stream drift
adaptation lanes -- and a stream that ends mid-run simply drains out of
the batch while the rest keep scoring.  The parity suite
(``tests/test_edge/test_fleet_parity.py``) checks the scores are
bit-identical for every detector in the study.

Latency accounting: one batched call scores several streams at once, so
each scored sample is charged an equal share (``batch wall-clock / batch
size``) of its call in the per-stream
:class:`StreamingResult.latencies_s`; the unsplit per-call numbers are
kept in :attr:`FleetStats.batch_latencies_s`, and
:attr:`FleetStats.latency_histogram` / :attr:`FleetStats.occupancy_histogram`
summarise enqueue-to-score latency and batch fill as streaming
p50/p95/p99 (no full-trace retention -- the same telemetry an unbounded
:class:`~repro.serve.AnomalyService` reports).
"""

from __future__ import annotations

import warnings

import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..core.calibration import CalibratedThreshold
from ..core.detector import AnomalyDetector
from ..data.streaming import StreamReader
from ..drift.policy import AdaptationPolicy
from .monitor import StreamingHistogram
from .runtime import StreamingResult, resolve_threshold

__all__ = ["FleetStats", "FleetResult", "MultiStreamRuntime"]


@dataclass
class FleetStats:
    """Aggregate throughput profile of one multi-stream run."""

    n_streams: int
    ticks: int                     # lockstep steps taken (longest stream length)
    samples_scored: int            # across all streams
    wall_time_s: float             # full run() wall clock, windows + scoring
    scoring_time_s: float          # wall clock inside score_windows_batch calls
    batch_sizes: np.ndarray        # rows per batched scoring call
    batch_latencies_s: np.ndarray  # wall clock per batched scoring call
    #: streaming enqueue-to-score latency summary (p50/p95/p99 without
    #: retaining the trace); populated by the micro-batcher.
    latency_histogram: Optional[StreamingHistogram] = field(default=None,
                                                            repr=False)
    #: streaming batch-occupancy summary (rows per flush).
    occupancy_histogram: Optional[StreamingHistogram] = field(default=None,
                                                              repr=False)

    @property
    def samples_per_second(self) -> float:
        """End-to-end scored-sample throughput of the whole fleet."""
        if self.samples_scored == 0:
            return 0.0
        if self.wall_time_s <= 0.0:
            return float("inf")
        return self.samples_scored / self.wall_time_s

    @property
    def mean_batch_size(self) -> float:
        return float(self.batch_sizes.mean()) if self.batch_sizes.size else 0.0

    @property
    def latency_p99_s(self) -> float:
        """p99 enqueue-to-score latency (0.0 when nothing was scored)."""
        if self.latency_histogram is None:
            return 0.0
        return self.latency_histogram.p99

    @property
    def occupancy_p50(self) -> float:
        """Median rows per batched scoring call (0.0 without flushes)."""
        if self.occupancy_histogram is None:
            return 0.0
        return self.occupancy_histogram.p50


@dataclass
class FleetResult:
    """Per-stream results plus fleet-wide throughput stats."""

    results: List[StreamingResult]  # one per input stream, in input order
    stats: FleetStats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[StreamingResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> StreamingResult:
        return self.results[index]


class MultiStreamRuntime:
    """Replay N recordings through one detector with batched scoring.

    .. deprecated::
        Kept as a synchronous replay shim over the session-based serving
        core; prefer :class:`repro.serve.AnomalyService` for new serving
        code (the :mod:`repro.serve` docstring has the migration table).

    Streams may have different lengths; a stream that ends mid-run drains
    and closes while the rest keep going (its ended session simply stops
    submitting windows).  All streams must share the detector's channel
    count.

    Any detector honouring the ``score_windows_batch`` contract serves the
    fleet, including the int8 drop-ins produced by
    :meth:`~repro.core.detector.AnomalyDetector.quantize`.  When no
    explicit ``threshold`` is passed, the detector's own calibrated
    threshold (if any) drives the alarms; the fallback is resolved at
    :meth:`run` time, so a threshold calibrated after the runtime was
    built is still picked up.

    An optional :class:`~repro.drift.AdaptationPolicy` gives every stream
    an *independent* adaptation lane (one
    :class:`~repro.drift.AdaptationState` per session), so drift confirmed
    in one robot cell recalibrates only that cell's threshold while the
    rest of the fleet stays frozen.  Alarm semantics match the
    single-stream runtime: a sample is classified with the threshold in
    effect before the sample was observed, adaptations apply from the next
    tick, and a stream in which no drift is confirmed scores and alarms
    bit-identically to the non-adaptive engine.
    """

    def __init__(self, detector: AnomalyDetector,
                 threshold: Optional[CalibratedThreshold] = None,
                 adaptation: Optional[AdaptationPolicy] = None) -> None:
        warnings.warn(
            "MultiStreamRuntime is a synchronous replay shim; new serving "
            "code should use repro.serve.AnomalyService (see the "
            "repro.serve docstring for the migration table)",
            DeprecationWarning, stacklevel=2)
        self.detector = detector
        #: explicit override; ``None`` defers to the detector's threshold.
        self.threshold = threshold
        #: optional online drift adaptation policy (one state per stream);
        #: ``None`` keeps every stream's threshold frozen.
        self.adaptation = adaptation

    def _resolve_threshold(self) -> Optional[CalibratedThreshold]:
        return resolve_threshold(self.threshold, self.detector)

    def run(self, readers: Sequence[StreamReader],
            max_samples: Optional[int] = None) -> FleetResult:
        """Advance every stream in lockstep, scoring one batch per tick.

        ``max_samples`` limits how many samples are scored *per stream* (the
        same budget :meth:`StreamingRuntime.run` applies to its one stream).
        """
        from ..serve.batcher import MicroBatcher
        from ..serve.session import ScoringSession

        readers = list(readers)
        if not readers:
            raise ValueError("MultiStreamRuntime needs at least one stream")
        n_channels = readers[0].n_channels
        for reader in readers[1:]:
            if reader.n_channels != n_channels:
                raise ValueError(
                    f"all streams must share one channel count: "
                    f"got {reader.n_channels} and {n_channels}"
                )
        n_streams = len(readers)
        lengths = [reader.n_samples for reader in readers]
        max_length = max(lengths)
        data = [reader.data for reader in readers]

        sessions = [
            ScoringSession(
                self.detector,
                stream_id=f"stream-{stream}",
                threshold=self.threshold,
                adaptation=self.adaptation,
                max_samples=max_samples,
                record=True,
                # The fleet's whole point is the one-gemm-per-tick batched
                # call; per-sample incremental pushes would serialise it.
                incremental=False,
            )
            for stream in range(n_streams)
        ]
        # One batch per lockstep tick: every live stream submits at most one
        # window, then a single flush scores them all.  The latency budget
        # never fires (the driver flushes explicitly), and the per-session
        # queues never exceed one entry, so backpressure is irrelevant here.
        batcher = MicroBatcher(
            self.detector,
            max_batch=n_streams,
            max_delay_ms=0.0,
            max_queue=1,
            record_batches=True,
        )

        wall_start = time.perf_counter()
        for tick in range(max_length):
            for stream in range(n_streams):
                if lengths[stream] > tick:
                    request = sessions[stream].submit(data[stream][tick])
                    if request is not None:
                        batcher.enqueue(request)
                elif not sessions[stream].closed:
                    # Lockstep-exhaustion handling: a finished stream closes
                    # its session and drops out of the batch while the rest
                    # of the fleet keeps scoring.
                    sessions[stream].close()
            batcher.flush()
        for session in sessions:
            session.close()
        wall_time = time.perf_counter() - wall_start

        results = [
            session.result(labels=reader.labels)
            for session, reader in zip(sessions, readers)
        ]
        stats = FleetStats(
            n_streams=n_streams,
            ticks=max_length,
            samples_scored=batcher.scored,
            wall_time_s=wall_time,
            scoring_time_s=batcher.scoring_time_s,
            batch_sizes=np.asarray(batcher.batch_sizes, dtype=np.int64),
            batch_latencies_s=np.asarray(batcher.batch_latencies_s),
            latency_histogram=batcher.queue_delay_histogram,
            occupancy_histogram=batcher.occupancy_histogram,
        )
        return FleetResult(results=results, stats=stats)
