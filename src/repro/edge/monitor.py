"""Board-metric monitoring (jetson-stats substitute).

The paper samples board metrics with the jetson-stats library while each
detector runs, then reports the mean over the run (and over a 6-minute idle
window as the baseline).  :class:`BoardMonitor` reproduces that measurement
chain on top of the analytical device model: given the estimated operating
point of a detector it synthesises a time series of noisy metric samples (as
a real monitor would observe) and reduces them to the same mean statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .device import EdgeDeviceSpec
from .estimator import EdgeMetrics

__all__ = ["MetricSample", "MonitoringSession", "BoardMonitor"]


@dataclass(frozen=True)
class MetricSample:
    """One polled sample of board metrics."""

    timestamp_s: float
    power_w: float
    cpu_percent: float
    gpu_percent: float
    ram_mb: float
    gpu_ram_mb: float


@dataclass
class MonitoringSession:
    """A sequence of polled samples plus their mean summary."""

    device: str
    detector: str
    samples: List[MetricSample] = field(default_factory=list)

    def mean(self) -> Dict[str, float]:
        """Mean of every metric over the session (what Table 2 reports)."""
        if not self.samples:
            raise ValueError("monitoring session has no samples")
        return {
            "power_w": float(np.mean([s.power_w for s in self.samples])),
            "cpu_percent": float(np.mean([s.cpu_percent for s in self.samples])),
            "gpu_percent": float(np.mean([s.gpu_percent for s in self.samples])),
            "ram_mb": float(np.mean([s.ram_mb for s in self.samples])),
            "gpu_ram_mb": float(np.mean([s.gpu_ram_mb for s in self.samples])),
        }


class BoardMonitor:
    """Synthesise jetson-stats style metric traces around an operating point."""

    def __init__(self, device: EdgeDeviceSpec, poll_rate_hz: float = 1.0,
                 relative_noise: float = 0.03,
                 rng: Optional[np.random.Generator] = None) -> None:
        if poll_rate_hz <= 0:
            raise ValueError("poll_rate_hz must be positive")
        if relative_noise < 0:
            raise ValueError("relative_noise must be non-negative")
        self.device = device
        self.poll_rate_hz = poll_rate_hz
        self.relative_noise = relative_noise
        self._rng = rng if rng is not None else np.random.default_rng()

    def _noisy(self, value: float, lower: float = 0.0,
               upper: Optional[float] = None) -> float:
        noise = self._rng.normal(0.0, self.relative_noise * max(abs(value), 1e-9))
        result = value + noise
        if upper is not None:
            result = min(result, upper)
        return max(result, lower)

    def observe_idle(self, duration_s: float = 360.0) -> MonitoringSession:
        """Monitor the board in idle state (the paper's 6-minute baseline)."""
        device = self.device
        session = MonitoringSession(device=device.name, detector="Idle")
        n_samples = max(int(duration_s * self.poll_rate_hz), 1)
        for index in range(n_samples):
            session.samples.append(MetricSample(
                timestamp_s=index / self.poll_rate_hz,
                power_w=self._noisy(device.idle_power_w),
                cpu_percent=self._noisy(device.idle_cpu_percent, upper=100.0),
                gpu_percent=self._noisy(device.idle_gpu_percent, upper=100.0),
                ram_mb=self._noisy(device.idle_ram_mb, upper=device.total_ram_mb),
                gpu_ram_mb=self._noisy(device.idle_gpu_ram_mb, upper=device.total_ram_mb),
            ))
        return session

    def observe_run(self, operating_point: EdgeMetrics,
                    duration_s: float = 60.0) -> MonitoringSession:
        """Monitor the board while a detector streams at its operating point."""
        device = self.device
        session = MonitoringSession(device=device.name, detector=operating_point.detector)
        n_samples = max(int(duration_s * self.poll_rate_hz), 1)
        for index in range(n_samples):
            session.samples.append(MetricSample(
                timestamp_s=index / self.poll_rate_hz,
                power_w=self._noisy(operating_point.power_w),
                cpu_percent=self._noisy(operating_point.cpu_percent, upper=100.0),
                gpu_percent=self._noisy(operating_point.gpu_percent, upper=100.0),
                ram_mb=self._noisy(operating_point.ram_mb, upper=device.total_ram_mb),
                gpu_ram_mb=self._noisy(operating_point.gpu_ram_mb, upper=device.total_ram_mb),
            ))
        return session
