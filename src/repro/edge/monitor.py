"""Board-metric monitoring (jetson-stats substitute) and streaming histograms.

The paper samples board metrics with the jetson-stats library while each
detector runs, then reports the mean over the run (and over a 6-minute idle
window as the baseline).  :class:`BoardMonitor` reproduces that measurement
chain on top of the analytical device model: given the estimated operating
point of a detector it synthesises a time series of noisy metric samples (as
a real monitor would observe) and reduces them to the same mean statistics.

:class:`StreamingHistogram` is the long-run telemetry companion: a
fixed-bin histogram that summarises per-sample latencies and batch
occupancies as p50/p95/p99 without retaining the full trace, so an
always-on serving process (:mod:`repro.serve`) can report tail latency over
millions of samples in constant memory.  :class:`repro.edge.FleetStats`
carries one for its batch latencies and one for its batch occupancies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .device import EdgeDeviceSpec
from .estimator import EdgeMetrics

__all__ = ["MetricSample", "MonitoringSession", "BoardMonitor",
           "StreamingHistogram"]


class StreamingHistogram:
    """Fixed-bin streaming histogram with quantile estimates.

    Values are counted into pre-declared bins (ascending ``edges``); values
    below the first or above the last edge land in open-ended overflow bins.
    Memory is ``O(n_bins)`` regardless of how many values are added -- the
    point of the class: an always-on serving loop can keep p99 latency over
    an unbounded run without retaining the trace.  Exact minimum, maximum,
    count and sum are tracked alongside, so :meth:`quantile` can clamp its
    in-bin interpolation to the observed range (a histogram fed a single
    value reports that value for every quantile).

    Use :meth:`log_spaced` for latencies (relative resolution across six
    decades) and :meth:`linear` for bounded counts such as batch occupancy.

    A histogram with zero samples reports ``0.0`` for every statistic
    (mean/min/max/quantiles): the summaries feed JSON stats replies, where
    an ``inf``/``nan`` sentinel would serialise to a non-compliant token.
    The internal min/max sentinels stay ``+/-inf`` so merging an empty
    histogram into a populated one (or vice versa) remains exact.
    """

    def __init__(self, edges: Sequence[float]) -> None:
        edges = np.asarray(edges, dtype=np.float64)
        if edges.ndim != 1 or edges.size < 2:
            raise ValueError("edges must be a 1-D sequence of at least 2 values")
        if not np.all(np.diff(edges) > 0):
            raise ValueError("edges must be strictly increasing")
        self.edges = edges
        # counts[0] underflows below edges[0]; counts[-1] overflows above
        # edges[-1]; counts[i] covers [edges[i-1], edges[i]).
        self._counts = np.zeros(edges.size + 1, dtype=np.int64)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- constructors ----------------------------------------------------- #
    @classmethod
    def log_spaced(cls, low: float = 1e-6, high: float = 10.0,
                   bins_per_decade: int = 20) -> "StreamingHistogram":
        """Logarithmic bins from ``low`` to ``high`` (latency-style range)."""
        if low <= 0 or high <= low:
            raise ValueError("need 0 < low < high for log-spaced edges")
        if bins_per_decade < 1:
            raise ValueError("bins_per_decade must be at least 1")
        decades = math.log10(high / low)
        n_edges = max(int(round(decades * bins_per_decade)) + 1, 2)
        return cls(np.logspace(math.log10(low), math.log10(high), n_edges))

    @classmethod
    def linear(cls, low: float, high: float, n_bins: int) -> "StreamingHistogram":
        """``n_bins`` equal-width bins across ``[low, high]`` (occupancy-style)."""
        if n_bins < 1:
            raise ValueError("n_bins must be at least 1")
        return cls(np.linspace(low, high, n_bins + 1))

    # -- ingestion -------------------------------------------------------- #
    def add(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            return
        self._counts[int(np.searchsorted(self.edges, value, side="right"))] += 1
        self._count += 1
        self._sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another histogram with identical edges into this one.

        Raises a descriptive :class:`ValueError` -- before touching any
        state -- when the bin layouts differ, since a blind ``+=`` on
        mismatched count arrays would corrupt this histogram.  Merging is
        the fleet-aggregation primitive (:class:`repro.cluster.ClusterStats`
        folds per-worker histograms), so the message names both layouts.
        """
        if self.edges.size != other.edges.size:
            raise ValueError(
                f"cannot merge histograms with different bin counts: "
                f"this one has {self.edges.size - 1} bins over "
                f"[{self.edges[0]:g}, {self.edges[-1]:g}], the other has "
                f"{other.edges.size - 1} bins over "
                f"[{other.edges[0]:g}, {other.edges[-1]:g}]")
        if not np.array_equal(self.edges, other.edges):
            divergent = int(np.flatnonzero(self.edges != other.edges)[0])
            raise ValueError(
                f"cannot merge histograms with different edges: both have "
                f"{self.edges.size - 1} bins but the edges first diverge at "
                f"index {divergent} ({self.edges[divergent]:g} vs "
                f"{other.edges[divergent]:g})")
        self._counts += other._counts
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # -- serialization ---------------------------------------------------- #
    def to_state(self) -> Dict[str, object]:
        """A JSON-safe snapshot that :meth:`from_state` restores exactly.

        The ``+/-inf`` min/max sentinels of an empty histogram are mapped
        to ``None`` so the state survives strict-JSON transport (the
        cluster ``snapshot`` wire op ships these between processes).
        """
        return {
            "edges": [float(edge) for edge in self.edges],
            "counts": [int(count) for count in self._counts],
            "sum": self._sum,
            "min": None if math.isinf(self._min) else self._min,
            "max": None if math.isinf(self._max) else self._max,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "StreamingHistogram":
        """Rebuild a histogram from :meth:`to_state` output (bit-exact)."""
        histogram = cls(state["edges"])
        counts = np.asarray(state["counts"], dtype=np.int64)
        if counts.shape != histogram._counts.shape:
            raise ValueError(
                f"histogram state has {counts.size} counts for "
                f"{histogram.edges.size} edges (need edges + 1)")
        if np.any(counts < 0):
            raise ValueError("histogram state has negative bin counts")
        histogram._counts = counts
        histogram._count = int(counts.sum())
        histogram._sum = float(state["sum"])
        low, high = state["min"], state["max"]
        histogram._min = math.inf if low is None else float(low)
        histogram._max = -math.inf if high is None else float(high)
        return histogram

    # -- statistics ------------------------------------------------------- #
    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q`` quantile by interpolating inside the hit bin.

        The estimate is exact to within one bin width (one log-step for
        :meth:`log_spaced` histograms) and clamped to the exact observed
        ``[min, max]`` range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = np.cumsum(self._counts)
        bin_index = int(np.searchsorted(cumulative, rank, side="left"))
        previous = cumulative[bin_index - 1] if bin_index > 0 else 0
        in_bin = self._counts[bin_index]
        # Bin support, with the open overflow bins pinned to the exact
        # observed extrema.
        low = self.edges[bin_index - 1] if bin_index > 0 else self._min
        high = self.edges[bin_index] if bin_index < self.edges.size else self._max
        if in_bin > 0:
            fraction = (rank - previous) / in_bin
            value = low + fraction * (high - low)
        else:
            value = low
        return float(min(max(value, self._min), self._max))

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def summary(self) -> Dict[str, float]:
        """The monitoring tuple the serving benchmark and stats report."""
        return {
            "count": float(self._count),
            "mean": self.mean,
            "min": self.min,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }

    def nonzero_bins(self) -> List[Tuple[float, float, int]]:
        """``(low, high, count)`` for every populated bin (debug/reporting)."""
        rows: List[Tuple[float, float, int]] = []
        for index, count in enumerate(self._counts):
            if count == 0:
                continue
            low = self.edges[index - 1] if index > 0 else -math.inf
            high = self.edges[index] if index < self.edges.size else math.inf
            rows.append((float(low), float(high), int(count)))
        return rows


@dataclass(frozen=True)
class MetricSample:
    """One polled sample of board metrics."""

    timestamp_s: float
    power_w: float
    cpu_percent: float
    gpu_percent: float
    ram_mb: float
    gpu_ram_mb: float


@dataclass
class MonitoringSession:
    """A sequence of polled samples plus their mean summary."""

    device: str
    detector: str
    samples: List[MetricSample] = field(default_factory=list)

    def mean(self) -> Dict[str, float]:
        """Mean of every metric over the session (what Table 2 reports)."""
        if not self.samples:
            raise ValueError("monitoring session has no samples")
        return {
            "power_w": float(np.mean([s.power_w for s in self.samples])),
            "cpu_percent": float(np.mean([s.cpu_percent for s in self.samples])),
            "gpu_percent": float(np.mean([s.gpu_percent for s in self.samples])),
            "ram_mb": float(np.mean([s.ram_mb for s in self.samples])),
            "gpu_ram_mb": float(np.mean([s.gpu_ram_mb for s in self.samples])),
        }


class BoardMonitor:
    """Synthesise jetson-stats style metric traces around an operating point."""

    def __init__(self, device: EdgeDeviceSpec, poll_rate_hz: float = 1.0,
                 relative_noise: float = 0.03,
                 rng: Optional[np.random.Generator] = None) -> None:
        if poll_rate_hz <= 0:
            raise ValueError("poll_rate_hz must be positive")
        if relative_noise < 0:
            raise ValueError("relative_noise must be non-negative")
        self.device = device
        self.poll_rate_hz = poll_rate_hz
        self.relative_noise = relative_noise
        self._rng = rng if rng is not None else np.random.default_rng()

    def _noisy(self, value: float, lower: float = 0.0,
               upper: Optional[float] = None) -> float:
        noise = self._rng.normal(0.0, self.relative_noise * max(abs(value), 1e-9))
        result = value + noise
        if upper is not None:
            result = min(result, upper)
        return max(result, lower)

    def observe_idle(self, duration_s: float = 360.0) -> MonitoringSession:
        """Monitor the board in idle state (the paper's 6-minute baseline)."""
        device = self.device
        session = MonitoringSession(device=device.name, detector="Idle")
        n_samples = max(int(duration_s * self.poll_rate_hz), 1)
        for index in range(n_samples):
            session.samples.append(MetricSample(
                timestamp_s=index / self.poll_rate_hz,
                power_w=self._noisy(device.idle_power_w),
                cpu_percent=self._noisy(device.idle_cpu_percent, upper=100.0),
                gpu_percent=self._noisy(device.idle_gpu_percent, upper=100.0),
                ram_mb=self._noisy(device.idle_ram_mb, upper=device.total_ram_mb),
                gpu_ram_mb=self._noisy(device.idle_gpu_ram_mb, upper=device.total_ram_mb),
            ))
        return session

    def observe_run(self, operating_point: EdgeMetrics,
                    duration_s: float = 60.0) -> MonitoringSession:
        """Monitor the board while a detector streams at its operating point."""
        device = self.device
        session = MonitoringSession(device=device.name, detector=operating_point.detector)
        n_samples = max(int(duration_s * self.poll_rate_hz), 1)
        for index in range(n_samples):
            session.samples.append(MetricSample(
                timestamp_s=index / self.poll_rate_hz,
                power_w=self._noisy(operating_point.power_w),
                cpu_percent=self._noisy(operating_point.cpu_percent, upper=100.0),
                gpu_percent=self._noisy(operating_point.gpu_percent, upper=100.0),
                ram_mb=self._noisy(operating_point.ram_mb, upper=device.total_ram_mb),
                gpu_ram_mb=self._noisy(operating_point.gpu_ram_mb, upper=device.total_ram_mb),
            ))
        return session
