"""Streaming inference runtime.

The paper tests every detector "by a software script that continuously reads
data from the sensors, prepares the data by applying a preprocessing
function, and calls the inference function".  :class:`StreamingRuntime`
reproduces that loop against a replayed recording: it maintains the rolling
context window, calls the detector's streaming scorer for every new sample,
measures the host wall-clock cost of each call, and (optionally) thresholds
the scores into alarms.

Host wall-clock timings are reported alongside the analytical edge estimates
(:mod:`repro.edge.estimator`): the host numbers validate that the relative
cost ranking of the detectors emerges from real execution, while the
estimates translate the workload onto the Jetson device envelopes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.calibration import CalibratedThreshold
from ..core.detector import AnomalyDetector
from ..data.streaming import StreamReader
from ..drift.policy import AdaptationEvent, AdaptationPolicy

__all__ = ["StreamingResult", "StreamingRuntime", "resolve_threshold"]


def resolve_threshold(explicit: Optional[CalibratedThreshold],
                      detector: AnomalyDetector) -> Optional[CalibratedThreshold]:
    """Alarm-threshold policy shared by the streaming and fleet runtimes.

    An explicitly passed threshold wins; otherwise the detector's own
    calibrated threshold (e.g. restored by
    :func:`repro.serialize.load_detector`) is used, and ``None`` means no
    alarms.  Called at run time, so a threshold calibrated after a runtime
    was constructed is still picked up.
    """
    if explicit is not None:
        return explicit
    return getattr(detector, "threshold", None)


@dataclass
class StreamingResult:
    """Outcome of one streaming run."""

    detector: str
    scores: np.ndarray            # (n_samples,) np.nan before the window fills
    labels: np.ndarray            # (n_samples,)
    alarms: np.ndarray            # (n_samples,) 0/1, only meaningful with a threshold
    latencies_s: np.ndarray       # per-inference host wall-clock times
    samples_scored: int
    #: confirmed drift recalibrations, in stream order (empty without an
    #: :class:`~repro.drift.AdaptationPolicy` or when no drift was confirmed).
    adaptation_events: List[AdaptationEvent] = field(default_factory=list)
    #: threshold in effect at each scored sample (np.nan elsewhere / without a
    #: threshold) -- a constant trace for frozen runs, stepwise for adaptive.
    threshold_trace: Optional[np.ndarray] = None

    @property
    def mean_latency_s(self) -> float:
        return float(self.latencies_s.mean()) if self.latencies_s.size else float("nan")

    @property
    def host_inference_hz(self) -> float:
        """Inferences per second implied by the mean host latency.

        ``nan`` when nothing was scored, ``inf`` when samples were scored but
        every latency was below the timer resolution.  (A mean of exactly 0.0
        used to fall through a ``mean and ...`` truthiness check and silently
        report ``nan``, indistinguishable from the empty run.)
        """
        mean = self.mean_latency_s
        if not np.isfinite(mean):
            return float("nan")
        if mean <= 0.0:
            return float("inf")
        return 1.0 / mean

    @property
    def valid_mask(self) -> np.ndarray:
        return np.isfinite(self.scores)


class StreamingRuntime:
    """Run a detector over a replayed stream the way the edge script does.

    When no explicit ``threshold`` is passed, the detector's own calibrated
    threshold (:attr:`repro.core.detector.AnomalyDetector.threshold`, e.g.
    restored by :func:`repro.serialize.load_detector`) is used for alarms.
    The fallback is resolved at :meth:`run` time, so a threshold calibrated
    after the runtime was built is still picked up.

    An optional :class:`~repro.drift.AdaptationPolicy` turns the frozen
    threshold into an adaptive one: every scored sample is fed to the
    policy's drift detector and a *confirmed* drift re-derives the threshold
    from recent scores.  A sample's alarm always uses the threshold in
    effect *before* that sample was observed (classify, then learn), so an
    adaptation takes effect from the next sample on, and a run in which no
    drift is confirmed is bit-identical -- scores and alarms -- to the
    frozen run.  The confirmed recalibrations are reported on
    :attr:`StreamingResult.adaptation_events`.
    """

    def __init__(self, detector: AnomalyDetector,
                 threshold: Optional[CalibratedThreshold] = None,
                 adaptation: Optional[AdaptationPolicy] = None,
                 incremental: bool = True) -> None:
        self.detector = detector
        #: explicit override; ``None`` defers to the detector's threshold.
        self.threshold = threshold
        #: optional online drift adaptation policy; ``None`` keeps the
        #: threshold frozen for the whole run.
        self.adaptation = adaptation
        #: score via the detector's O(1)-per-sample incremental scorer when
        #: it offers one (bit-identical to the batch path; detectors
        #: without one ignore this).  Benchmarks pin it off to compare the
        #: per-window batch call in isolation.
        self.incremental = incremental

    def _resolve_threshold(self) -> Optional[CalibratedThreshold]:
        return resolve_threshold(self.threshold, self.detector)

    def run(self, reader: StreamReader, max_samples: Optional[int] = None) -> StreamingResult:
        """Stream ``reader`` through the detector.

        ``max_samples`` limits how many samples are scored (after the context
        window fills), which keeps latency measurements cheap for the slower
        detectors.

        Implemented as the inline-scoring spelling of a
        :class:`repro.serve.ScoringSession` -- the same window/threshold/
        adaptation state machine that serves the micro-batched
        :class:`~repro.serve.AnomalyService`, so the sequential and served
        paths cannot drift apart.
        """
        from ..serve.session import ScoringSession

        session = ScoringSession(
            self.detector,
            stream_id="stream-0",
            threshold=self.threshold,
            adaptation=self.adaptation,
            max_samples=max_samples,
            record=True,
            incremental=self.incremental,
        )
        for sample in reader:
            session.push(sample.values)
        return session.result(labels=reader.labels)
