"""Edge device specifications.

The paper deploys every detector on two NVIDIA Jetson boards and reports, in
Table 2, the board-level metrics collected with jetson-stats: CPU and GPU
utilisation, RAM and GPU-RAM usage, power consumption, and the achieved
inference frequency.  No Jetson hardware is available in this reproduction,
so :mod:`repro.edge` models each board analytically: the specifications below
hold the compute/bandwidth envelope of the boards plus their measured idle
operating point (taken from the paper's Idle rows, which serve as the
calibration anchor the paper itself uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["EdgeDeviceSpec", "JETSON_XAVIER_NX", "JETSON_AGX_ORIN", "DEVICES", "get_device"]


@dataclass(frozen=True)
class EdgeDeviceSpec:
    """Compute, memory and power envelope of one edge board."""

    name: str
    cpu_cores: int
    total_ram_mb: float
    # Effective sustained throughput of a well-optimised kernel, *not* the
    # marketing peak: edge inference of small models rarely reaches peak FLOPs.
    gpu_gflops_effective: float
    cpu_gflops_per_core_effective: float
    memory_bandwidth_gbps: float
    # Idle operating point (paper Table 2, "Idle" rows).
    idle_power_w: float
    idle_cpu_percent: float
    idle_gpu_percent: float
    idle_ram_mb: float
    idle_gpu_ram_mb: float
    # Power model: watts drawn at 100% utilisation above idle.
    cpu_active_power_w: float
    gpu_active_power_w: float
    dram_active_power_w: float
    # Per-inference framework overhead (data preparation + runtime dispatch)
    # for GPU-backed and CPU-backed models respectively.
    gpu_dispatch_overhead_s: float
    cpu_dispatch_overhead_s: float
    # Per-operation (kernel launch) overhead.  Small streaming models on edge
    # boards are dominated by this term rather than by arithmetic throughput.
    gpu_launch_overhead_s: float
    cpu_launch_overhead_s: float
    # Sustained int8 throughput relative to the float32 figures above.  Both
    # Jetson generations expose integer dot-product units (DP4A on Volta,
    # IMMA tensor cores on Ampere) whose effective advantage for small
    # streaming models is well below the marketing ratio; these multipliers
    # scale ``gpu_gflops_effective`` / ``cpu_gflops_per_core_effective`` when
    # a cost profile declares ``compute_dtype="int8"``.
    gpu_int8_speedup: float = 2.0
    cpu_int8_speedup: float = 1.5

    def describe(self) -> str:
        """One-line summary used in benchmark output."""
        return (f"{self.name}: {self.cpu_cores} cores, {self.total_ram_mb / 1024:.0f} GB RAM, "
                f"{self.gpu_gflops_effective:.0f} effective GPU GFLOPS, "
                f"{self.memory_bandwidth_gbps:.0f} GB/s")


# Jetson Xavier NX: 6-core Carmel CPU, 384-core Volta GPU, 16 GB shared LPDDR4x
# at 51.2 GB/s.  Effective throughputs are derated from peak (1.4 FP32 TFLOPS)
# to what small-batch streaming inference sustains.
JETSON_XAVIER_NX = EdgeDeviceSpec(
    name="Jetson Xavier NX",
    cpu_cores=6,
    total_ram_mb=16 * 1024,
    gpu_gflops_effective=180.0,
    cpu_gflops_per_core_effective=1.6,
    memory_bandwidth_gbps=51.2,
    idle_power_w=5.851,
    idle_cpu_percent=36.465,
    idle_gpu_percent=52.100,
    idle_ram_mb=5130.219,
    idle_gpu_ram_mb=537.235,
    cpu_active_power_w=1.6,
    gpu_active_power_w=5.5,
    dram_active_power_w=8.0,
    gpu_dispatch_overhead_s=0.014,
    cpu_dispatch_overhead_s=0.004,
    gpu_launch_overhead_s=0.0025,
    cpu_launch_overhead_s=0.0015,
    gpu_int8_speedup=2.0,
    cpu_int8_speedup=1.5,
)

# Jetson AGX Orin: 12-core Cortex-A78AE CPU, 2048-core Ampere GPU, 32 GB
# LPDDR5 at 204.8 GB/s.
JETSON_AGX_ORIN = EdgeDeviceSpec(
    name="Jetson AGX Orin",
    cpu_cores=12,
    total_ram_mb=32 * 1024,
    gpu_gflops_effective=420.0,
    cpu_gflops_per_core_effective=3.2,
    memory_bandwidth_gbps=204.8,
    idle_power_w=7.522,
    idle_cpu_percent=4.875,
    idle_gpu_percent=0.000,
    idle_ram_mb=3916.715,
    idle_gpu_ram_mb=243.289,
    cpu_active_power_w=9.5,
    gpu_active_power_w=5.2,
    dram_active_power_w=10.0,
    gpu_dispatch_overhead_s=0.008,
    cpu_dispatch_overhead_s=0.002,
    gpu_launch_overhead_s=0.0012,
    cpu_launch_overhead_s=0.0008,
    # Ampere's IMMA path is markedly better than Volta's DP4A.
    gpu_int8_speedup=3.0,
    cpu_int8_speedup=2.0,
)

DEVICES: Dict[str, EdgeDeviceSpec] = {
    JETSON_XAVIER_NX.name: JETSON_XAVIER_NX,
    JETSON_AGX_ORIN.name: JETSON_AGX_ORIN,
}


def get_device(name: str) -> EdgeDeviceSpec:
    """Look up a device spec by name (case-insensitive substring match allowed)."""
    if name in DEVICES:
        return DEVICES[name]
    lowered = name.lower()
    matches = [spec for key, spec in DEVICES.items() if lowered in key.lower()]
    if len(matches) == 1:
        return matches[0]
    raise KeyError(f"unknown edge device {name!r}; known devices: {sorted(DEVICES)}")
