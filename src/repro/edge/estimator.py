"""Analytical estimation of edge-deployment metrics.

Given a detector's per-inference cost profile (:class:`repro.core.InferenceCost`)
and an :class:`repro.edge.device.EdgeDeviceSpec`, the estimator predicts the
quantities the paper measures in Table 2: inference frequency, power
consumption, CPU/GPU utilisation and RAM / GPU-RAM usage.

The model is a roofline-style estimate: the time of one inference is the
dispatch overhead plus the larger of the compute time (split between GPU and
CPU according to the cost profile) and the memory-traffic time.  Utilisation
is the duty cycle of each engine while streaming at the achieved rate, and
power adds to the idle baseline an amount proportional to those duty cycles,
with per-device incremental-power constants calibrated against the paper's
idle rows.  Absolute numbers are therefore indicative; what the model is
designed to preserve is the *relative* behaviour of the six detectors (who is
fast, who is power-hungry, who is CPU-bound), which is what the paper's
trade-off analysis relies on.

Int8 profiles (``InferenceCost.compute_dtype == "int8"``, produced by
quantized detectors) additionally engage the device's integer-throughput
multipliers (:attr:`~repro.edge.device.EdgeDeviceSpec.gpu_int8_speedup`),
on top of the smaller parameter/activation byte counts the profile itself
reports -- quantization helps twice, in arithmetic rate and in memory
traffic, which is exactly the behaviour the paper's int8 rivals exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.detector import InferenceCost
from .device import EdgeDeviceSpec

__all__ = ["EdgeMetrics", "EdgeEstimator"]

# The dispatch-overhead constants in the device specs are expressed relative
# to this reference value (the Xavier NX CPU dispatch overhead).
_REFERENCE_CPU_DISPATCH_S = 0.004
# Resident size of the inference runtime itself (interpreter + framework).
_FRAMEWORK_RAM_MB = 220.0
_GPU_RUNTIME_RAM_MB = 290.0


@dataclass(frozen=True)
class EdgeMetrics:
    """Estimated deployment metrics of one detector on one device."""

    device: str
    detector: str
    inference_frequency_hz: float
    inference_latency_s: float
    power_w: float
    cpu_percent: float
    gpu_percent: float
    ram_mb: float
    gpu_ram_mb: float

    def as_row(self) -> dict:
        """Dictionary with the Table-2 column names."""
        return {
            "board": self.device,
            "model": self.detector,
            "cpu_percent": self.cpu_percent,
            "gpu_percent": self.gpu_percent,
            "ram_mb": self.ram_mb,
            "gpu_ram_mb": self.gpu_ram_mb,
            "power_w": self.power_w,
            "inference_hz": self.inference_frequency_hz,
        }


class EdgeEstimator:
    """Estimate Table-2 style metrics for a cost profile on a device."""

    def __init__(self, device: EdgeDeviceSpec) -> None:
        self.device = device

    # ------------------------------------------------------------------ #
    # Timing
    # ------------------------------------------------------------------ #
    def _timing_components(self, cost: InferenceCost) -> dict:
        """Break the per-inference latency into its components (seconds)."""
        device = self.device
        gpu_flops = cost.flops * cost.gpu_fraction
        cpu_flops = cost.flops * (1.0 - cost.gpu_fraction)

        # Int8 profiles run on the integer dot-product units, whose sustained
        # throughput is a device-specific multiple of the float32 figures.
        int8 = cost.compute_dtype == "int8"
        gpu_throughput_scale = device.gpu_int8_speedup if int8 else 1.0
        cpu_throughput_scale = device.cpu_int8_speedup if int8 else 1.0

        gpu_compute = 0.0
        if gpu_flops > 0:
            effective = device.gpu_gflops_effective * gpu_throughput_scale * 1e9 \
                * max(cost.parallel_efficiency, 1e-3)
            gpu_compute = gpu_flops / effective

        usable_cores = 1.0 + cost.parallel_efficiency * (device.cpu_cores - 1)
        cpu_compute = 0.0
        if cpu_flops > 0:
            effective = device.cpu_gflops_per_core_effective * cpu_throughput_scale \
                * 1e9 * usable_cores
            cpu_compute = cpu_flops / effective

        memory_time = cost.memory_traffic_bytes / (device.memory_bandwidth_gbps * 1e9)

        uses_gpu = cost.gpu_fraction > 0.5
        overhead_scale = device.cpu_dispatch_overhead_s / _REFERENCE_CPU_DISPATCH_S
        dispatch = device.gpu_dispatch_overhead_s if uses_gpu else device.cpu_dispatch_overhead_s
        dispatch += cost.per_call_overhead_s * overhead_scale
        launch_overhead = cost.n_kernel_launches * (
            device.gpu_launch_overhead_s if uses_gpu else device.cpu_launch_overhead_s
        )

        latency = dispatch + launch_overhead + max(gpu_compute + cpu_compute, memory_time)
        return {
            "gpu_compute": gpu_compute,
            "cpu_compute": cpu_compute,
            "memory": memory_time,
            "dispatch": dispatch,
            "launch": launch_overhead,
            "latency": latency,
            "uses_gpu": uses_gpu,
            "usable_cores": usable_cores,
        }

    def inference_latency(self, cost: InferenceCost) -> float:
        """Seconds per inference (dispatch + launches + max(compute, memory))."""
        return self._timing_components(cost)["latency"]

    def inference_frequency(self, cost: InferenceCost) -> float:
        """Sustained inferences per second when streaming continuously."""
        return 1.0 / self.inference_latency(cost)

    # ------------------------------------------------------------------ #
    # Full metric set
    # ------------------------------------------------------------------ #
    def estimate(self, cost: InferenceCost, detector_name: str,
                 max_rate_hz: Optional[float] = None) -> EdgeMetrics:
        """Estimate the full Table-2 metric set.

        ``max_rate_hz`` caps the streaming rate (e.g. the sensor rate); when
        the detector is faster than the cap the engines idle in between
        inferences, lowering duty cycles and power accordingly.
        """
        device = self.device
        timing = self._timing_components(cost)
        latency = timing["latency"]
        achievable_hz = 1.0 / latency
        streaming_hz = achievable_hz if max_rate_hz is None else min(achievable_hz, max_rate_hz)
        uses_gpu = timing["uses_gpu"]

        # Engine occupancy per call: the GPU is considered busy while its
        # kernels are resident (launch overhead included -- tiny kernels keep
        # the engine clocked up without doing much arithmetic), the CPU while
        # it prepares data, dispatches work or runs CPU-side kernels.
        gpu_busy_per_call = timing["gpu_compute"] + (timing["launch"] if uses_gpu else 0.0)
        cpu_busy_per_call = timing["cpu_compute"] + timing["dispatch"] \
            + (0.0 if uses_gpu else timing["launch"])

        gpu_duty = min(gpu_busy_per_call * streaming_hz, 1.0)
        cpu_duty = min(cpu_busy_per_call * streaming_hz, 1.0)
        # Power follows the *arithmetic* duty cycles (idle-clocked kernels draw
        # little) plus the DRAM traffic duty cycle.
        gpu_power_duty = min(timing["gpu_compute"] * streaming_hz, 1.0)
        cpu_power_duty = min((timing["cpu_compute"] + timing["dispatch"]) * streaming_hz, 1.0)
        dram_duty = min(timing["memory"] * streaming_hz, 1.0)

        core_share = timing["usable_cores"] / device.cpu_cores
        cpu_percent = min(100.0, device.idle_cpu_percent
                          + (100.0 - device.idle_cpu_percent) * cpu_duty * core_share)
        gpu_percent = min(100.0, device.idle_gpu_percent
                          + (100.0 - device.idle_gpu_percent) * gpu_duty) if uses_gpu \
            else device.idle_gpu_percent

        power = device.idle_power_w \
            + device.gpu_active_power_w * gpu_power_duty \
            + device.cpu_active_power_w * cpu_power_duty \
            + device.dram_active_power_w * dram_duty

        parameter_mb = cost.parameter_bytes / 1e6
        activation_mb = cost.activation_bytes / 1e6
        ram_mb = device.idle_ram_mb + _FRAMEWORK_RAM_MB + 2.0 * parameter_mb + activation_mb
        if uses_gpu:
            gpu_ram_mb = device.idle_gpu_ram_mb + _GPU_RUNTIME_RAM_MB \
                + parameter_mb + 2.0 * activation_mb
        else:
            gpu_ram_mb = device.idle_gpu_ram_mb

        return EdgeMetrics(
            device=device.name,
            detector=detector_name,
            inference_frequency_hz=achievable_hz,
            inference_latency_s=latency,
            power_w=power,
            cpu_percent=cpu_percent,
            gpu_percent=gpu_percent,
            ram_mb=min(ram_mb, device.total_ram_mb),
            gpu_ram_mb=min(gpu_ram_mb, device.total_ram_mb),
        )
