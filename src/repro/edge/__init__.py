"""Edge-platform substrate: device models, runtimes, estimation, monitoring.

The package provides two complementary views of running a detector on an
edge board:

* **Analytical** -- :mod:`repro.edge.device` describes the Jetson envelopes
  (AGX Orin, Xavier NX) and :mod:`repro.edge.estimator` translates a
  detector's :class:`~repro.core.detector.InferenceCost` into roofline-style
  frequency/power/RAM estimates; :mod:`repro.edge.monitor` replays them as a
  jetson-stats style telemetry session.
* **Executable** -- the streaming runtimes replay recordings through a fitted
  detector and measure real host wall-clock costs.

Streaming runtimes
------------------

:class:`StreamingRuntime` is the paper's single-stream test script: one
sample from one stream per call to
:meth:`~repro.core.detector.AnomalyDetector.score_window`, with per-call
latency measurement and optional threshold alarms.

:class:`MultiStreamRuntime` (:mod:`repro.edge.fleet`) is the batched
lockstep replay engine: it advances N concurrent
:class:`~repro.data.streaming.StreamReader` replays one sample per tick and
scores one coalesced batch per tick through
:meth:`~repro.core.detector.AnomalyDetector.score_windows_batch`.  It emits
one :class:`StreamingResult` per stream -- bit-identical scores to the
sequential runtime, NaN prefix included -- plus aggregate
:class:`FleetStats` (samples/sec, per-batch latencies, batch sizes, and
streaming p50/p95/p99 latency / batch-occupancy histograms).

Both runtimes are thin drivers over the session-based serving core in
:mod:`repro.serve` (per-stream :class:`~repro.serve.ScoringSession` state
machines plus the :class:`~repro.serve.MicroBatcher` scheduler), which is
also where *new* serving code should go: :class:`~repro.serve.AnomalyService`
serves dynamically created sessions at unaligned push rates with
latency-budgeted micro-batching, an asyncio/TCP front door and explicit
backpressure -- ``MultiStreamRuntime`` is kept as a deprecated replay shim
(see the migration table in the :mod:`repro.serve` docstring).

Typical fleet usage::

    from repro.data import StreamReader
    from repro.edge import MultiStreamRuntime

    runtime = MultiStreamRuntime(detector, threshold=calibrated)
    fleet = runtime.run([StreamReader(s) for s in streams])
    fleet.stats.samples_per_second     # aggregate throughput
    fleet[0].scores                    # per-stream StreamingResult

Benchmark the batched engine against per-stream sequential scoring with::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet_throughput.py -q -s

which records samples/sec versus stream count; the score-parity suite lives
in ``tests/test_edge/test_fleet_parity.py``.

Export -> quantize -> deploy
----------------------------

A fitted detector becomes a deployable edge artifact in three steps::

    detector.fit(train)                      # train on the normal stream
    detector.calibrate_threshold(train)      # attach the alarm threshold
    quantized = detector.quantize(train)     # int8 weights + activations

    from repro.serialize import save_detector, load_detector
    save_detector(detector, "artifacts/varade")          # float artifact
    save_detector(quantized, "artifacts/varade-int8")    # int8 artifact

    # ... on the edge device ...
    served = load_detector("artifacts/varade-int8")
    fleet = MultiStreamRuntime(served).run(readers)      # threshold included

Both runtimes pick up the artifact's calibrated threshold automatically;
the estimator recognises int8 cost profiles
(``InferenceCost.compute_dtype == "int8"``) and applies the device's
integer-throughput multipliers on top of the smaller memory footprint.
``benchmarks/bench_quantized_inference.py`` measures the realised float
vs int8 batched throughput and the score drift of quantization;
``tests/golden/`` freezes per-detector scores so refactors of any of this
pipeline cannot silently change the numbers.

Online drift adaptation
-----------------------

Both runtimes accept an optional :class:`~repro.drift.AdaptationPolicy`
that turns the frozen deployment threshold into an adaptive one::

    from repro.drift import AdaptationPolicy

    runtime = StreamingRuntime(detector, adaptation=AdaptationPolicy())
    result = runtime.run(reader)
    result.adaptation_events      # confirmed drift recalibrations
    result.threshold_trace        # threshold applied at each scored sample

The policy watches the anomaly-score stream with a change detector
(Page-Hinkley by default), confirms a shift against the recent score
baseline, and re-derives the threshold with the same calibrator rule the
deployment used -- see :mod:`repro.drift` for the hysteresis/cooldown
machinery that keeps anomaly bursts from triggering self-blinding
recalibration.  :class:`MultiStreamRuntime` mints one independent
adaptation state per stream, so drift in one robot cell never recalibrates
its neighbours.  Alarm semantics: each sample is classified with the
threshold in effect *before* the sample is observed, so a no-drift run is
bit-identical -- scores and alarms -- to the non-adaptive path.
``benchmarks/bench_drift_adaptation.py`` measures the precision recovered
on the seeded drift scenarios of :func:`repro.data.build_drift_scenario`.
"""

from .device import DEVICES, EdgeDeviceSpec, JETSON_AGX_ORIN, JETSON_XAVIER_NX, get_device
from .estimator import EdgeEstimator, EdgeMetrics
from .fleet import FleetResult, FleetStats, MultiStreamRuntime
from .monitor import (BoardMonitor, MetricSample, MonitoringSession,
                      StreamingHistogram)
from .runtime import StreamingResult, StreamingRuntime

__all__ = [
    "DEVICES",
    "EdgeDeviceSpec",
    "JETSON_AGX_ORIN",
    "JETSON_XAVIER_NX",
    "get_device",
    "EdgeEstimator",
    "EdgeMetrics",
    "BoardMonitor",
    "MetricSample",
    "MonitoringSession",
    "StreamingHistogram",
    "FleetResult",
    "FleetStats",
    "MultiStreamRuntime",
    "StreamingResult",
    "StreamingRuntime",
]
