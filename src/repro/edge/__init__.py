"""Edge-platform substrate: Jetson device models, roofline-style metric
estimation, a streaming inference runtime, and a jetson-stats style monitor.
"""

from .device import DEVICES, EdgeDeviceSpec, JETSON_AGX_ORIN, JETSON_XAVIER_NX, get_device
from .estimator import EdgeEstimator, EdgeMetrics
from .monitor import BoardMonitor, MetricSample, MonitoringSession
from .runtime import StreamingResult, StreamingRuntime

__all__ = [
    "DEVICES",
    "EdgeDeviceSpec",
    "JETSON_AGX_ORIN",
    "JETSON_XAVIER_NX",
    "get_device",
    "EdgeEstimator",
    "EdgeMetrics",
    "BoardMonitor",
    "MetricSample",
    "MonitoringSession",
    "StreamingResult",
    "StreamingRuntime",
]
