"""Reproduction of VARADE (Mascolini et al., DAC 2024).

``repro`` packages everything the paper's study needs, implemented from
scratch on top of numpy:

* :mod:`repro.core` -- the VARADE detector (variational autoregressive
  forecaster whose predicted variance is the anomaly score);
* :mod:`repro.baselines` -- AR-LSTM, GBRF, convolutional auto-encoder, kNN
  and Isolation Forest;
* :mod:`repro.nn`, :mod:`repro.trees`, :mod:`repro.neighbors` -- the learning
  substrates (autograd NN framework, CART/boosting/isolation forest, kNN);
* :mod:`repro.robot` -- the simulated KUKA robot cell (kinematics, actions,
  IMU and power-meter models, collision injection);
* :mod:`repro.data` -- schema, normalisation, windowing, train/test builders
  and concept-drift scenario generation;
* :mod:`repro.drift` -- online score-stream drift detection and adaptive
  threshold recalibration for the streaming runtimes;
* :mod:`repro.edge` -- Jetson device models, metric estimation, streaming
  runtime;
* :mod:`repro.serve` -- the async serving API: per-stream scoring sessions,
  latency-budgeted micro-batched inference, the asyncio/TCP
  :class:`~repro.serve.AnomalyService` front door (``repro serve``);
* :mod:`repro.eval` -- AUC-ROC and friends, the Table-2 / Figure-3 experiment
  harness, ablations and reporting;
* :mod:`repro.serialize` -- versioned save/load of fitted detectors (npz
  weights + JSON manifest), the deployable edge artifact;
* :mod:`repro.pipeline` -- the unified deployment pipeline: declarative
  :class:`~repro.pipeline.DeploymentSpec`, staged
  :class:`~repro.pipeline.Pipeline` facade and the string-keyed detector
  registry, driven end to end by the ``python -m repro`` CLI
  (:mod:`repro.cli`).
"""

__version__ = "0.1.0"

from . import baselines, core, data, drift, edge, eval, neighbors, nn, robot, serve, trees
from .core import TrainingConfig, VaradeConfig, VaradeDetector
from .data import DatasetConfig, build_benchmark_dataset
from .eval import ExperimentConfig, run_full_experiment
from . import serialize
from .serialize import load_detector, save_detector
from . import pipeline
# DetectorSpec is deliberately not re-exported here: repro.pipeline.DetectorSpec
# (registry kind + params) and repro.baselines.DetectorSpec (named constructor)
# are distinct classes -- keep them module-qualified at call sites.
from .pipeline import DeploymentSpec, Pipeline

__all__ = [
    "baselines",
    "core",
    "data",
    "drift",
    "edge",
    "eval",
    "neighbors",
    "nn",
    "pipeline",
    "robot",
    "serialize",
    "serve",
    "trees",
    "load_detector",
    "save_detector",
    "DeploymentSpec",
    "Pipeline",
    "TrainingConfig",
    "VaradeConfig",
    "VaradeDetector",
    "DatasetConfig",
    "build_benchmark_dataset",
    "ExperimentConfig",
    "run_full_experiment",
    "__version__",
]
