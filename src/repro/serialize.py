"""Versioned save/load of fitted detectors (npz weights + JSON manifest).

A saved detector is a directory holding exactly two files:

* ``manifest.json`` -- format version, detector class, architecture /
  training configuration, loss history, the calibrated decision threshold
  and the fitted input scaler's hyper-parameters;
* ``arrays.npz`` -- every numeric blob of the fitted state (network
  parameters, tree node tables, kNN reference sets, int8 codes and scales,
  scaler statistics), stored uncompressed so float64 values round-trip
  bit-for-bit.

:func:`save_detector` / :func:`load_detector` cover VARADE, all five
baselines and the int8-quantized VARADE.  The contract, enforced by
``tests/test_serialize/test_round_trip.py``, is that a reloaded detector
reproduces :meth:`~repro.core.detector.AnomalyDetector.score_windows_batch`
bit-identically -- including the NaN alignment of
:meth:`~repro.core.detector.AnomalyDetector.score_stream` and the
classification of the calibrated threshold -- which is what makes the
directory a deployable edge artifact rather than a checkpoint.

Typical deployment flow (see the README for the full walkthrough)::

    detector.fit(train)
    detector.calibrate_threshold(train)
    save_detector(detector, "artifacts/varade")
    quantized = detector.quantize(train)
    save_detector(quantized, "artifacts/varade-int8")
    ...
    served = load_detector("artifacts/varade-int8")   # on the edge device
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from . import __version__
from .baselines.ar_lstm import ARLSTMConfig, ARLSTMDetector
from .baselines.autoencoder import AutoencoderConfig, AutoencoderDetector
from .baselines.gbrf import GBRFConfig, GBRFDetector
from .baselines.isolation_forest import IsolationForestConfig, IsolationForestDetector
from .baselines.knn import KNNConfig, KNNDetector
from .core.calibration import CalibratedThreshold
from .core.config import TrainingConfig, VaradeConfig
from .core.detector import AnomalyDetector, TrainingHistory, VaradeDetector
from .core.quantized import QuantizedVaradeDetector
from .data.normalization import MinMaxScaler, StandardScaler
from .nn.quant import QuantizedConv1d, QuantizedForwardPlan, QuantizedLinear

__all__ = [
    "FORMAT_VERSION",
    "SerializationError",
    "ArtifactNotFoundError",
    "UnsupportedFormatError",
    "UnknownDetectorError",
    "save_detector",
    "load_detector",
    "read_manifest",
    "artifact_fingerprint",
]

FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

Arrays = Dict[str, np.ndarray]


class SerializationError(RuntimeError):
    """Raised when a detector cannot be saved or a saved artifact is invalid."""


class ArtifactNotFoundError(SerializationError):
    """``path`` is not a saved-detector directory (manifest or arrays missing)."""


class UnsupportedFormatError(SerializationError):
    """The artifact's manifest declares a format version this build cannot read."""


class UnknownDetectorError(SerializationError):
    """The manifest names a detector class/kind no registry entry covers."""


# --------------------------------------------------------------------------- #
# Neural detectors: config dataclass + Module.state_dict()
# --------------------------------------------------------------------------- #
def _extract_network(detector) -> Arrays:
    return {f"network.{name}": value
            for name, value in detector.network.state_dict().items()}


def _restore_network(detector, arrays: Arrays) -> None:
    state = {name[len("network."):]: value for name, value in arrays.items()
             if name.startswith("network.")}
    detector.network.load_state_dict(state)


def _extract_varade(detector: VaradeDetector) -> Tuple[dict, Arrays]:
    return ({"config": asdict(detector.config), "training": asdict(detector.training)},
            _extract_network(detector))


def _restore_varade(manifest: dict, arrays: Arrays) -> VaradeDetector:
    detector = VaradeDetector(VaradeConfig(**manifest["config"]),
                              TrainingConfig(**manifest["training"]))
    _restore_network(detector, arrays)
    return detector


def _extract_ar_lstm(detector: ARLSTMDetector) -> Tuple[dict, Arrays]:
    return {"config": asdict(detector.config)}, _extract_network(detector)


def _restore_ar_lstm(manifest: dict, arrays: Arrays) -> ARLSTMDetector:
    detector = ARLSTMDetector(ARLSTMConfig(**manifest["config"]))
    _restore_network(detector, arrays)
    return detector


def _extract_autoencoder(detector: AutoencoderDetector) -> Tuple[dict, Arrays]:
    return {"config": asdict(detector.config)}, _extract_network(detector)


def _restore_autoencoder(manifest: dict, arrays: Arrays) -> AutoencoderDetector:
    detector = AutoencoderDetector(AutoencoderConfig(**manifest["config"]))
    _restore_network(detector, arrays)
    return detector


# --------------------------------------------------------------------------- #
# Tree / neighbour detectors: node tables and reference sets
# --------------------------------------------------------------------------- #
def _extract_gbrf(detector: GBRFDetector) -> Tuple[dict, Arrays]:
    arrays = {f"model.{name}": value
              for name, value in detector.model.to_arrays().items()}
    return {"config": asdict(detector.config)}, arrays


def _restore_gbrf(manifest: dict, arrays: Arrays) -> GBRFDetector:
    detector = GBRFDetector(GBRFConfig(**manifest["config"]))
    model_arrays = {name[len("model."):]: value for name, value in arrays.items()
                    if name.startswith("model.")}
    n_features = detector._tap_indices.shape[0] * detector.config.n_channels
    detector.model.load_arrays(model_arrays, n_features)
    return detector


def _extract_isolation_forest(detector: IsolationForestDetector) -> Tuple[dict, Arrays]:
    arrays = {f"forest.{name}": value
              for name, value in detector.forest.to_arrays().items()}
    return {"config": asdict(detector.config)}, arrays


def _restore_isolation_forest(manifest: dict, arrays: Arrays) -> IsolationForestDetector:
    detector = IsolationForestDetector(IsolationForestConfig(**manifest["config"]))
    forest_arrays = {name[len("forest."):]: value for name, value in arrays.items()
                     if name.startswith("forest.")}
    detector.forest.load_arrays(forest_arrays)
    return detector


def _extract_knn(detector: KNNDetector) -> Tuple[dict, Arrays]:
    if detector.scorer.reference_ is None:
        raise SerializationError("kNN detector has no fitted reference set")
    return {"config": asdict(detector.config)}, {"reference": detector.scorer.reference_}


def _restore_knn(manifest: dict, arrays: Arrays) -> KNNDetector:
    detector = KNNDetector(KNNConfig(**manifest["config"]))
    reference = np.asarray(arrays["reference"], dtype=np.float64)
    detector.scorer.reference_ = reference
    detector.scorer._reference_sq_norms = (reference ** 2).sum(axis=1)
    return detector


# --------------------------------------------------------------------------- #
# Quantized VARADE: int8 codes + scales + plan topology
# --------------------------------------------------------------------------- #
def _extract_quantized_varade(detector: QuantizedVaradeDetector) -> Tuple[dict, Arrays]:
    plan = detector.plan
    arrays: Arrays = {}
    conv_meta = []
    for index, conv in enumerate(plan.conv_layers):
        prefix = f"conv{index}."
        arrays[prefix + "weight_q"] = conv.weight_q
        arrays[prefix + "weight_scale"] = conv.weight_scale
        arrays[prefix + "act_scale"] = np.asarray([conv.act_scale])
        if conv.bias is not None:
            arrays[prefix + "bias"] = conv.bias
        conv_meta.append({"stride": conv.stride, "padding": conv.padding,
                          "has_bias": conv.bias is not None})
    for name, head in plan.heads.items():
        prefix = f"head.{name}."
        arrays[prefix + "weight_q"] = head.weight_q
        arrays[prefix + "weight_scale"] = head.weight_scale
        arrays[prefix + "act_scale"] = np.asarray([head.act_scale])
        if head.bias is not None:
            arrays[prefix + "bias"] = head.bias
    manifest = {
        "config": asdict(detector.config),
        "plan": {
            "steps": plan.steps,
            "convs": conv_meta,
            "heads": sorted(plan.heads),
        },
    }
    return manifest, arrays


def _restore_quantized_varade(manifest: dict, arrays: Arrays) -> QuantizedVaradeDetector:
    config = VaradeConfig(**manifest["config"])
    plan_meta = manifest["plan"]
    convs = []
    for index, meta in enumerate(plan_meta["convs"]):
        prefix = f"conv{index}."
        convs.append(QuantizedConv1d(
            arrays[prefix + "weight_q"],
            arrays[prefix + "weight_scale"],
            arrays.get(prefix + "bias") if meta["has_bias"] else None,
            stride=meta["stride"],
            padding=meta["padding"],
            act_scale=float(np.asarray(arrays[prefix + "act_scale"])[0]),
        ))
    heads = {}
    for name in plan_meta["heads"]:
        prefix = f"head.{name}."
        heads[name] = QuantizedLinear(
            arrays[prefix + "weight_q"],
            arrays[prefix + "weight_scale"],
            arrays.get(prefix + "bias"),
            act_scale=float(np.asarray(arrays[prefix + "act_scale"])[0]),
        )
    plan = QuantizedForwardPlan(convs, heads, in_channels=config.n_channels,
                                in_length=config.window, steps=plan_meta["steps"])
    return QuantizedVaradeDetector(config, plan)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_HANDLERS: Dict[str, Tuple[Callable, Callable]] = {
    "VaradeDetector": (_extract_varade, _restore_varade),
    "ARLSTMDetector": (_extract_ar_lstm, _restore_ar_lstm),
    "AutoencoderDetector": (_extract_autoencoder, _restore_autoencoder),
    "GBRFDetector": (_extract_gbrf, _restore_gbrf),
    "IsolationForestDetector": (_extract_isolation_forest, _restore_isolation_forest),
    "KNNDetector": (_extract_knn, _restore_knn),
    "QuantizedVaradeDetector": (_extract_quantized_varade, _restore_quantized_varade),
}


# --------------------------------------------------------------------------- #
# Shared deployment state: threshold + scaler
# --------------------------------------------------------------------------- #
def _threshold_to_manifest(threshold: Optional[CalibratedThreshold]) -> Optional[dict]:
    if threshold is None:
        return None
    return {"threshold": threshold.threshold, "method": threshold.method,
            "parameter": threshold.parameter}


def _threshold_from_manifest(entry: Optional[dict]) -> Optional[CalibratedThreshold]:
    if entry is None:
        return None
    return CalibratedThreshold(threshold=float(entry["threshold"]),
                               method=str(entry["method"]),
                               parameter=float(entry["parameter"]))


def _scaler_to_state(scaler) -> Tuple[Optional[dict], Arrays]:
    if scaler is None:
        return None, {}
    if isinstance(scaler, MinMaxScaler):
        if scaler.data_min_ is None:
            raise SerializationError("attached MinMaxScaler has not been fitted")
        return ({"class": "MinMaxScaler", "low": scaler.low, "high": scaler.high},
                {"scaler.data_min": scaler.data_min_, "scaler.data_max": scaler.data_max_})
    if isinstance(scaler, StandardScaler):
        if scaler.mean_ is None:
            raise SerializationError("attached StandardScaler has not been fitted")
        return ({"class": "StandardScaler", "eps": scaler.eps},
                {"scaler.mean": scaler.mean_, "scaler.std": scaler.std_})
    raise SerializationError(
        f"cannot serialize scaler of type {type(scaler).__name__}; "
        "use MinMaxScaler or StandardScaler"
    )


def _scaler_from_state(entry: Optional[dict], arrays: Arrays):
    if entry is None:
        return None
    if entry["class"] == "MinMaxScaler":
        scaler = MinMaxScaler(feature_range=(float(entry["low"]), float(entry["high"])))
        scaler.data_min_ = np.asarray(arrays["scaler.data_min"], dtype=np.float64)
        scaler.data_max_ = np.asarray(arrays["scaler.data_max"], dtype=np.float64)
        return scaler
    if entry["class"] == "StandardScaler":
        scaler = StandardScaler(eps=float(entry["eps"]))
        scaler.mean_ = np.asarray(arrays["scaler.mean"], dtype=np.float64)
        scaler.std_ = np.asarray(arrays["scaler.std"], dtype=np.float64)
        return scaler
    raise SerializationError(f"unknown scaler class {entry['class']!r}")


# --------------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------------- #
def save_detector(detector: AnomalyDetector, path, *, overwrite: bool = False,
                  extra_manifest: Optional[dict] = None) -> Path:
    """Save a fitted detector (weights + config + threshold + scaler) to ``path``.

    ``path`` becomes a directory holding ``manifest.json`` and ``arrays.npz``.
    Returns the directory path.  Refuses to overwrite an existing artifact
    unless ``overwrite=True``, and refuses to save unfitted detectors (a
    saved artifact is a deployable unit, not a checkpoint).

    ``extra_manifest`` entries are merged into the manifest verbatim (e.g.
    the ``deployment_spec`` a :class:`repro.pipeline.Pipeline` packages with
    its artifact); they may not shadow the reserved manifest keys.
    """
    class_name = type(detector).__name__
    handler = _HANDLERS.get(class_name)
    if handler is None:
        raise UnknownDetectorError(
            f"no serializer registered for {class_name}; known classes: "
            f"{sorted(_HANDLERS)}"
        )
    if not detector._fitted:
        raise SerializationError(f"{detector.name}: cannot save an unfitted detector")

    extract, _ = handler
    manifest_body, arrays = extract(detector)
    scaler_entry, scaler_arrays = _scaler_to_state(detector.scaler)
    arrays = dict(arrays)
    arrays.update(scaler_arrays)

    manifest = {
        "format_version": FORMAT_VERSION,
        "repro_version": __version__,
        "detector_class": class_name,
        "name": detector.name,
        "window": detector.window,
        "history": {
            "epoch_losses": [float(v) for v in detector.history.epoch_losses],
            "wall_time_s": float(detector.history.wall_time_s),
        },
        "threshold": _threshold_to_manifest(detector.threshold),
        "scaler": scaler_entry,
        "arrays": sorted(arrays),
    }
    manifest.update(manifest_body)
    if extra_manifest:
        clashes = sorted(set(extra_manifest) & set(manifest))
        if clashes:
            raise SerializationError(
                f"extra_manifest entries would shadow reserved manifest "
                f"keys: {clashes}"
            )
        manifest.update(extra_manifest)

    target = Path(path)
    if target.exists():
        if not overwrite:
            raise SerializationError(
                f"{target} already exists; pass overwrite=True to replace it"
            )
        if not target.is_dir():
            raise SerializationError(f"{target} exists and is not a directory")
    target.mkdir(parents=True, exist_ok=True)
    with open(target / MANIFEST_NAME, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    # Uncompressed npz: exact bits, fast load on the device.
    np.savez(target / ARRAYS_NAME, **arrays)
    return target


def read_manifest(path) -> dict:
    """Read and version-check an artifact's ``manifest.json``.

    Raises :class:`ArtifactNotFoundError` when ``path`` is not a
    saved-detector directory (distinguishing the missing file in the
    message) and :class:`UnsupportedFormatError` when the manifest declares
    a format version this build cannot read.
    """
    source = Path(path)
    manifest_path = source / MANIFEST_NAME
    arrays_path = source / ARRAYS_NAME
    if not manifest_path.is_file():
        raise ArtifactNotFoundError(
            f"{source} is not a saved detector: {MANIFEST_NAME} is missing "
            f"(expected a directory produced by save_detector)"
        )
    if not arrays_path.is_file():
        raise ArtifactNotFoundError(
            f"{source} is not a complete saved detector: {ARRAYS_NAME} is "
            f"missing next to {MANIFEST_NAME}"
        )
    with open(manifest_path, "r", encoding="utf-8") as handle:
        try:
            manifest = json.load(handle)
        except json.JSONDecodeError as error:
            raise SerializationError(
                f"{manifest_path} is not valid JSON: {error}"
            ) from error

    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise UnsupportedFormatError(
            f"unsupported format version {version!r} in {manifest_path} "
            f"(this build reads version {FORMAT_VERSION}); re-save the "
            f"detector with this version of repro"
        )
    return manifest


def load_detector(path, *, manifest: Optional[dict] = None) -> AnomalyDetector:
    """Load a detector saved by :func:`save_detector`.

    The returned detector is fitted, carries the saved threshold / scaler /
    history, and reproduces the saved detector's ``score_windows_batch``
    bit-identically.  Callers that already hold the artifact's manifest
    (from :func:`read_manifest`) can pass it to skip re-reading the file.

    Error paths are distinct: :class:`ArtifactNotFoundError` for a missing
    or incomplete artifact directory, :class:`UnsupportedFormatError` for an
    unknown manifest format version and :class:`UnknownDetectorError` for a
    detector class no registry entry covers -- all subclasses of
    :class:`SerializationError`, so existing ``except`` sites keep working.
    """
    source = Path(path)
    if manifest is None:
        manifest = read_manifest(source)
    arrays_path = source / ARRAYS_NAME

    class_name = manifest.get("detector_class")
    handler = _HANDLERS.get(class_name)
    if handler is None:
        raise UnknownDetectorError(
            f"unknown detector class {class_name!r} in manifest; this build "
            f"can restore: {sorted(_HANDLERS)}"
        )

    with np.load(arrays_path, allow_pickle=False) as payload:
        arrays = {name: payload[name] for name in payload.files}
    missing = set(manifest.get("arrays", [])) - set(arrays)
    if missing:
        raise SerializationError(f"arrays file is missing blobs: {sorted(missing)}")

    _, restore = handler
    detector = restore(manifest, arrays)
    detector.history = TrainingHistory(
        epoch_losses=[float(v) for v in manifest["history"]["epoch_losses"]],
        wall_time_s=float(manifest["history"]["wall_time_s"]),
    )
    detector.threshold = _threshold_from_manifest(manifest.get("threshold"))
    detector.scaler = _scaler_from_state(manifest.get("scaler"), arrays)
    detector._mark_fitted()
    return detector


def artifact_fingerprint(path) -> str:
    """Deterministic sha256 fingerprint of a saved artifact's content.

    Hashes the manifest (minus the wall-clock training time, the one field
    that legitimately differs between two otherwise identical training runs)
    plus every array's name, dtype, shape and exact bytes.  Two pipeline
    runs from the same :class:`repro.pipeline.DeploymentSpec` produce the
    same fingerprint -- the determinism contract enforced by
    ``tests/test_pipeline/test_determinism.py``.  The npz file itself is not
    hashed directly because zip archives embed timestamps.
    """
    import hashlib

    source = Path(path)
    manifest = read_manifest(source)
    manifest.get("history", {}).pop("wall_time_s", None)
    digest = hashlib.sha256()
    digest.update(json.dumps(manifest, sort_keys=True).encode("utf-8"))
    with np.load(source / ARRAYS_NAME, allow_pickle=False) as payload:
        for name in sorted(payload.files):
            array = payload[name]
            digest.update(name.encode("utf-8"))
            digest.update(str(array.dtype).encode("utf-8"))
            digest.update(str(array.shape).encode("utf-8"))
            digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()
