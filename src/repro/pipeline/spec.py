"""Declarative deployment specification for the VARADE pipeline.

A :class:`DeploymentSpec` is the single, versionable description of an edge
deployment: which detector to train (and with which hyper-parameters), what
data to train it on, how to calibrate the alarm threshold, whether to
quantize to int8, whether to adapt the threshold online under drift, and how
the runtime replays streams.  The spec round-trips to/from JSON
(:meth:`DeploymentSpec.to_json` / :meth:`DeploymentSpec.from_json`) with
strict unknown-key rejection, so a packaged artifact can embed the exact
spec that produced it and a spec file checked into a repo reproduces the
same artifact bit-for-bit (modulo wall-clock timing; see
:func:`repro.serialize.artifact_fingerprint`).

``DeploymentSpec.seed`` is the master seed: it is injected into the detector
config, the training config and the data builder wherever those do not pin
their own seed explicitly, so one integer determines every stochastic stage
of the pipeline.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields
from typing import (TYPE_CHECKING, Any, Dict, Mapping, Optional, Tuple, Type,
                    TypeVar, Union)

__all__ = [
    "SpecError",
    "DetectorSpec",
    "DataSpec",
    "CalibrationSpec",
    "QuantizationSpec",
    "AdaptationSpec",
    "ClusterSpec",
    "LifecycleSpec",
    "ServiceSpec",
    "RuntimeSpec",
    "DeploymentSpec",
]

_T = TypeVar("_T")


class SpecError(ValueError):
    """Raised when a deployment spec cannot be parsed or validated."""


def _require_mapping(value: Any, context: str) -> None:
    if not isinstance(value, Mapping):
        raise SpecError(
            f"{context} must be a mapping of keyword arguments, "
            f"got {type(value).__name__}"
        )


# --------------------------------------------------------------------------- #
# Sub-specs
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DetectorSpec:
    """Which detector to build, and with which configuration.

    ``kind`` is a :data:`repro.pipeline.DETECTORS` registry key
    (``"varade"``, ``"knn"``, ...).  ``params`` are the keyword arguments of
    that kind's config dataclass (``VaradeConfig``, ``KNNConfig``, ...);
    ``training`` are the :class:`~repro.core.config.TrainingConfig` kwargs
    for kinds that take a separate training config (VARADE).  Unknown keys
    inside ``params``/``training`` are rejected by the config dataclasses
    themselves at build time.
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    training: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if not self.kind:
            raise SpecError("detector.kind must be a non-empty registry key")
        _require_mapping(self.params, "detector.params")
        if self.training is not None:
            _require_mapping(self.training, "detector.training")


@dataclass(frozen=True)
class DataSpec:
    """Which dataset builder feeds the pipeline's ``fit``/``calibrate`` run.

    ``source`` selects the builder: ``"synthetic"`` for
    :func:`repro.data.build_synthetic_anomaly_dataset` (cheap, no robot
    simulation) or ``"benchmark"`` for
    :func:`repro.data.build_benchmark_dataset` (the paper's robot-cell
    protocol, ``params`` = :class:`~repro.data.DatasetConfig` kwargs).
    """

    source: str = "synthetic"
    params: Dict[str, Any] = field(default_factory=dict)

    _SOURCES = ("synthetic", "benchmark")

    def __post_init__(self) -> None:
        if self.source not in self._SOURCES:
            raise SpecError(
                f"data.source must be one of {self._SOURCES}, got {self.source!r}"
            )
        _require_mapping(self.params, "data.params")

    def build(self, seed: int) -> Any:
        """Build the dataset, defaulting its seed to the deployment seed.

        A typo'd or out-of-range builder kwarg surfaces as :class:`SpecError`
        so callers (the CLI in particular) report it cleanly; the error
        wrapping is kept narrow so genuine bugs inside the heavyweight
        benchmark simulation still surface as themselves, not as a spec
        problem.
        """
        params = dict(self.params)
        params.setdefault("seed", seed)
        if self.source == "synthetic":
            from ..data.dataset import build_synthetic_anomaly_dataset

            try:
                return build_synthetic_anomaly_dataset(**params)
            except (TypeError, ValueError) as error:
                # The synthetic generator is a thin numpy sampler: kwarg
                # binding and range failures here trace back to params.
                raise SpecError(
                    f"invalid data.params for source 'synthetic': {error}"
                ) from error
        from ..data.dataset import DatasetConfig, build_benchmark_dataset

        try:
            config = DatasetConfig(**params)
        except (TypeError, ValueError) as error:
            raise SpecError(
                f"invalid data.params for source 'benchmark': {error}"
            ) from error
        return build_benchmark_dataset(config)


@dataclass(frozen=True)
class CalibrationSpec:
    """Threshold calibration rule applied to the normal-score distribution."""

    method: str = "quantile"
    quantile: float = 0.99
    mad_factor: float = 6.0

    def __post_init__(self) -> None:
        if self.method not in ("quantile", "mad"):
            raise SpecError(f"calibration.method must be 'quantile' or 'mad', "
                            f"got {self.method!r}")
        # Mirror ThresholdCalibrator's checks so a bad spec fails at parse
        # time, not after a full training run.
        if not 0.0 < self.quantile < 1.0:
            raise SpecError(f"calibration.quantile must be in (0, 1), "
                            f"got {self.quantile!r}")
        if self.mad_factor <= 0:
            raise SpecError(f"calibration.mad_factor must be positive, "
                            f"got {self.mad_factor!r}")

    def calibrator(self) -> "ThresholdCalibrator":
        from ..core.calibration import ThresholdCalibrator

        return ThresholdCalibrator(method=self.method, quantile=self.quantile,
                                   mad_factor=self.mad_factor)


@dataclass(frozen=True)
class QuantizationSpec:
    """Int8 post-training quantization settings (presence enables the stage)."""

    headroom: float = 2.0

    def __post_init__(self) -> None:
        if self.headroom < 1.0:
            raise SpecError("quantization.headroom must be at least 1.0")


@dataclass(frozen=True)
class AdaptationSpec:
    """Online drift-adaptation policy settings (presence enables the stage).

    ``detector`` selects the score-stream change detector
    (``"page_hinkley"`` or ``"two_window"``) with ``detector_params`` as its
    constructor kwargs; the remaining fields mirror
    :class:`~repro.drift.AdaptationPolicy`.
    """

    detector: str = "page_hinkley"
    detector_params: Dict[str, Any] = field(default_factory=dict)
    reservoir_size: int = 1024
    min_reservoir: int = 100
    confirm_samples: int = 96
    confirm_iqr: float = 2.0
    trim_iqr: float = 4.0
    cooldown: int = 400
    reservoir_guard: Optional[float] = 2.5
    refresh_scaler: bool = False

    _DETECTORS = ("page_hinkley", "two_window")

    def __post_init__(self) -> None:
        if self.detector not in self._DETECTORS:
            raise SpecError(
                f"adaptation.detector must be one of {self._DETECTORS}, "
                f"got {self.detector!r}"
            )
        _require_mapping(self.detector_params, "adaptation.detector_params")
        # Constructing (and discarding) the drift detector runs its own
        # kwarg/range validation, so a bad detector_params fails at parse
        # time rather than mid-deployment.
        self._build_drift_detector()
        # Mirror AdaptationPolicy's checks so a bad spec fails at parse
        # time, not mid-deployment.
        if self.reservoir_size < 32:
            raise SpecError("adaptation.reservoir_size must be at least 32")
        if not 1 <= self.min_reservoir <= self.reservoir_size:
            raise SpecError("adaptation.min_reservoir must be in "
                            "[1, reservoir_size]")
        if self.confirm_samples < 8:
            raise SpecError("adaptation.confirm_samples must be at least 8")
        if self.confirm_iqr <= 0 or self.trim_iqr <= 0:
            raise SpecError("adaptation.confirm_iqr and adaptation.trim_iqr "
                            "must be positive")
        if self.cooldown < 0:
            raise SpecError("adaptation.cooldown must be non-negative")
        if self.reservoir_guard is not None and self.reservoir_guard <= 1.0:
            raise SpecError("adaptation.reservoir_guard must exceed 1 "
                            "(or be null)")

    def _build_drift_detector(self) -> "DriftDetector":
        from ..drift.detectors import PageHinkley, TwoWindowDrift

        detector_cls = PageHinkley if self.detector == "page_hinkley" \
            else TwoWindowDrift
        try:
            return detector_cls(**self.detector_params)
        except (TypeError, ValueError) as error:
            raise SpecError(
                f"invalid adaptation.detector_params for "
                f"{self.detector!r}: {error}"
            ) from error

    def policy(self) -> "AdaptationPolicy":
        from ..drift.policy import AdaptationPolicy

        return AdaptationPolicy(
            drift_detector=self._build_drift_detector(),
            reservoir_size=self.reservoir_size,
            min_reservoir=self.min_reservoir,
            confirm_samples=self.confirm_samples,
            confirm_iqr=self.confirm_iqr,
            trim_iqr=self.trim_iqr,
            cooldown=self.cooldown,
            reservoir_guard=self.reservoir_guard,
            refresh_scaler=self.refresh_scaler,
        )


@dataclass(frozen=True)
class ClusterSpec:
    """Sharded-serving settings (``service.cluster`` sub-entry).

    Presence turns ``repro serve`` / :meth:`Pipeline.deploy_cluster` into
    a multi-worker deployment: ``workers`` subprocesses each running the
    full serving stack, fronted by the :class:`repro.cluster.ShardRouter`
    consistent-hash shard router.  ``virtual_nodes`` sets the hash-ring
    granularity per worker; ``worker_transport`` picks how the router
    reaches workers (``"uds"`` keeps intra-host traffic off TCP);
    ``restart`` respawns crashed workers (their streams resume after a
    window re-fill); ``health_interval_s`` paces crash probes and fleet
    metrics refresh; ``recover_timeout_s`` bounds each crash-recovery
    stall.  See the "Cluster topology" section of ``docs/ARCHITECTURE.md``.
    """

    workers: int = 2
    virtual_nodes: int = 64
    worker_transport: str = "tcp"
    restart: bool = True
    health_interval_s: float = 2.0
    recover_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or isinstance(self.workers, bool) \
                or self.workers < 1:
            raise SpecError("cluster.workers must be a positive integer")
        if not isinstance(self.virtual_nodes, int) \
                or isinstance(self.virtual_nodes, bool) \
                or self.virtual_nodes < 1:
            raise SpecError("cluster.virtual_nodes must be a positive integer")
        if self.worker_transport not in ("tcp", "uds"):
            raise SpecError(
                f"cluster.worker_transport must be 'tcp' or 'uds', "
                f"got {self.worker_transport!r}")
        for name in ("health_interval_s", "recover_timeout_s"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or value <= 0:
                raise SpecError(f"cluster.{name} must be a positive number")

    def router_config(self) -> "Any":
        """Build the runtime :class:`repro.cluster.RouterConfig`."""
        from ..cluster import RouterConfig

        return RouterConfig(virtual_nodes=self.virtual_nodes,
                            health_interval_s=self.health_interval_s,
                            restart=self.restart,
                            recover_timeout_s=self.recover_timeout_s)


@dataclass(frozen=True)
class LifecycleSpec:
    """Model-lifecycle settings (``service.lifecycle`` sub-entry).

    Tunes the canary/promotion control plane (:mod:`repro.lifecycle`):
    ``fraction`` is the share of live streams a canary shadow-scores;
    the gate knobs mirror :class:`repro.lifecycle.CanaryGates` (samples
    required before judging, score-distribution shift ceiling,
    alarm-rate ratio vs the golden baseline, shadow-latency p99 budget);
    the ``watch_*`` knobs mirror :class:`repro.lifecycle.WatchPolicy`
    for the post-promotion meta-watcher (``watch: false`` disables it).
    Validation is delegated to the runtime classes -- one source of
    truth, surfaced as :class:`SpecError` at parse time.
    """

    fraction: float = 0.25
    min_samples: int = 256
    max_score_shift: float = 0.35
    max_alarm_ratio: float = 3.0
    alarm_rate_slack: float = 0.005
    max_latency_p99_s: float = 0.025
    watch: bool = True
    watch_interval_s: float = 1.0
    watch_alpha: float = 0.2
    watch_k: float = 6.0
    watch_warmup_ticks: int = 5
    watch_patience: int = 3
    watch_max_alarm_rate: float = 0.5

    def __post_init__(self) -> None:
        if not isinstance(self.fraction, (int, float)) \
                or isinstance(self.fraction, bool) \
                or not 0.0 < self.fraction <= 1.0:
            raise SpecError("lifecycle.fraction must be a number in (0, 1]")
        if not isinstance(self.watch, bool):
            raise SpecError("lifecycle.watch must be a boolean")
        try:
            self.gates()
            self.watch_policy()
        except (TypeError, ValueError) as error:
            raise SpecError(f"invalid lifecycle entry: {error}") from error

    def gates(self) -> "Any":
        """Build the runtime :class:`repro.lifecycle.CanaryGates`."""
        from ..lifecycle import CanaryGates

        return CanaryGates(
            min_samples=self.min_samples,
            max_score_shift=self.max_score_shift,
            max_alarm_ratio=self.max_alarm_ratio,
            alarm_rate_slack=self.alarm_rate_slack,
            max_latency_p99_s=self.max_latency_p99_s)

    def watch_policy(self) -> "Any":
        """Build the runtime :class:`repro.lifecycle.WatchPolicy`."""
        from ..lifecycle import WatchPolicy

        return WatchPolicy(
            interval_s=self.watch_interval_s,
            alpha=self.watch_alpha,
            k=self.watch_k,
            warmup_ticks=self.watch_warmup_ticks,
            patience=self.watch_patience,
            max_alarm_rate=self.watch_max_alarm_rate)


@dataclass(frozen=True)
class ServiceSpec:
    """Serving-API settings (presence enables ``Pipeline.deploy_service``).

    Mirrors :class:`repro.serve.ServiceConfig` -- micro-batcher sizing
    (``max_batch`` windows per flush, ``max_delay_ms`` latency budget),
    per-session queue bound (``max_queue``) with its ``backpressure``
    policy, and the wire endpoint the ``repro serve`` CLI listens on:
    ``transport`` picks TCP (``host``/``port``; port ``0`` binds an
    ephemeral port) or a Unix-domain socket (``"uds"`` + ``uds_path``)
    for co-located producers.  ``protocol`` restricts what connections
    may speak -- ``"auto"`` (default) negotiates JSON vs binary from each
    connection's first byte, ``"json"``/``"binary"`` accept only that
    protocol.  ``apply_scaler`` makes sessions normalise raw pushed
    samples with the artifact's training scaler.  ``incremental``
    (default on) lets sessions score each sample with the detector's
    O(1)-per-sample incremental scorer where the model supports it --
    bit-identical scores, lower hot-path latency; detectors without an
    incremental path ignore it.

    Observability (see :mod:`repro.obs` and ``docs/OPERATIONS.md``):
    ``observability`` turns on the metrics registry and trace recorder;
    ``trace_events`` bounds the trace ring (``0`` = metrics only);
    ``metrics_port`` additionally serves ``GET /metrics`` (Prometheus
    text format) and ``GET /trace`` on a plain-HTTP scrape port --
    setting it implies ``observability``, port ``0`` binds ephemerally;
    ``alarm_log`` appends every alarm as one JSON line to that file.
    """

    max_batch: int = 32
    max_delay_ms: float = 5.0
    max_queue: int = 256
    backpressure: str = "block"
    apply_scaler: bool = False
    incremental: bool = True
    host: str = "127.0.0.1"
    port: int = 7007
    transport: str = "tcp"
    protocol: str = "auto"
    uds_path: Optional[str] = None
    observability: bool = False
    trace_events: int = 4096
    metrics_port: Optional[int] = None
    alarm_log: Optional[str] = None
    #: sharded multi-worker serving (``repro serve --workers`` /
    #: ``Pipeline.deploy_cluster``); absent = single-process serving
    cluster: Optional[ClusterSpec] = None
    #: canary/promotion tuning (``repro canary`` / ``Pipeline.deploy_canary``);
    #: absent = library defaults
    lifecycle: Optional[LifecycleSpec] = None

    def __post_init__(self) -> None:
        # A spec file carries the cluster entry as a plain mapping;
        # normalise it to a ClusterSpec (strict keys, like every sub-spec).
        if self.cluster is not None and not isinstance(self.cluster,
                                                       ClusterSpec):
            object.__setattr__(
                self, "cluster",
                _from_mapping(ClusterSpec, self.cluster, "service.cluster"))
        if self.lifecycle is not None and not isinstance(self.lifecycle,
                                                         LifecycleSpec):
            object.__setattr__(
                self, "lifecycle",
                _from_mapping(LifecycleSpec, self.lifecycle,
                              "service.lifecycle"))
        # Run ServiceConfig's own validation (one source of truth for the
        # batcher knobs) so a bad spec fails at parse time, not when the
        # service starts; ValueErrors are re-raised as SpecErrors with the
        # spec-section prefix.
        try:
            self.config()
        except (TypeError, ValueError) as error:
            raise SpecError(f"invalid service entry: {error}") from error
        if not isinstance(self.max_batch, int) \
                or not isinstance(self.max_queue, int):
            raise SpecError("service.max_batch and service.max_queue must "
                            "be integers")
        if not isinstance(self.host, str) or not self.host:
            raise SpecError("service.host must be a non-empty string")
        if not isinstance(self.port, int) or isinstance(self.port, bool) \
                or not 0 <= self.port <= 65535:
            raise SpecError("service.port must be an integer in [0, 65535]")
        if self.transport not in ("tcp", "uds"):
            raise SpecError(
                f"service.transport must be 'tcp' or 'uds', "
                f"got {self.transport!r}"
            )
        if self.protocol not in ("auto", "json", "binary"):
            raise SpecError(
                f"service.protocol must be 'auto', 'json' or 'binary', "
                f"got {self.protocol!r}"
            )
        if self.uds_path is not None and \
                (not isinstance(self.uds_path, str) or not self.uds_path):
            raise SpecError(
                "service.uds_path must be a non-empty string (or null)")
        if self.transport == "uds" and self.uds_path is None:
            raise SpecError(
                "service.transport 'uds' needs a service.uds_path")
        if not isinstance(self.trace_events, int) \
                or isinstance(self.trace_events, bool):
            raise SpecError("service.trace_events must be an integer")
        if self.metrics_port is not None and (
                not isinstance(self.metrics_port, int)
                or isinstance(self.metrics_port, bool)
                or not 0 <= self.metrics_port <= 65535):
            raise SpecError("service.metrics_port must be an integer in "
                            "[0, 65535] (or null)")
        if self.alarm_log is not None and \
                (not isinstance(self.alarm_log, str) or not self.alarm_log):
            raise SpecError(
                "service.alarm_log must be a non-empty string (or null)")

    def config(self, **overrides: Any) -> "ServiceConfig":
        """Build the runtime :class:`repro.serve.ServiceConfig`."""
        from ..serve import ServiceConfig

        kwargs: Dict[str, Any] = {
            "max_batch": self.max_batch,
            "max_delay_ms": self.max_delay_ms,
            "max_queue": self.max_queue,
            "backpressure": self.backpressure,
            "apply_scaler": self.apply_scaler,
            "incremental": self.incremental,
            # A scrape port is only useful with a registry behind it.
            "observability": self.observability or self.metrics_port is not None,
            "trace_events": self.trace_events,
        }
        kwargs.update(overrides)
        return ServiceConfig(**kwargs)

    def accepted_protocols(self) -> Tuple[str, ...]:
        """Wire protocols the server should accept (``"auto"`` = all)."""
        from ..serve import PROTOCOLS

        return PROTOCOLS if self.protocol == "auto" else (self.protocol,)


@dataclass(frozen=True)
class RuntimeSpec:
    """Streaming/fleet replay settings and optional edge-board estimates."""

    sample_rate_hz: float = 50.0
    max_samples: Optional[int] = None
    #: edge boards (``repro.edge.DEVICES`` names) to estimate metrics for.
    devices: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise SpecError("runtime.sample_rate_hz must be positive")
        if self.max_samples is not None and self.max_samples < 1:
            raise SpecError("runtime.max_samples must be at least 1 (or null)")
        # A bare string would iterate per character; require a real sequence
        # of names.  JSON round-trips tuples as lists; normalise for
        # spec equality.
        if isinstance(self.devices, str) or \
                not all(isinstance(d, str) for d in self.devices):
            raise SpecError("runtime.devices must be a list of edge device "
                            "names (e.g. [\"Jetson AGX Orin\"])")
        object.__setattr__(self, "devices", tuple(self.devices))
        if self.devices:
            from ..edge import DEVICES

            unknown = [d for d in self.devices if d not in DEVICES]
            if unknown:
                raise SpecError(f"unknown runtime.devices {unknown}; "
                                f"known devices: {sorted(DEVICES)}")


# --------------------------------------------------------------------------- #
# Strict nested parsing
# --------------------------------------------------------------------------- #
def _from_mapping(cls: Type[_T], mapping: Mapping[str, Any], context: str) -> _T:
    """Build a spec dataclass from a mapping, rejecting unknown keys."""
    if not isinstance(mapping, Mapping):
        raise SpecError(f"{context} must be a mapping, got {type(mapping).__name__}")
    known = {f.name for f in fields(cls)}  # type: ignore[arg-type]
    unknown = sorted(set(mapping) - known)
    if unknown:
        raise SpecError(
            f"unknown key(s) {unknown} in {context}; known keys: {sorted(known)}"
        )
    try:
        return cls(**dict(mapping))
    except TypeError as error:
        raise SpecError(f"invalid {context}: {error}") from error


def _optional(cls: Type[_T], entry: Optional[Mapping[str, Any]],
              context: str) -> Optional[_T]:
    return None if entry is None else _from_mapping(cls, entry, context)


# --------------------------------------------------------------------------- #
# The deployment spec
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DeploymentSpec:
    """One declarative description of an end-to-end edge deployment.

    The spec covers every stage of :class:`repro.pipeline.Pipeline`:
    detector choice + hyper-parameters (``detector``), the training dataset
    (``data``, optional when datasets are passed in explicitly), the
    threshold calibration rule (``calibration``), optional int8 quantization
    (``quantization``), optional online drift adaptation (``adaptation``),
    optional serving-API settings (``service``, consumed by
    ``Pipeline.deploy_service`` and ``repro serve``), stream-replay/fleet
    settings (``runtime``) and the master ``seed``.
    """

    detector: DetectorSpec
    data: Optional[DataSpec] = None
    calibration: CalibrationSpec = field(default_factory=CalibrationSpec)
    quantization: Optional[QuantizationSpec] = None
    adaptation: Optional[AdaptationSpec] = None
    service: Optional[ServiceSpec] = None
    runtime: RuntimeSpec = field(default_factory=RuntimeSpec)
    seed: int = 0

    #: nested sub-spec fields: (field name, spec class, nullable).  The one
    #: table :meth:`from_dict` parses through, so adding a sub-spec means
    #: adding a dataclass field plus one row here.
    _NESTED_SPECS = (
        ("data", DataSpec, True),
        ("calibration", CalibrationSpec, False),
        ("quantization", QuantizationSpec, True),
        ("adaptation", AdaptationSpec, True),
        ("service", ServiceSpec, True),
        ("runtime", RuntimeSpec, False),
    )

    # -- JSON round-trip ------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (tuples become lists, canonically)."""
        def convert(value: Any) -> Any:
            if isinstance(value, (tuple, list)):
                return [convert(item) for item in value]
            if isinstance(value, dict):
                return {key: convert(item) for key, item in value.items()}
            return value

        return convert(dataclasses.asdict(self))

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "DeploymentSpec":
        """Parse a spec mapping, rejecting unknown keys at every level."""
        if not isinstance(mapping, Mapping):
            raise SpecError(
                f"deployment spec must be a mapping, got {type(mapping).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise SpecError(
                f"unknown key(s) {unknown} in deployment spec; "
                f"known keys: {sorted(known)}"
            )
        if "detector" not in mapping:
            raise SpecError("deployment spec needs a 'detector' entry")
        kwargs: Dict[str, Any] = {
            "detector": _from_mapping(DetectorSpec, mapping["detector"], "detector"),
        }
        for name, spec_cls, optional in cls._NESTED_SPECS:
            if name in mapping:
                parse = _optional if optional else _from_mapping
                kwargs[name] = parse(spec_cls, mapping[name], name)
        if "seed" in mapping:
            seed = mapping["seed"]
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise SpecError(f"seed must be an integer, got {seed!r}")
            kwargs["seed"] = seed
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "DeploymentSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"deployment spec is not valid JSON: {error}") from error
        return cls.from_dict(payload)

    # -- file helpers ---------------------------------------------------- #
    def save(self, path: Union[str, "Path"]) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, "Path"]) -> "DeploymentSpec":
        from pathlib import Path

        return cls.from_json(Path(path).read_text(encoding="utf-8"))


if TYPE_CHECKING:  # pragma: no cover - hints for type checkers only
    from pathlib import Path

    from ..core.calibration import ThresholdCalibrator
    from ..drift.detectors import DriftDetector
    from ..drift.policy import AdaptationPolicy
    from ..serve import ServiceConfig
