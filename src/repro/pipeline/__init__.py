"""Unified deployment pipeline: declarative spec -> fit -> calibrate ->
quantize -> package -> serve.

VARADE's pitch is an end-to-end edge workflow -- train a light variational
forecaster on normal data, calibrate an alarm threshold, optionally compress
to int8, ship a deployable artifact and serve it faster than the acquisition
rate.  Before this package, that workflow was five disconnected APIs
(``fit`` / ``calibrate_threshold`` / ``quantize()`` / ``save_detector`` /
``StreamingRuntime(adaptation=...)``) that every example and benchmark
re-wired by hand.  :mod:`repro.pipeline` is the one coherent, versioned
front door:

* :class:`DeploymentSpec` -- a declarative, JSON-round-trippable description
  of the whole deployment: detector kind + hyper-parameters, training
  settings, threshold calibration rule, optional int8 quantization, optional
  online drift adaptation, runtime/fleet settings and one master ``seed``
  that deterministically reaches every stage.
* :class:`Pipeline` -- the staged facade (``fit``, ``calibrate``,
  ``quantize``, ``package``, ``deploy_stream``, ``deploy_fleet``) plus the
  one-shot ``Pipeline.from_spec(spec).run(dataset)``.  A packaged artifact
  embeds the spec that produced it; :meth:`Pipeline.load` restores both on
  the edge device.
* :data:`DETECTORS` -- the string-keyed, decorator-based
  :class:`DetectorRegistry`.  VARADE, all five baselines and the
  int8-quantized VARADE register themselves (:mod:`repro.pipeline.builders`);
  third-party detectors can register additional kinds.

The ``python -m repro`` CLI (:mod:`repro.cli`) drives exactly this API with
``train`` / ``quantize`` / ``package`` / ``stream`` / ``bench`` subcommands,
so a deployment is reproducible from one spec file and one command line.

Quick example::

    from repro.pipeline import DeploymentSpec, DetectorSpec, Pipeline

    spec = DeploymentSpec(
        detector=DetectorSpec(kind="varade",
                              params={"window": 32, "base_feature_maps": 16},
                              training={"epochs": 16, "learning_rate": 3e-3}),
        seed=0,
    )
    report = Pipeline.from_spec(spec).run(dataset)   # fit + calibrate (+int8)
    print(report.serving_report.auc_roc, report.threshold.threshold)
"""

from . import builders  # noqa: F401  (registers the built-in detector kinds)
from .builders import DETECTOR_KINDS
from .pipeline import (DetectorReport, Pipeline, PipelineReport,
                       PipelineStageError, run_pipeline)
from .registry import DETECTORS, DetectorRegistry, RegisteredDetector
from .spec import (AdaptationSpec, CalibrationSpec, ClusterSpec, DataSpec,
                   DeploymentSpec, DetectorSpec, LifecycleSpec,
                   QuantizationSpec, RuntimeSpec, ServiceSpec, SpecError)

__all__ = [
    "DETECTOR_KINDS",
    "DETECTORS",
    "DetectorRegistry",
    "RegisteredDetector",
    "SpecError",
    "DetectorSpec",
    "DataSpec",
    "CalibrationSpec",
    "QuantizationSpec",
    "AdaptationSpec",
    "ClusterSpec",
    "LifecycleSpec",
    "ServiceSpec",
    "RuntimeSpec",
    "DeploymentSpec",
    "Pipeline",
    "PipelineReport",
    "DetectorReport",
    "PipelineStageError",
    "run_pipeline",
]
