"""String-keyed detector registry behind the deployment pipeline.

Every detector kind of the study registers itself here under a stable string
key (``"varade"``, ``"ar_lstm"``, ``"autoencoder"``, ``"gbrf"``, ``"knn"``,
``"isolation_forest"``, plus the inference-only ``"varade_int8"``).  The
registry is what lets a :class:`~repro.pipeline.spec.DeploymentSpec` name its
detector declaratively -- the spec carries ``kind`` + plain config kwargs,
and :meth:`DetectorRegistry.build` turns them into a constructed detector --
and what lets a packaged artifact be mapped back to the spec kind that
produced it (:meth:`DetectorRegistry.kind_for`).

Registration is decorator based; the builders for the built-in kinds live in
:mod:`repro.pipeline.builders` and run when :mod:`repro.pipeline` is
imported.  Third-party detectors can register additional kinds the same
way::

    from repro.pipeline import DETECTORS

    @DETECTORS.register("my_detector", config_cls=MyConfig,
                        detector_cls=MyDetector)
    def _build_my_detector(params, training):
        return MyDetector(MyConfig(**params))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Type

from ..core.detector import AnomalyDetector
from ..serialize import UnknownDetectorError
from .spec import SpecError

__all__ = ["DetectorBuilder", "RegisteredDetector", "DetectorRegistry", "DETECTORS"]

#: signature of a registered builder: ``(config_params, training_params) ->
#: detector``.  ``training_params`` is ``None`` for detectors whose config
#: carries its own training settings.
DetectorBuilder = Callable[[Dict[str, Any], Optional[Dict[str, Any]]], AnomalyDetector]


@dataclass(frozen=True)
class RegisteredDetector:
    """One registry entry: how to build and identify a detector kind."""

    kind: str
    display_name: str
    config_cls: Type[Any]
    detector_cls: Type[AnomalyDetector]
    builder: DetectorBuilder
    #: whether :meth:`DetectorRegistry.build` can construct this kind from a
    #: spec alone.  Inference-only artifacts (the int8 VARADE) are produced
    #: by a pipeline stage from a fitted float detector instead.
    trainable: bool = True
    #: whether the kind accepts a separate training-config mapping
    #: (VARADE's :class:`~repro.core.config.TrainingConfig`).
    accepts_training: bool = False

    def build(self, params: Mapping[str, Any],
              training: Optional[Mapping[str, Any]] = None) -> AnomalyDetector:
        if not self.trainable:
            raise UnknownDetectorError(
                f"detector kind {self.kind!r} is inference-only and cannot be "
                "built from a spec; build and fit its float counterpart, then "
                "run the pipeline's quantize stage"
            )
        if training is not None and not self.accepts_training:
            raise SpecError(
                f"detector kind {self.kind!r} does not take a separate "
                "training config; fold the settings into detector.params"
            )
        try:
            return self.builder(dict(params),
                                dict(training) if training is not None else None)
        except (TypeError, ValueError) as error:
            # A typo'd hyperparameter or out-of-range value surfaces here as
            # the config dataclass's TypeError/ValueError; re-raise as a spec
            # problem so callers (the CLI in particular) report it cleanly.
            raise SpecError(
                f"invalid detector params for kind {self.kind!r}: {error}"
            ) from error


class DetectorRegistry:
    """Decorator-based, string-keyed registry of detector kinds.

    Distinct from the legacy study builder of the same name,
    :class:`repro.baselines.DetectorRegistry` (constructor-parameterised,
    display-name keyed) -- keep both module-qualified at call sites.  Most
    code should use the process-wide :data:`DETECTORS` instance rather than
    constructing its own registry.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, RegisteredDetector] = {}

    # -- registration ---------------------------------------------------- #
    def register(self, kind: str, *, display_name: Optional[str] = None,
                 config_cls: Type[Any], detector_cls: Type[AnomalyDetector],
                 trainable: bool = True,
                 accepts_training: bool = False) -> Callable[[DetectorBuilder], DetectorBuilder]:
        """Decorator registering ``builder`` under ``kind``.

        The decorated function keeps working as a plain callable; the
        registry stores it alongside the config/detector classes so specs
        can be validated and loaded artifacts mapped back to their kind.
        """
        if not kind or not kind.replace("_", "").isalnum() or kind != kind.lower():
            raise ValueError(
                f"detector kind {kind!r} must be a non-empty lower_snake_case key"
            )

        def decorator(builder: DetectorBuilder) -> DetectorBuilder:
            if kind in self._entries:
                raise ValueError(f"detector kind {kind!r} is already registered")
            self._entries[kind] = RegisteredDetector(
                kind=kind,
                display_name=display_name if display_name is not None else kind,
                config_cls=config_cls,
                detector_cls=detector_cls,
                builder=builder,
                trainable=trainable,
                accepts_training=accepts_training,
            )
            return builder

        return decorator

    # -- lookup ---------------------------------------------------------- #
    def kinds(self) -> List[str]:
        """Registered kind keys, sorted."""
        return sorted(self._entries)

    def __contains__(self, kind: str) -> bool:
        return kind in self._entries

    def get(self, kind: str) -> RegisteredDetector:
        entry = self._entries.get(kind)
        if entry is None:
            raise UnknownDetectorError(
                f"unknown detector kind {kind!r}; registered kinds: {self.kinds()}"
            )
        return entry

    def build(self, kind: str, params: Mapping[str, Any],
              training: Optional[Mapping[str, Any]] = None) -> AnomalyDetector:
        """Construct an (unfitted) detector of ``kind`` from plain kwargs."""
        return self.get(kind).build(params, training)

    def kind_for(self, detector: AnomalyDetector) -> str:
        """Reverse lookup: the kind key of a detector instance's class."""
        for entry in self._entries.values():
            if type(detector) is entry.detector_cls:
                return entry.kind
        raise UnknownDetectorError(
            f"no registered detector kind for class {type(detector).__name__!r}; "
            f"registered kinds: {self.kinds()}"
        )

    def kind_for_display_name(self, name: str) -> str:
        """Map a legacy display name (``"VARADE"``, ``"kNN"``...) to its kind."""
        for entry in self._entries.values():
            if entry.display_name == name:
                return entry.kind
        raise UnknownDetectorError(
            f"no registered detector kind with display name {name!r}; known "
            f"names: {sorted(e.display_name for e in self._entries.values())}"
        )


#: the process-wide registry the pipeline, CLI and serialization bridge use.
DETECTORS: DetectorRegistry = DetectorRegistry()
