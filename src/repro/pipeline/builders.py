"""Built-in detector registrations for the deployment pipeline.

Importing this module (which :mod:`repro.pipeline` does) registers VARADE,
all five baselines and the int8-quantized VARADE on the process-wide
:data:`~repro.pipeline.registry.DETECTORS` registry.  Each builder maps a
spec's plain ``params`` mapping onto the detector's config dataclass, so
unknown hyper-parameter keys fail loudly inside the config's own
constructor.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..baselines.ar_lstm import ARLSTMConfig, ARLSTMDetector
from ..baselines.autoencoder import AutoencoderConfig, AutoencoderDetector
from ..baselines.gbrf import GBRFConfig, GBRFDetector
from ..baselines.isolation_forest import IsolationForestConfig, IsolationForestDetector
from ..baselines.knn import KNNConfig, KNNDetector
from ..core.config import TrainingConfig, VaradeConfig
from ..core.detector import VaradeDetector
from ..core.quantized import QuantizedVaradeDetector
from .registry import DETECTORS

__all__ = ["DETECTOR_KINDS"]

#: spec-buildable kinds in a stable order (the int8 VARADE is a pipeline
#: product, not a spec kind).
DETECTOR_KINDS = ("varade", "ar_lstm", "autoencoder", "gbrf", "knn",
                  "isolation_forest")

Params = Dict[str, Any]


@DETECTORS.register("varade", display_name="VARADE", config_cls=VaradeConfig,
                    detector_cls=VaradeDetector, accepts_training=True)
def _build_varade(params: Params, training: Optional[Params]) -> VaradeDetector:
    config = VaradeConfig(**params)
    return VaradeDetector(config, TrainingConfig(**training)
                          if training is not None else None)


@DETECTORS.register("ar_lstm", display_name="AR-LSTM", config_cls=ARLSTMConfig,
                    detector_cls=ARLSTMDetector)
def _build_ar_lstm(params: Params, training: Optional[Params]) -> ARLSTMDetector:
    return ARLSTMDetector(ARLSTMConfig(**params))


@DETECTORS.register("autoencoder", display_name="AE", config_cls=AutoencoderConfig,
                    detector_cls=AutoencoderDetector)
def _build_autoencoder(params: Params,
                       training: Optional[Params]) -> AutoencoderDetector:
    return AutoencoderDetector(AutoencoderConfig(**params))


@DETECTORS.register("gbrf", display_name="GBRF", config_cls=GBRFConfig,
                    detector_cls=GBRFDetector)
def _build_gbrf(params: Params, training: Optional[Params]) -> GBRFDetector:
    return GBRFDetector(GBRFConfig(**params))


@DETECTORS.register("knn", display_name="kNN", config_cls=KNNConfig,
                    detector_cls=KNNDetector)
def _build_knn(params: Params, training: Optional[Params]) -> KNNDetector:
    return KNNDetector(KNNConfig(**params))


@DETECTORS.register("isolation_forest", display_name="Isolation Forest",
                    config_cls=IsolationForestConfig,
                    detector_cls=IsolationForestDetector)
def _build_isolation_forest(params: Params,
                            training: Optional[Params]) -> IsolationForestDetector:
    return IsolationForestDetector(IsolationForestConfig(**params))


@DETECTORS.register("varade_int8", display_name="VARADE-int8",
                    config_cls=VaradeConfig, detector_cls=QuantizedVaradeDetector,
                    trainable=False)
def _build_varade_int8(params: Params,
                       training: Optional[Params]) -> QuantizedVaradeDetector:
    raise NotImplementedError(
        "varade_int8 artifacts are produced by Pipeline.quantize(), "
        "not built from a spec"
    )  # pragma: no cover - guarded by RegisteredDetector.build
