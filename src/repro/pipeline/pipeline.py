"""The staged deployment pipeline facade.

:class:`Pipeline` is the one front door to VARADE's end-to-end edge
workflow.  It is driven entirely by a declarative
:class:`~repro.pipeline.spec.DeploymentSpec` and exposes the workflow as
explicit stages that can be run one at a time or all at once::

    spec = DeploymentSpec(detector=DetectorSpec(kind="varade",
                                                params={"window": 32},
                                                training={"epochs": 16}))
    pipe = Pipeline.from_spec(spec)
    pipe.fit(train)                       # build (via the registry) + train
    pipe.calibrate()                      # threshold from the training scores
    pipe.quantize()                       # optional: spec.quantization
    pipe.package("artifacts/varade")      # deployable dir, spec embedded
    result = pipe.deploy_stream(test)     # replay through StreamingRuntime

    # or, one shot:
    report = Pipeline.from_spec(spec).run(dataset)

Every stage validates its preconditions and raises
:class:`PipelineStageError` with the stage order when called out of order.
A packaged artifact records the full spec that produced it, so
:meth:`Pipeline.load` restores both the serving detector and the deployment
configuration on the edge device.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

import numpy as np

from ..core.calibration import CalibratedThreshold
from ..core.detector import AnomalyDetector, ScoreResult
from ..data.streaming import StreamReader
from ..serialize import (UnknownDetectorError, load_detector, read_manifest,
                         save_detector)
from .registry import DETECTORS
from .spec import DeploymentSpec, SpecError

__all__ = ["PipelineStageError", "DetectorReport", "PipelineReport", "Pipeline"]

ArrayLike = Union[np.ndarray, Sequence[Sequence[float]]]


class PipelineStageError(RuntimeError):
    """A pipeline stage was invoked before its prerequisites ran."""


@dataclass
class DetectorReport:
    """Accuracy and timing of one serving detector inside a pipeline run."""

    name: str
    auc_roc: Optional[float]
    average_precision: Optional[float]
    best_f1: Optional[float]
    samples_scored: int
    score_result: ScoreResult = field(repr=False)


@dataclass
class PipelineReport:
    """Outcome of a one-shot :meth:`Pipeline.run`."""

    spec: DeploymentSpec
    threshold: CalibratedThreshold
    train_time_s: float
    float_report: DetectorReport
    quantized_report: Optional[DetectorReport] = None

    @property
    def serving_report(self) -> DetectorReport:
        return self.quantized_report if self.quantized_report is not None \
            else self.float_report


class Pipeline:
    """Staged ``fit -> calibrate -> quantize -> package -> deploy`` facade."""

    def __init__(self, spec: DeploymentSpec) -> None:
        if not isinstance(spec, DeploymentSpec):
            raise SpecError(
                f"Pipeline needs a DeploymentSpec, got {type(spec).__name__}"
            )
        # Fail at construction, not at fit time, when the kind is unknown.
        # Re-raised as SpecError: at this boundary an unknown kind is a bad
        # spec, not a serialization failure.
        try:
            DETECTORS.get(spec.detector.kind)
        except UnknownDetectorError as error:
            raise SpecError(str(error)) from error
        self.spec = spec
        self._detector: Optional[AnomalyDetector] = None
        self._quantized: Optional[AnomalyDetector] = None
        #: the packaged artifact directory this pipeline was load()ed from
        #: (None for freshly fitted pipelines); lets deploy_service stamp
        #: the artifact fingerprint on the service it builds.
        self.artifact_dir: Optional[Path] = None
        self._train_data: Optional[np.ndarray] = None
        #: calibrate()'s scores over the training stream, reused by the
        #: no-test-split evaluation fallback to avoid a second full pass.
        self._train_scores: Optional[ScoreResult] = None

    # ------------------------------------------------------------------ #
    # Construction / restoration
    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: DeploymentSpec) -> "Pipeline":
        """The canonical entry point: a pipeline configured by its spec."""
        return cls(spec)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Pipeline":
        """Restore a pipeline from a packaged artifact directory.

        The artifact's embedded ``deployment_spec`` manifest entry rebuilds
        the spec; the saved detector becomes the pipeline's serving
        detector (float or quantized, whichever was packaged).
        """
        manifest = read_manifest(path)
        spec_entry = manifest.get("deployment_spec")
        detector = load_detector(path, manifest=manifest)
        if spec_entry is not None:
            spec = DeploymentSpec.from_dict(spec_entry)
        else:
            # Legacy artifact without an embedded spec: synthesise a minimal
            # one from the registry kind so the staged methods keep working.
            from .spec import DetectorSpec

            spec = DeploymentSpec(
                detector=DetectorSpec(kind=DETECTORS.kind_for(detector)))
        pipeline = cls(spec)
        pipeline.artifact_dir = Path(path)
        # Inference-only registry kinds (the int8 VARADE) restore into the
        # quantized slot; everything else is the float detector.
        if DETECTORS.get(DETECTORS.kind_for(detector)).trainable:
            pipeline._detector = detector
        else:
            pipeline._quantized = detector
        return pipeline

    # ------------------------------------------------------------------ #
    # Stage accessors
    # ------------------------------------------------------------------ #
    @property
    def detector(self) -> AnomalyDetector:
        """The float detector (after :meth:`fit` or :meth:`load`)."""
        if self._detector is None:
            raise PipelineStageError(
                "no float detector yet: call fit() (or load a float artifact)"
            )
        return self._detector

    @property
    def quantized(self) -> AnomalyDetector:
        """The int8 detector (after :meth:`quantize` or an int8 :meth:`load`)."""
        if self._quantized is None:
            raise PipelineStageError(
                "no quantized detector yet: add a quantization entry to the "
                "spec and call quantize()"
            )
        return self._quantized

    @property
    def serving_detector(self) -> AnomalyDetector:
        """The detector that deploys: the int8 artifact when one exists."""
        if self._quantized is not None:
            return self._quantized
        return self.detector

    def build_detector(self, n_channels: Optional[int] = None) -> AnomalyDetector:
        """Construct the spec's (unfitted) detector via the registry.

        ``DeploymentSpec.seed`` and ``n_channels`` are injected into the
        config wherever the spec does not pin them explicitly.  The seed
        lands where the kind keeps it: in the training config for kinds
        with a separate one (VARADE), in the detector config otherwise.
        Exposed separately from :meth:`fit` so harnesses that own their
        training loop (e.g. :func:`repro.eval.run_full_experiment`) still
        construct detectors through the declarative path.
        """
        entry = DETECTORS.get(self.spec.detector.kind)
        params = dict(self.spec.detector.params)
        if n_channels is not None:
            params.setdefault("n_channels", n_channels)
        training = self.spec.detector.training
        if entry.accepts_training:
            training = dict(training) if training is not None else {}
            training.setdefault("seed", self.spec.seed)
        else:
            params.setdefault("seed", self.spec.seed)
        try:
            return entry.build(params, training)
        except UnknownDetectorError as error:
            # e.g. an inference-only kind (varade_int8) named as the spec's
            # trainable detector -- a bad spec at this boundary.
            raise SpecError(str(error)) from error

    # ------------------------------------------------------------------ #
    # Stages
    # ------------------------------------------------------------------ #
    def fit(self, train_data: ArrayLike) -> "Pipeline":
        """Build the detector from the spec and train it on ``train_data``."""
        train_data = np.asarray(train_data, dtype=np.float64)
        if train_data.ndim != 2:
            raise ValueError("train_data must have shape (T, channels)")
        detector = self.build_detector(n_channels=train_data.shape[1])
        detector.fit(train_data)
        self._detector = detector
        self._quantized = None          # stale int8 state dies with a refit
        self._train_data = train_data
        self._train_scores = None       # so do cached calibration scores
        return self

    def calibrate(self, normal_data: Optional[ArrayLike] = None) -> "Pipeline":
        """Calibrate and attach the alarm threshold per ``spec.calibration``.

        ``normal_data`` defaults to the stream :meth:`fit` trained on --
        the paper's protocol (threshold from the normal score
        distribution).
        """
        detector = self.detector
        if normal_data is None:
            if self._train_data is None:
                raise PipelineStageError(
                    "calibrate() without data needs a fit() in this pipeline; "
                    "pass an explicit normal stream to calibrate on"
                )
            normal_data = self._train_data
        on_train_stream = normal_data is self._train_data
        scores = detector.score_stream(np.asarray(normal_data, dtype=np.float64))
        if on_train_stream and detector is self._detector:
            self._train_scores = scores
        threshold = self.spec.calibration.calibrator().calibrate(scores.valid_scores())
        detector.set_threshold(threshold)
        if self._quantized is not None:
            self._quantized.set_threshold(threshold)
        return self

    def quantize(self, calibration_data: Optional[ArrayLike] = None) -> "Pipeline":
        """Produce the int8 drop-in detector per ``spec.quantization``."""
        if self.spec.quantization is None:
            raise PipelineStageError(
                "spec has no quantization entry; add one to enable this stage"
            )
        detector = self.detector
        if calibration_data is None:
            if self._train_data is None:
                raise PipelineStageError(
                    "quantize() without data needs a fit() in this pipeline; "
                    "pass explicit calibration windows or a normal stream"
                )
            calibration_data = self._train_data
        self._quantized = detector.quantize(
            np.asarray(calibration_data, dtype=np.float64),
            headroom=self.spec.quantization.headroom,
        )
        return self

    def package(self, path: Union[str, Path], *,
                overwrite: bool = False) -> Path:
        """Save the serving detector as a deployable artifact directory.

        The artifact embeds the full deployment spec in its manifest, so
        the edge side (:meth:`load`) restores configuration and weights
        from one directory.  Returns the artifact path;
        :func:`repro.serialize.artifact_fingerprint` of two packages from
        the same spec is identical.
        """
        return save_detector(
            self.serving_detector, path, overwrite=overwrite,
            extra_manifest={"deployment_spec": self.spec.to_dict()},
        )

    # ------------------------------------------------------------------ #
    # Deployment
    # ------------------------------------------------------------------ #
    def deploy_stream(self, stream: ArrayLike,
                      labels: Optional[np.ndarray] = None,
                      max_samples: Optional[int] = None):
        """Replay one stream through :class:`repro.edge.StreamingRuntime`.

        The serving detector's calibrated threshold drives the alarms and
        ``spec.adaptation`` (when present) enables online threshold
        recalibration.  Returns the runtime's ``StreamingResult``.
        """
        from ..edge.runtime import StreamingRuntime

        reader = StreamReader(np.asarray(stream, dtype=np.float64), labels=labels,
                              sample_rate=self.spec.runtime.sample_rate_hz)
        adaptation = None if self.spec.adaptation is None \
            else self.spec.adaptation.policy()
        runtime = StreamingRuntime(self.serving_detector, adaptation=adaptation)
        if max_samples is None:
            max_samples = self.spec.runtime.max_samples
        return runtime.run(reader, max_samples=max_samples)

    def deploy_fleet(self, streams: Sequence[ArrayLike],
                     labels: Optional[Sequence[np.ndarray]] = None,
                     max_samples: Optional[int] = None):
        """Replay N streams through :class:`repro.edge.MultiStreamRuntime`."""
        from ..edge.fleet import MultiStreamRuntime

        if labels is None:
            labels = [None] * len(streams)
        if len(labels) != len(streams):
            raise ValueError("labels must match streams one to one")
        readers = [
            StreamReader(np.asarray(stream, dtype=np.float64), labels=stream_labels,
                         sample_rate=self.spec.runtime.sample_rate_hz)
            for stream, stream_labels in zip(streams, labels)
        ]
        adaptation = None if self.spec.adaptation is None \
            else self.spec.adaptation.policy()
        runtime = MultiStreamRuntime(self.serving_detector, adaptation=adaptation)
        if max_samples is None:
            max_samples = self.spec.runtime.max_samples
        return runtime.run(readers, max_samples=max_samples)

    def deploy_service(self, config: Optional[Any] = None,
                       record_sessions: bool = False,
                       alarm_sinks: Any = ()):
        """Build the :class:`repro.serve.AnomalyService` for this deployment.

        The serving detector (int8 when one exists), its calibrated
        threshold, ``spec.adaptation`` (one independent lane per session)
        and ``spec.service`` (micro-batcher sizing, backpressure policy,
        scaler application, observability switches) configure the service;
        an explicit ``config`` (:class:`repro.serve.ServiceConfig`)
        overrides the spec section.  ``alarm_sinks`` is forwarded to the
        service (a sequence of :class:`repro.obs.AlarmSink`; the caller
        owns their lifecycle -- ``spec.service.alarm_log`` is applied by
        the CLI, not here, so library callers stay in charge of file
        handles).  The service is returned un-started -- ``await
        service.start()`` (or use it as an async context manager) from the
        hosting event loop.  ``repro serve`` wraps it in the wire server.
        """
        from ..serve import AnomalyService, ServiceConfig

        if config is None:
            if self.spec.service is not None:
                config = self.spec.service.config(
                    record_sessions=record_sessions)
            else:
                config = ServiceConfig(record_sessions=record_sessions)
        adaptation = None if self.spec.adaptation is None \
            else self.spec.adaptation.policy()
        fingerprint = None
        if self.artifact_dir is not None:
            from ..serialize import artifact_fingerprint

            fingerprint = artifact_fingerprint(self.artifact_dir)
        return AnomalyService(self.serving_detector, config=config,
                              adaptation=adaptation,
                              alarm_sinks=alarm_sinks,
                              fingerprint=fingerprint)

    def record_baseline(self, traffic: Any, *, write: bool = True):
        """Capture this packaged artifact's golden baseline from ``traffic``.

        Replays representative streams (``(T, channels)`` or a sequence of
        them) through the real serving path and writes the per-artifact
        score/latency/alarm statistics as a ``baseline.json`` sidecar next
        to the packaged artifact (``write=False`` skips the write).  The
        baseline is what canary evaluation later compares live shadow
        statistics against; see :mod:`repro.lifecycle`.  Requires a
        :meth:`load`-ed pipeline -- the baseline is a property of the
        packaged artifact, fingerprint and all.
        """
        if self.artifact_dir is None:
            raise PipelineStageError(
                "record_baseline needs a packaged artifact: package() and "
                "Pipeline.load() the artifact directory first")
        from ..lifecycle import record_baseline

        return record_baseline(self.artifact_dir, traffic, write=write)

    def deploy_canary(self, artifact: Union[str, Path], *,
                      fraction: Optional[float] = None,
                      gates: Optional[Any] = None):
        """Build a canary controller for the candidate packaged at ``artifact``.

        The candidate detector and its golden baseline sidecar (see
        :meth:`record_baseline`) load from ``artifact``;
        ``spec.service.lifecycle`` supplies the shadow fraction and gate
        limits unless overridden here.  Attach the returned
        :class:`repro.lifecycle.CanaryController` to a *running* service
        with :meth:`repro.serve.AnomalyService.attach_canary`, then
        ``await service.promote()`` once the gates have enough samples.
        """
        from ..lifecycle import CanaryController, load_baseline
        from ..serialize import artifact_fingerprint

        lifecycle_spec = None if self.spec.service is None \
            else self.spec.service.lifecycle
        if fraction is None:
            fraction = 0.25 if lifecycle_spec is None \
                else lifecycle_spec.fraction
        if gates is None and lifecycle_spec is not None:
            gates = lifecycle_spec.gates()
        candidate = load_detector(artifact)
        baseline = load_baseline(artifact)
        return CanaryController(candidate, baseline=baseline, gates=gates,
                                fraction=fraction,
                                fingerprint=artifact_fingerprint(artifact))

    def deploy_cluster(self, artifact: Union[str, Path], *,
                       tenants: Optional[Dict[str, Union[str, Path]]] = None,
                       workers: Optional[int] = None,
                       host: str = "127.0.0.1",
                       run_dir: Optional[Path] = None):
        """Build a sharded serving cluster for a *packaged* artifact.

        Returns an **unstarted** :class:`repro.cluster.ClusterHarness`
        fronting ``workers`` worker subprocesses (each a full serving
        stack loading the artifact at ``artifact``) behind one
        consistent-hash shard router; use it as a context manager (or
        call ``start()``/``stop()``).  ``tenants`` maps extra tenant
        names to their artifact directories for multi-tenant serving
        (``artifact`` stays the default tenant).  ``spec.service.cluster``
        supplies the fleet shape (worker count, ring granularity, crash
        policy); ``workers`` overrides its count.  Clients connect to
        ``harness.port`` with the unchanged single-server protocol --
        scores and alarms are bit-identical to
        :meth:`deploy_service` for any worker count
        (``tests/test_cluster/test_cluster_parity.py``).
        """
        from ..cluster import ClusterHarness, WorkerConfig

        service_spec = self.spec.service
        cluster_spec = None if service_spec is None else service_spec.cluster
        if workers is None:
            workers = 2 if cluster_spec is None else cluster_spec.workers
        if workers < 1:
            raise ValueError("workers must be a positive integer")
        router_config = None if cluster_spec is None \
            else cluster_spec.router_config()
        transport = "tcp" if cluster_spec is None \
            else cluster_spec.worker_transport
        artifacts: Dict[str, Path] = {"default": Path(artifact)}
        for tenant, path in (tenants or {}).items():
            artifacts[tenant] = Path(path)
        incremental = None
        if service_spec is not None and not service_spec.incremental:
            incremental = False
        configs = [
            WorkerConfig(name=f"worker-{index}", artifacts=dict(artifacts),
                         default_tenant="default", transport=transport,
                         host=host, incremental=incremental)
            for index in range(workers)
        ]
        return ClusterHarness(configs, router_config=router_config,
                              host=host, run_dir=run_dir)

    def edge_estimates(self) -> Dict[str, Any]:
        """Analytical edge-board metrics for ``spec.runtime.devices``."""
        from ..edge.device import get_device
        from ..edge.estimator import EdgeEstimator

        detector = self.serving_detector
        cost = detector.inference_cost()
        estimates: Dict[str, Any] = {}
        for device_name in self.spec.runtime.devices:
            estimator = EdgeEstimator(get_device(device_name))
            estimates[estimator.device.name] = estimator.estimate(
                cost, detector.name, max_rate_hz=self.spec.runtime.sample_rate_hz)
        return estimates

    # ------------------------------------------------------------------ #
    # One-shot
    # ------------------------------------------------------------------ #
    def run(self, dataset: Optional[Any] = None) -> PipelineReport:
        """Run ``fit -> calibrate -> quantize`` end to end and evaluate.

        ``dataset`` is anything with ``train`` / ``test`` / ``test_labels``
        attributes (:class:`~repro.data.BenchmarkDataset`,
        :class:`~repro.data.SyntheticAnomalyDataset`), a bare ``(T,
        channels)`` training array, or ``None`` to build the dataset the
        spec's ``data`` entry describes.  Returns a :class:`PipelineReport`
        with the calibrated threshold and (when the dataset carries a
        labelled test split) the accuracy of the float and, if quantized,
        int8 serving paths.
        """
        if dataset is None:
            if self.spec.data is None:
                raise PipelineStageError(
                    "run() without a dataset needs a data entry in the spec"
                )
            dataset = self.spec.data.build(self.spec.seed)

        if isinstance(dataset, np.ndarray) or not hasattr(dataset, "train"):
            train = np.asarray(dataset, dtype=np.float64)
            test = labels = None
        else:
            train = np.asarray(dataset.train, dtype=np.float64)
            test = getattr(dataset, "test", None)
            labels = getattr(dataset, "test_labels", None)

        start = time.perf_counter()
        self.fit(train)
        train_time = time.perf_counter() - start
        self.calibrate()
        if self.spec.quantization is not None:
            self.quantize()

        float_report = self._evaluate(self.detector, test, labels)
        quantized_report = None
        if self._quantized is not None:
            quantized_report = self._evaluate(self._quantized, test, labels)
        threshold = self.detector.threshold
        assert threshold is not None  # calibrate() always attaches one
        return PipelineReport(
            spec=self.spec,
            threshold=threshold,
            train_time_s=train_time,
            float_report=float_report,
            quantized_report=quantized_report,
        )

    def evaluate(self, test: Optional[np.ndarray] = None,
                 labels: Optional[np.ndarray] = None) -> DetectorReport:
        """Score the serving detector on ``test``, with AUC/AP/F1 when
        ``labels`` are given (the same evaluation :meth:`run` reports)."""
        return self._evaluate(self.serving_detector, test, labels)

    def _evaluate(self, detector: AnomalyDetector, test: Optional[np.ndarray],
                  labels: Optional[np.ndarray]) -> DetectorReport:
        """Score the test split (falling back to the training stream)."""
        from ..eval.metrics import (average_precision_score, best_f1_score,
                                    roc_auc_score)

        if test is None:
            if self._train_data is None:
                raise PipelineStageError(
                    "no data to evaluate on: pass a test array, or fit() "
                    "this pipeline first so the training stream is available"
                )
            if detector is self._detector and self._train_scores is not None:
                result = self._train_scores
            else:
                result = detector.score_stream(self._train_data)
            return DetectorReport(name=detector.name, auc_roc=None,
                                  average_precision=None, best_f1=None,
                                  samples_scored=int(result.valid_mask.sum()),
                                  score_result=result)
        test = np.asarray(test, dtype=np.float64)
        result = detector.score_stream(test)
        auc = ap = f1 = None
        if labels is not None:
            scores, aligned_labels = result.aligned(np.asarray(labels))
            auc = float(roc_auc_score(scores, aligned_labels))
            ap = float(average_precision_score(scores, aligned_labels))
            f1 = float(best_f1_score(scores, aligned_labels)[0])
        return DetectorReport(name=detector.name, auc_roc=auc,
                              average_precision=ap, best_f1=f1,
                              samples_scored=int(result.valid_mask.sum()),
                              score_result=result)


# Module-function spelling of the one-shot entry point, exported alongside
# the class (repro.pipeline.__all__); convenient for functional call sites.
def run_pipeline(spec: DeploymentSpec,
                 dataset: Optional[Any] = None) -> PipelineReport:
    """Thin shim: ``Pipeline.from_spec(spec).run(dataset)``."""
    return Pipeline.from_spec(spec).run(dataset)
