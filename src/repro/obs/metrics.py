"""Lightweight metrics registry with Prometheus text exposition.

Three metric kinds, matching the Prometheus data model:

``Counter``
    Monotonic event count (``..._total`` names by convention).
``Gauge``
    Point-in-time value that can go up and down.
``Summary``
    Quantile summary backed by :class:`repro.edge.StreamingHistogram`
    (constant memory, mergeable, no per-sample allocation).

Every metric can either hold its own value (``inc()`` / ``set()`` /
``observe()``) or *read through* to an existing counter on the
instrumented object via a zero-argument callback evaluated at render
time.  Read-through is the preferred integration: the serving hot path
keeps its plain-int counters and pays nothing for metrics until a
scrape actually happens, and the rendered page reconciles with
``ServiceStats`` by construction because both read the same fields.

Label support is by *family*: registering with ``labels=("protocol",)``
returns a family whose ``labels(protocol="json")`` method vends (and
caches) one child per label-value combination.

Example — register, update, render:

>>> registry = MetricsRegistry()
>>> scored = registry.counter("demo_samples_scored_total",
...                           "Samples scored since start.")
>>> scored.inc(3)
>>> lag = registry.gauge("demo_queue_lag", "Windows waiting in queue.")
>>> lag.set(2)
>>> reqs = registry.counter("demo_requests_total", "Requests served.",
...                         labels=("op",))
>>> reqs.labels(op="push").inc()
>>> print(registry.render())
# HELP demo_samples_scored_total Samples scored since start.
# TYPE demo_samples_scored_total counter
demo_samples_scored_total 3
# HELP demo_queue_lag Windows waiting in queue.
# TYPE demo_queue_lag gauge
demo_queue_lag 2
# HELP demo_requests_total Requests served.
# TYPE demo_requests_total counter
demo_requests_total{op="push"} 1
<BLANKLINE>
"""

from __future__ import annotations

import math
import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.edge.monitor import StreamingHistogram

__all__ = [
    "Counter",
    "Gauge",
    "Summary",
    "MetricFamily",
    "MetricsRegistry",
]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Characters escaped in HELP text and label values, per the Prometheus
# text exposition format (version 0.0.4).
_HELP_ESCAPES = {"\\": r"\\", "\n": r"\n"}
_LABEL_ESCAPES = {"\\": r"\\", "\n": r"\n", '"': r"\""}


def _escape(text: str, table: Dict[str, str]) -> str:
    for raw, escaped in table.items():
        text = text.replace(raw, escaped)
    return text


def _format_value(value: float) -> str:
    """Render a sample value as a Prometheus float literal."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 2**53:
        return str(int(value))
    return repr(value)


class _Metric:
    """Shared value plumbing: either a manual value or a render-time callback."""

    def __init__(self, fn: Optional[Callable[[], float]] = None) -> None:
        self._fn = fn
        self._value: float = 0

    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value


class Counter(_Metric):
    """Monotonically increasing count.

    >>> c = Counter()
    >>> c.inc(); c.inc(4); c.value()
    5
    """

    def inc(self, amount: float = 1) -> None:
        if self._fn is not None:
            raise TypeError("read-through counters are updated at the source")
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self._value += amount


class Gauge(_Metric):
    """Point-in-time value.

    >>> g = Gauge()
    >>> g.set(1.5); g.value()
    1.5
    """

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise TypeError("read-through gauges are updated at the source")
        self._value = value


class Summary:
    """Quantile summary backed by a :class:`StreamingHistogram`.

    Renders Prometheus summary series: one ``{quantile="..."}`` sample
    per configured quantile plus ``_sum`` and ``_count``.  Either owns
    its histogram (``observe()`` feeds it) or reads through to one
    maintained by the instrumented object.

    >>> s = Summary(histogram=StreamingHistogram.log_spaced(1e-3, 10.0))
    >>> for v in (0.1, 0.1, 0.1):
    ...     s.observe(v)
    >>> s.histogram().count
    3
    """

    def __init__(self, *,
                 histogram: Optional[StreamingHistogram] = None,
                 fn: Optional[Callable[[], StreamingHistogram]] = None,
                 quantiles: Sequence[float] = (0.5, 0.95, 0.99)) -> None:
        if (histogram is None) == (fn is None):
            raise TypeError("provide exactly one of histogram= or fn=")
        self._histogram = histogram
        self._fn = fn
        self.quantiles = tuple(quantiles)

    def observe(self, value: float) -> None:
        if self._histogram is None:
            raise TypeError("read-through summaries are fed at the source")
        self._histogram.add(value)

    def histogram(self) -> StreamingHistogram:
        return self._fn() if self._fn is not None else self._histogram


_KINDS = {Counter: "counter", Gauge: "gauge", Summary: "summary"}


class MetricFamily:
    """One registered metric name: its metadata plus labelled children."""

    def __init__(self, name: str, help: str, kind: str,
                 labels: Tuple[str, ...],
                 make_child: Callable[[], object]) -> None:
        self.name = name
        self.help = help
        self.kind = kind
        self.label_names = labels
        self._make_child = make_child
        self._children: Dict[Tuple[str, ...], object] = {}
        if not labels:
            # Unlabelled: a single anonymous child created eagerly so
            # the series appears (at zero) from the first scrape on.
            self._children[()] = make_child()

    def labels(self, **labels: str) -> object:
        """Return the child for this label-value combination, creating it."""
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    @property
    def default(self) -> object:
        """The single child of an unlabelled family."""
        if self.label_names:
            raise ValueError(f"metric {self.name} is labelled; use .labels()")
        return self._children[()]

    def _series(self) -> List[Tuple[Tuple[str, ...], object]]:
        return sorted(self._children.items())


class MetricsRegistry:
    """Ordered collection of metric families with text exposition.

    Families render in registration order; labelled children render in
    sorted label order, so the page is deterministic — a property the
    golden-snapshot test relies on.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # -- registration ------------------------------------------------------

    def _register(self, name: str, help: str, kind: str,
                  labels: Sequence[str],
                  make_child: Callable[[], object]) -> MetricFamily:
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        labels = tuple(labels)
        for label in labels:
            if not _LABEL_NAME.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != labels:
                raise ValueError(
                    f"metric {name} already registered as {existing.kind} "
                    f"with labels {existing.label_names}")
            return existing
        family = MetricFamily(name, help, kind, labels, make_child)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str, *,
                labels: Sequence[str] = (),
                fn: Optional[Callable[[], float]] = None):
        """Register (or fetch) a counter.  Unlabelled families return the
        Counter itself; labelled families return the family."""
        family = self._register(name, help, "counter", labels,
                                lambda: Counter(fn=fn))
        return family if labels else family.default

    def gauge(self, name: str, help: str, *,
              labels: Sequence[str] = (),
              fn: Optional[Callable[[], float]] = None):
        family = self._register(name, help, "gauge", labels,
                                lambda: Gauge(fn=fn))
        return family if labels else family.default

    def summary(self, name: str, help: str, *,
                labels: Sequence[str] = (),
                histogram: Optional[Callable[[], StreamingHistogram]] = None,
                quantiles: Sequence[float] = (0.5, 0.95, 0.99)):
        """Register a summary.  ``histogram`` is a zero-argument callback
        returning the live StreamingHistogram (read-through); omit it to
        let each child own a fresh log-spaced histogram."""
        def make_child() -> Summary:
            if histogram is not None:
                return Summary(fn=histogram, quantiles=quantiles)
            return Summary(histogram=StreamingHistogram.log_spaced(),
                           quantiles=quantiles)
        family = self._register(name, help, "summary", labels, make_child)
        return family if labels else family.default

    # -- exposition --------------------------------------------------------

    def families(self) -> List[MetricFamily]:
        return list(self._families.values())

    def render(self) -> str:
        """Render the registry in Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        for family in self._families.values():
            lines.append(f"# HELP {family.name} "
                         f"{_escape(family.help, _HELP_ESCAPES)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family._series():
                pairs = [
                    f'{label}="{_escape(value, _LABEL_ESCAPES)}"'
                    for label, value in zip(family.label_names, key)]
                if family.kind == "summary":
                    hist = child.histogram()
                    for q in child.quantiles:
                        q_pairs = pairs + [f'quantile="{_format_value(q)}"']
                        lines.append(
                            f"{family.name}{{{','.join(q_pairs)}}} "
                            f"{_format_value(hist.quantile(q))}")
                    suffix = "{" + ",".join(pairs) + "}" if pairs else ""
                    total = hist.mean * hist.count
                    lines.append(f"{family.name}_sum{suffix} "
                                 f"{_format_value(total)}")
                    lines.append(f"{family.name}_count{suffix} "
                                 f"{_format_value(hist.count)}")
                else:
                    suffix = "{" + ",".join(pairs) + "}" if pairs else ""
                    lines.append(f"{family.name}{suffix} "
                                 f"{_format_value(child.value())}")
        return "\n".join(lines) + "\n"
