"""Structured alarm sinks: where confirmed anomalies go besides the wire.

The serving layer already pushes ``AlarmEvent`` frames to connected TCP
subscribers, but a fleet needs alarms that outlive connections: an
append-only audit file, a callback into the embedding application, or
several of those at once.  Sinks receive the same
:class:`~repro.serve.session.ScoredSample` objects the wire layer
broadcasts (only the ``alarm=True`` ones) and must never block the
scoring path for long — the service wraps every ``emit`` in a guard that
counts, rather than propagates, sink failures.

Three composable sinks:

``JsonlAlarmSink``
    One JSON object per line, flushed per alarm by default.
``CallbackAlarmSink``
    Invokes ``fn(sample)`` — the embedding-application hook.
``FanOutAlarmSink``
    Emits to every child sink in order.

Example — fan a callback and a JSONL file out from one alarm:

>>> import json, types
>>> sample = types.SimpleNamespace(stream_id="press-3", index=57,
...     score=9.25, threshold=1.5, alarm=True, latency_s=0.004,
...     queue_delay_s=0.002)
>>> seen = []
>>> sink = FanOutAlarmSink([CallbackAlarmSink(seen.append)])
>>> sink.emit(sample)
>>> seen[0].index
57
>>> json.loads(alarm_record(sample))["stream"]
'press-3'
"""

from __future__ import annotations

import json
import math
import time
from typing import Callable, Iterable, List, Optional

__all__ = [
    "AlarmSink",
    "JsonlAlarmSink",
    "CallbackAlarmSink",
    "FanOutAlarmSink",
    "alarm_record",
]


def _finite(value: Optional[float]) -> Optional[float]:
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


def alarm_record(sample, *, wall_clock: Callable[[], float] = time.time) -> str:
    """Serialise one alarm sample as a single JSON line (no newline).

    Non-finite floats become ``null`` so every line is strict JSON, and
    ``time_unix_s`` stamps the wall-clock emission time for correlation
    with external logs.
    """
    return json.dumps({
        "stream": sample.stream_id,
        "index": sample.index,
        "score": _finite(sample.score),
        "threshold": _finite(sample.threshold),
        "latency_s": _finite(sample.latency_s),
        "queue_delay_s": _finite(sample.queue_delay_s),
        "time_unix_s": wall_clock(),
    }, separators=(",", ":"))


class AlarmSink:
    """Base interface: ``emit(sample)`` per alarm, ``close()`` at shutdown."""

    def emit(self, sample) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; emitting after close is an error."""


class JsonlAlarmSink(AlarmSink):
    """Append alarms to a file, one JSON object per line.

    ``flush_every=1`` (the default) fsync-free flushes after every alarm
    so a crash loses at most the in-flight line; raise it for
    high-alarm-rate deployments where write batching matters.
    """

    def __init__(self, path, *, flush_every: int = 1,
                 wall_clock: Callable[[], float] = time.time) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = path
        self.flush_every = flush_every
        self._wall_clock = wall_clock
        self._handle = open(path, "a", encoding="utf-8")
        self._pending = 0
        self.emitted = 0

    def emit(self, sample) -> None:
        self._handle.write(alarm_record(sample,
                                        wall_clock=self._wall_clock) + "\n")
        self.emitted += 1
        self._pending += 1
        if self._pending >= self.flush_every:
            self._handle.flush()
            self._pending = 0

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()


class CallbackAlarmSink(AlarmSink):
    """Invoke an arbitrary callable per alarm — the in-process hook."""

    def __init__(self, fn: Callable[[object], None]) -> None:
        self.fn = fn

    def emit(self, sample) -> None:
        self.fn(sample)


class FanOutAlarmSink(AlarmSink):
    """Emit each alarm to every child sink, in registration order.

    A child raising stops neither its siblings nor the caller's
    accounting: the first exception is re-raised *after* all children
    ran, so the service-level guard still counts one failure.
    """

    def __init__(self, sinks: Iterable[AlarmSink]) -> None:
        self.sinks: List[AlarmSink] = list(sinks)

    def emit(self, sample) -> None:
        first_error: Optional[Exception] = None
        for sink in self.sinks:
            try:
                sink.emit(sample)
            except Exception as exc:  # noqa: BLE001 - isolate child sinks
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
