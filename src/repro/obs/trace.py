"""Bounded-ring trace recorder with Chrome/Perfetto JSON export.

Records spans (``ph: "X"`` complete events) and instants (``ph: "i"``)
into a fixed-capacity ring: recording is an O(1) tuple append, memory is
bounded regardless of uptime, and when the ring is full the *oldest*
events are dropped (``dropped`` counts them) so a dump always shows the
most recent window of activity — the part an operator debugging a stall
actually wants.

Timestamps are taken from an injectable monotonic ``clock`` (the same
``time.perf_counter`` the micro-batcher uses, so span edges line up) and
exported in microseconds relative to the recorder's creation, which is
what the Chrome trace format expects.  Track ids (``tid``) are arbitrary
strings — one per stream, plus ``"batcher"`` — and are mapped to integer
tids with ``thread_name`` metadata at export time so Perfetto shows one
named lane per stream.

Example — record with a fake clock and export:

>>> t = iter([0.0, 1.0, 1.5, 2.0])
>>> recorder = TraceRecorder(capacity=8, clock=lambda: next(t))
>>> recorder.span("flush", "batcher", start_s=1.0, end_s=1.5, batch=4)
>>> recorder.instant("alarm", "press-3", ts_s=2.0, index=57)
>>> trace = recorder.to_chrome()
>>> [e["name"] for e in trace["traceEvents"] if e["ph"] != "M"]
['flush', 'alarm']
>>> trace["traceEvents"][-1]["args"]["index"]
57
>>> import json; _ = json.dumps(trace)  # valid Chrome trace JSON
"""

from __future__ import annotations

import json
import math
import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

__all__ = ["TraceRecorder"]


def _json_safe(value):
    """Replace non-finite floats with None so the export is strict JSON."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value

# Ring entries: (phase, name, track, ts_seconds, dur_seconds, args)
_Event = Tuple[str, str, str, float, float, Optional[dict]]


class TraceRecorder:
    """Fixed-capacity recorder emitting Chrome trace event JSON.

    Parameters
    ----------
    capacity:
        Maximum events retained; the oldest are evicted beyond that
        (see :attr:`dropped`).
    clock:
        Monotonic time source.  Inject the clock used by the code being
        traced so span boundaries share one timebase.
    """

    def __init__(self, capacity: int = 4096,
                 clock=time.perf_counter) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.clock = clock
        self.origin = clock()
        self.dropped = 0
        self._events: Deque[_Event] = deque(maxlen=self.capacity)

    def __len__(self) -> int:
        return len(self._events)

    # -- recording (hot path: one tuple append) ----------------------------

    def _append(self, event: _Event) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def span(self, name: str, track: str,
             start_s: float, end_s: float, **args) -> None:
        """Record a complete span from ``start_s`` to ``end_s`` (clock units)."""
        self._append(("X", name, track, start_s, end_s - start_s,
                      args or None))

    def instant(self, name: str, track: str,
                ts_s: Optional[float] = None, **args) -> None:
        """Record a point event (at ``clock()`` now unless ``ts_s`` given)."""
        ts = self.clock() if ts_s is None else ts_s
        self._append(("i", name, track, ts, 0.0, args or None))

    # -- export ------------------------------------------------------------

    def to_chrome(self) -> dict:
        """Export as a Chrome trace object (``{"traceEvents": [...]}``).

        Loadable directly in Perfetto (ui.perfetto.dev) or
        ``chrome://tracing``.  The snapshot also reports ring occupancy
        and drop count under ``otherData``.
        """
        tids: Dict[str, int] = {}
        events = []
        for phase, name, track, ts, dur, args in self._events:
            tid = tids.get(track)
            if tid is None:
                tid = tids[track] = len(tids) + 1
            event = {
                "name": name,
                "ph": phase,
                "ts": round((ts - self.origin) * 1e6, 3),
                "pid": 1,
                "tid": tid,
            }
            if phase == "X":
                event["dur"] = round(dur * 1e6, 3)
            else:
                event["s"] = "t"  # instant scoped to its track
            if args:
                event["args"] = _json_safe(args)
            events.append(event)
        metadata = [
            {"name": "process_name", "ph": "M", "pid": 1,
             "args": {"name": "repro.serve"}},
        ]
        metadata.extend(
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
             "args": {"name": track}}
            for track, tid in sorted(tids.items(), key=lambda kv: kv[1]))
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "recorded": len(self._events),
                "dropped": self.dropped,
                "capacity": self.capacity,
            },
        }

    def dumps(self) -> str:
        """JSON-encode :meth:`to_chrome` (NaN-free, compact)."""
        return json.dumps(self.to_chrome(), allow_nan=False,
                          separators=(",", ":"))

    def write(self, path) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())
