"""Production observability: metrics, traces, and alarm sinks.

``repro.obs`` is the layer that explains the serving stack from the
outside.  It is deliberately dependency-free (stdlib + numpy via
:class:`repro.edge.StreamingHistogram`) and deliberately cheap: metrics
read through to counters the hot path already maintains, traces are
O(1) appends into a bounded ring, and everything defaults to *off* so a
service without observability runs the exact same instructions it did
before this package existed.

The pieces:

- :mod:`repro.obs.metrics` — counter/gauge/summary registry with
  Prometheus text exposition (scraped via the ``metrics`` wire op or
  ``repro serve --metrics-port``).
- :mod:`repro.obs.trace` — bounded-ring Chrome/Perfetto trace recorder
  (dumped via the ``trace`` wire op, ``GET /trace``, or
  ``repro serve --trace-out``).
- :mod:`repro.obs.alarms` — JSONL / callback / fan-out alarm sinks,
  wired beside the TCP alarm subscriber.
- :mod:`repro.obs.httpd` — minimal asyncio HTTP endpoint serving
  ``/metrics`` and ``/trace``.

:class:`Observability` bundles one registry plus an optional tracer;
``AnomalyService`` builds one when ``ServiceConfig(observability=True)``
and threads it through the batcher, the sessions and the wire server.

>>> obs = Observability(trace_capacity=16)
>>> obs.tracer is not None
True
>>> Observability(trace_capacity=0).tracer is None
True
"""

from __future__ import annotations

import time
from typing import Optional

from repro.obs.alarms import (AlarmSink, CallbackAlarmSink, FanOutAlarmSink,
                              JsonlAlarmSink, alarm_record)
from repro.obs.httpd import ObservabilityHTTPServer
from repro.obs.metrics import (Counter, Gauge, MetricFamily, MetricsRegistry,
                               Summary)
from repro.obs.trace import TraceRecorder

__all__ = [
    "Observability",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Summary",
    "TraceRecorder",
    "AlarmSink",
    "JsonlAlarmSink",
    "CallbackAlarmSink",
    "FanOutAlarmSink",
    "alarm_record",
    "ObservabilityHTTPServer",
]


class Observability:
    """One metrics registry plus an optional bounded-ring tracer.

    ``trace_capacity=0`` keeps metrics but disables tracing entirely
    (``tracer is None``), which is how a long-lived deployment avoids
    even the ring's O(1)-per-event cost when nobody is capturing.
    """

    def __init__(self, *, trace_capacity: int = 4096,
                 clock=time.perf_counter) -> None:
        self.registry = MetricsRegistry()
        self.tracer: Optional[TraceRecorder] = (
            TraceRecorder(capacity=trace_capacity, clock=clock)
            if trace_capacity > 0 else None)
