"""Minimal asyncio HTTP endpoint for Prometheus scrapes and trace dumps.

A deliberately tiny single-purpose server — GET only, one response per
connection, no keep-alive, no dependencies — because a scrape endpoint
that needs a web framework defeats the point of an edge deployment.

Routes:

``GET /metrics``
    Prometheus text exposition (``text/plain; version=0.0.4``).
``GET /trace``
    Chrome trace JSON of the bounded ring (``application/json``),
    loadable directly at https://ui.perfetto.dev.
``GET /healthz``
    Liveness probe.  Plain ``200 ok`` by default; when the server is
    built with a ``health`` callable, a JSON body describing the
    service's health (including the active artifact fingerprint).

The server is handed *callables* rather than a service object, so it has
no dependency on ``repro.serve`` and anything that can render text can
be scraped::

    httpd = ObservabilityHTTPServer(metrics=service.metrics_text,
                                    trace=service.trace_export_json)
    port = await httpd.start()
    ...
    await httpd.stop()

Port 0 binds an ephemeral port; read :attr:`bound_port` after
:meth:`start`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Dict, Optional

__all__ = ["ObservabilityHTTPServer"]

_MAX_REQUEST_LINE = 4096
_MAX_HEADER_LINES = 100


class ObservabilityHTTPServer:
    """Serve ``/metrics`` (Prometheus text) and ``/trace`` (Chrome JSON)."""

    def __init__(self, *, metrics: Callable[[], str],
                 trace: Optional[Callable[[], str]] = None,
                 health: Optional[Callable[[], Dict[str, Any]]] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self._metrics = metrics
        self._trace = trace
        self._health = health
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def bound_port(self) -> int:
        """The actual listening port (resolves ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> int:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        return self.bound_port

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    # -- request handling --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await reader.readline()
            if len(request_line) > _MAX_REQUEST_LINE:
                return
            for _ in range(_MAX_HEADER_LINES):
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            if len(parts) < 2:
                return
            method, path = parts[0], parts[1].split("?", 1)[0]
            status, content_type, body = self._route(method, path)
            payload = body.encode("utf-8")
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("latin-1")
            writer.write(head + (b"" if method == "HEAD" else payload))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _route(self, method: str, path: str):
        if method not in ("GET", "HEAD"):
            return "405 Method Not Allowed", "text/plain", "GET only\n"
        if path == "/metrics":
            try:
                return ("200 OK", "text/plain; version=0.0.4; charset=utf-8",
                        self._metrics())
            except Exception as exc:  # pragma: no cover - defensive
                return "500 Internal Server Error", "text/plain", f"{exc}\n"
        if path == "/trace":
            if self._trace is None:
                return ("404 Not Found", "text/plain",
                        "tracing is not enabled\n")
            try:
                return "200 OK", "application/json", self._trace()
            except Exception as exc:  # pragma: no cover - defensive
                return "500 Internal Server Error", "text/plain", f"{exc}\n"
        if path == "/healthz":
            if self._health is None:
                return "200 OK", "text/plain", "ok\n"
            try:
                return ("200 OK", "application/json",
                        json.dumps(self._health()) + "\n")
            except Exception as exc:  # pragma: no cover - defensive
                return "500 Internal Server Error", "text/plain", f"{exc}\n"
        return ("404 Not Found", "text/plain",
                "routes: /metrics /trace /healthz\n")
