"""k-Nearest-Neighbour anomaly scoring.

The paper's kNN baseline scores a query point by the *maximum* distance to
its k=5 nearest neighbours in the training (normal) data, which Goldstein &
Uchida (2016) report as the best-performing nearest-neighbour variant.  The
mean-distance variant is provided for ablations.
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np

__all__ = ["KNNAnomalyScorer"]


class KNNAnomalyScorer:
    """Brute-force kNN distance scorer over a reference set of normal points."""

    def __init__(self, n_neighbors: int = 5,
                 aggregation: Literal["max", "mean"] = "max",
                 max_reference_points: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be at least 1")
        if aggregation not in ("max", "mean"):
            raise ValueError("aggregation must be 'max' or 'mean'")
        self.n_neighbors = n_neighbors
        self.aggregation = aggregation
        self.max_reference_points = max_reference_points
        self._rng = rng if rng is not None else np.random.default_rng()
        self.reference_: Optional[np.ndarray] = None
        self._reference_sq_norms: Optional[np.ndarray] = None

    def fit(self, data: np.ndarray) -> "KNNAnomalyScorer":
        """Store the reference (normal) points, optionally subsampled."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be a 2-D array (n_samples, n_features)")
        if data.shape[0] <= self.n_neighbors:
            raise ValueError(
                f"need more than n_neighbors={self.n_neighbors} reference points, "
                f"got {data.shape[0]}"
            )
        if self.max_reference_points is not None and data.shape[0] > self.max_reference_points:
            indices = self._rng.choice(data.shape[0], size=self.max_reference_points,
                                       replace=False)
            data = data[indices]
        self.reference_ = data
        self._reference_sq_norms = (data ** 2).sum(axis=1)
        return self

    def kneighbors(self, queries: np.ndarray) -> np.ndarray:
        """Distances to the k nearest reference points, shape (n_queries, k)."""
        if self.reference_ is None:
            raise RuntimeError("kneighbors() called before fit()")
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries.reshape(1, -1)
        if queries.shape[1] != self.reference_.shape[1]:
            raise ValueError(
                f"expected {self.reference_.shape[1]} features, got {queries.shape[1]}"
            )
        # Squared euclidean distances via the expansion ||a-b||^2 = ||a||^2 - 2ab + ||b||^2.
        query_sq = (queries ** 2).sum(axis=1, keepdims=True)
        if queries.shape[0] == 1:
            # BLAS dispatches 1-row matmuls to a gemv-class kernel whose
            # per-element rounding differs from the >=2-row gemm kernels
            # (which are row-count invariant); duplicating the row keeps
            # sequential scoring bit-identical to batched scoring.
            cross = (np.concatenate([queries, queries]) @ self.reference_.T)[:1]
        else:
            cross = queries @ self.reference_.T
        squared = np.maximum(query_sq - 2.0 * cross + self._reference_sq_norms, 0.0)
        k = self.n_neighbors
        nearest = np.partition(squared, kth=k - 1, axis=1)[:, :k]
        return np.sqrt(np.sort(nearest, axis=1))

    def score_samples(self, queries: np.ndarray) -> np.ndarray:
        """Anomaly score per query: max (or mean) distance to the k neighbours."""
        distances = self.kneighbors(queries)
        if self.aggregation == "max":
            return distances[:, -1]
        return distances.mean(axis=1)
