"""Nearest-neighbour substrate used by the kNN anomaly-detection baseline."""

from .knn import KNNAnomalyScorer

__all__ = ["KNNAnomalyScorer"]
