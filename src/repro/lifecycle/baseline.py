"""Golden baselines: an artifact's expected serving behaviour, persisted.

A :class:`GoldenBaseline` captures what a packaged artifact *should* look
like in production -- its score distribution, per-window scoring latency
and alarm rate over representative traffic -- as three constant-memory
:class:`~repro.edge.StreamingHistogram`\\ s plus counters.  It is recorded
offline by replaying traffic through the same serving core the service
uses (:class:`~repro.serve.ScoringSession` + micro-batched
``score_windows_batch`` calls), and stored as a versioned JSON sidecar
(``baseline.json``) next to the artifact's ``manifest.json``, keyed by the
artifact's deterministic fingerprint.

The canary controller (:mod:`repro.lifecycle.canary`) later compares the
candidate's *live* shadow statistics against this baseline: a candidate
whose live score distribution drifts from its own golden baseline, or
whose alarm rate explodes relative to it, is refused promotion.
:func:`distribution_shift` is the comparison primitive -- total-variation
distance between two same-edged histograms, in ``[0, 1]``.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..edge.monitor import StreamingHistogram
from ..serialize import artifact_fingerprint, load_detector

__all__ = [
    "BASELINE_NAME",
    "BASELINE_VERSION",
    "LifecycleError",
    "GoldenBaseline",
    "distribution_shift",
    "record_baseline",
    "save_baseline",
    "load_baseline",
]

#: sidecar file name, next to the artifact's ``manifest.json``
BASELINE_NAME = "baseline.json"
#: schema version written by :func:`save_baseline`
BASELINE_VERSION = 1


class LifecycleError(RuntimeError):
    """A lifecycle operation cannot proceed (missing/stale baseline, ...)."""


def score_histogram() -> StreamingHistogram:
    """Fresh histogram with the canonical anomaly-score bin layout.

    Scores across the detector zoo span several decades but are
    non-negative, so log-spaced bins give relative resolution everywhere;
    the under/overflow bins catch whatever falls outside.  Baselines and
    canaries must share one layout or :func:`distribution_shift` cannot
    compare them -- this constructor is the single source of it.
    """
    return StreamingHistogram.log_spaced(1e-4, 1e4, bins_per_decade=8)


def latency_histogram() -> StreamingHistogram:
    """Fresh histogram with the canonical scoring-latency bin layout."""
    return StreamingHistogram.log_spaced(1e-7, 10.0)


@dataclass
class GoldenBaseline:
    """Per-artifact golden statistics (see module docstring).

    >>> baseline = GoldenBaseline(fingerprint="abc", detector="VARADE",
    ...                           streams=2, samples_scored=10, alarms=1,
    ...                           score_histogram=score_histogram(),
    ...                           latency_histogram=latency_histogram())
    >>> baseline.alarm_rate
    0.1
    >>> GoldenBaseline.from_dict(baseline.to_dict()).fingerprint
    'abc'
    """

    fingerprint: str               #: artifact fingerprint the stats describe
    detector: str                  #: detector class name (display only)
    streams: int                   #: replay streams the baseline covers
    samples_scored: int
    alarms: int
    score_histogram: StreamingHistogram
    latency_histogram: StreamingHistogram
    #: wall-clock recording time (display only; never compared)
    created_unix: Optional[float] = None

    @property
    def alarm_rate(self) -> float:
        if not self.samples_scored:
            return 0.0
        return self.alarms / self.samples_scored

    def to_dict(self) -> dict:
        return {
            "version": BASELINE_VERSION,
            "kind": "repro-golden-baseline",
            "fingerprint": self.fingerprint,
            "detector": self.detector,
            "streams": self.streams,
            "samples_scored": self.samples_scored,
            "alarms": self.alarms,
            "score_histogram": self.score_histogram.to_state(),
            "latency_histogram": self.latency_histogram.to_state(),
            "created_unix": self.created_unix,
        }

    @classmethod
    def from_dict(cls, state: dict) -> "GoldenBaseline":
        if state.get("version") != BASELINE_VERSION:
            raise LifecycleError(
                f"unsupported baseline version {state.get('version')!r} "
                f"(this build reads version {BASELINE_VERSION})")
        return cls(
            fingerprint=state["fingerprint"],
            detector=state["detector"],
            streams=state["streams"],
            samples_scored=state["samples_scored"],
            alarms=state["alarms"],
            score_histogram=StreamingHistogram.from_state(
                state["score_histogram"]),
            latency_histogram=StreamingHistogram.from_state(
                state["latency_histogram"]),
            created_unix=state.get("created_unix"),
        )


def distribution_shift(expected: StreamingHistogram,
                       observed: StreamingHistogram) -> float:
    """Total-variation distance between two same-edged histograms.

    ``0.0`` means identical normalised distributions, ``1.0`` disjoint
    ones.  Under/overflow bins participate, so mass that escapes the bin
    range still counts as shift.  An empty histogram is at distance 1
    from any populated one (and 0 from another empty one): "no data yet"
    must never read as "no shift".

    >>> a, b = score_histogram(), score_histogram()
    >>> for value in (0.5, 0.5, 2.0):
    ...     a.add(value); b.add(value)
    >>> distribution_shift(a, b)
    0.0
    >>> b.add(1e6)  # mass where the baseline has none
    >>> 0.0 < distribution_shift(a, b) <= 1.0
    True
    """
    if expected.count == 0 or observed.count == 0:
        return 0.0 if expected.count == observed.count else 1.0
    p = np.asarray(expected.to_state()["counts"], dtype=np.float64)
    q = np.asarray(observed.to_state()["counts"], dtype=np.float64)
    if p.shape != q.shape or not np.array_equal(expected.edges,
                                                observed.edges):
        raise ValueError(
            "cannot compare histograms with different bin layouts; build "
            "both from repro.lifecycle.baseline.score_histogram()")
    return float(0.5 * np.abs(p / p.sum() - q / q.sum()).sum())


def _as_streams(traffic) -> List[np.ndarray]:
    """Normalise ``traffic`` to a list of ``(n_samples, channels)`` arrays."""
    if isinstance(traffic, np.ndarray):
        if traffic.ndim == 2:
            return [np.asarray(traffic, dtype=np.float64)]
        if traffic.ndim == 3:
            return [np.asarray(stream, dtype=np.float64)
                    for stream in traffic]
        raise ValueError(
            f"traffic arrays must be 2-D (one stream) or 3-D (a stack of "
            f"streams); got ndim={traffic.ndim}")
    streams = [np.asarray(stream, dtype=np.float64) for stream in traffic]
    if not streams:
        raise ValueError("traffic must contain at least one stream")
    for stream in streams:
        if stream.ndim != 2:
            raise ValueError("every traffic stream must be a 2-D "
                             "(n_samples, channels) array")
    return streams


def record_baseline(artifact: Union[str, Path], traffic, *,
                    max_batch: int = 64,
                    write: bool = True) -> GoldenBaseline:
    """Replay ``traffic`` through an artifact and persist its golden baseline.

    ``artifact`` is a packaged artifact directory
    (:func:`repro.serialize.save_detector` layout); ``traffic`` is one
    ``(n_samples, channels)`` array or a sequence of them -- use the same
    kind of traffic the artifact will serve (typically the spec's held-out
    test split).  The replay goes through the serving core -- per-stream
    :class:`~repro.serve.ScoringSession`\\ s feeding a
    :class:`~repro.serve.MicroBatcher` round-robin, alarms decided by the
    artifact's own calibrated threshold -- so the recorded distributions
    are the serving path's, not an offline approximation.

    Returns the :class:`GoldenBaseline`; with ``write=True`` (default) it
    is also saved to ``<artifact>/baseline.json`` for
    :func:`load_baseline` / the canary flow to find.
    """
    from ..serve.batcher import MicroBatcher
    from ..serve.session import ScoringSession

    artifact = Path(artifact)
    streams = _as_streams(traffic)
    detector = load_detector(artifact)
    sessions = [
        ScoringSession(detector, f"baseline-{position}", record=False)
        for position in range(len(streams))
    ]
    batcher = MicroBatcher(detector, max_batch=max_batch,
                           max_delay_ms=0.0, max_queue=max_batch)
    scores = score_histogram()
    latencies = latency_histogram()
    samples_scored = 0
    alarms = 0

    def fold(results) -> None:
        nonlocal samples_scored, alarms
        for sample in results:
            scores.add(sample.score)
            latencies.add(sample.latency_s)
            samples_scored += 1
            alarms += int(sample.alarm)

    longest = max(stream.shape[0] for stream in streams)
    for position in range(longest):
        for session, stream in zip(sessions, streams):
            if position >= stream.shape[0]:
                continue
            request = session.submit(stream[position])
            if request is None:
                continue
            fold(batcher.enqueue(request))
            if batcher.pending_count() >= max_batch:
                fold(batcher.flush())
    fold(batcher.drain())

    baseline = GoldenBaseline(
        fingerprint=artifact_fingerprint(artifact),
        detector=detector.name,
        streams=len(streams),
        samples_scored=samples_scored,
        alarms=alarms,
        score_histogram=scores,
        latency_histogram=latencies,
        created_unix=time.time(),
    )
    if write:
        save_baseline(baseline, artifact)
    return baseline


def save_baseline(baseline: GoldenBaseline,
                  artifact: Union[str, Path]) -> Path:
    """Write the baseline sidecar next to the artifact's manifest."""
    artifact = Path(artifact)
    if not artifact.is_dir():
        raise LifecycleError(
            f"artifact directory not found: {artifact}")
    path = artifact / BASELINE_NAME
    path.write_text(json.dumps(baseline.to_dict(), indent=2,
                               sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_baseline(artifact: Union[str, Path], *,
                  verify: bool = True) -> GoldenBaseline:
    """Read an artifact's golden baseline sidecar.

    With ``verify=True`` (default) the sidecar's recorded fingerprint
    must match the artifact's current fingerprint -- a stale baseline
    (artifact re-trained after the baseline was recorded) would gate the
    canary against the wrong expectations, which is strictly worse than
    failing loudly here.
    """
    artifact = Path(artifact)
    path = artifact / BASELINE_NAME
    if not path.is_file():
        raise LifecycleError(
            f"no golden baseline at {path}; record one with "
            f"repro.lifecycle.record_baseline(artifact, traffic)")
    try:
        state = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise LifecycleError(f"corrupt baseline sidecar {path}: {error}") \
            from error
    baseline = GoldenBaseline.from_dict(state)
    if verify:
        current = artifact_fingerprint(artifact)
        if baseline.fingerprint != current:
            raise LifecycleError(
                f"baseline at {path} was recorded for artifact "
                f"{baseline.fingerprint[:12]}... but the artifact now "
                f"fingerprints as {current[:12]}...; re-record the baseline")
    return baseline


def windowed_quantile(before: dict, after: dict, q: float = 0.99) -> float:
    """Quantile of the samples a histogram gained between two snapshots.

    ``before``/``after`` are :meth:`StreamingHistogram.to_state` dicts of
    the *same* histogram at two points in time; the difference of their
    cumulative bin counts is the window's distribution.  Returns the upper
    edge of the quantile bin (conservative), the top edge for overflow
    mass, and ``0.0`` for an empty window.  The meta-watcher uses this to
    turn the service's cumulative latency histogram into a per-tick p99.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError("q must be in (0, 1]")
    counts = (np.asarray(after["counts"], dtype=np.int64)
              - np.asarray(before["counts"], dtype=np.int64))
    if np.any(counts < 0):
        raise ValueError("snapshots are out of order (counts decreased)")
    edges = after["edges"]
    total = int(counts.sum())
    if total <= 0:
        return 0.0
    target = math.ceil(q * total)
    position = int(np.searchsorted(np.cumsum(counts), target))
    if position >= len(edges):
        # Overflow bin: all we know is "above the top edge".
        observed_max = after.get("max")
        top = float(edges[-1])
        return max(top, float(observed_max)) if observed_max is not None \
            else top
    return float(edges[position])
