"""Meta-watcher: an EWMA watch over the service's own health metrics.

Promotion gates (:mod:`repro.lifecycle.canary`) judge a candidate *before*
the swap; the :class:`MetaWatcher` guards it *after*.  It periodically
snapshots a running service's cumulative health counters
(:meth:`repro.serve.AnomalyService.health_snapshot`), converts them into
per-tick rates -- alarm rate, enqueue-to-score p99 (via histogram-delta
quantiles), alarm-sink errors -- and keeps an exponentially weighted
mean/variance per metric.  A tick whose value exceeds
``mean + k * std`` (after warm-up) or an absolute policy ceiling counts as
a breach; ``patience`` consecutive breaching ticks trigger
:meth:`repro.serve.AnomalyService.rollback`, which swaps the pinned
previous artifact back into every live session.

The EWMA state *freezes* on breaching ticks: a sustained regression must
keep reading as anomalous instead of being absorbed into the mean --
the same classify-then-learn discipline the drift lane applies to scores.

The sync core (:meth:`MetaWatcher.observe`) is deterministic and directly
testable; :meth:`MetaWatcher.arm` wraps it in an asyncio task on the
service's loop.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass
from typing import List, Optional

from .baseline import windowed_quantile

__all__ = ["WatchPolicy", "EwmaWatch", "MetaWatcher"]


@dataclass(frozen=True)
class WatchPolicy:
    """Tuning of one :class:`MetaWatcher`.

    ``interval_s`` is the tick period of the armed watch task.
    ``alpha``/``k``/``warmup_ticks`` parameterise the per-metric EWMA
    watches (weight of the newest tick, sigma multiplier, ticks observed
    before breaching is possible).  ``patience`` is the number of
    *consecutive* breaching ticks that triggers rollback.  The absolute
    ceilings (``max_alarm_rate``, ``max_p99_s``, ``max_sink_errors`` per
    tick) catch regressions so large or so immediate that the relative
    EWMA watch never got a healthy mean to compare against; their
    defaults are permissive (alarm storms only).

    >>> WatchPolicy(patience=0)
    Traceback (most recent call last):
        ...
    ValueError: patience must be at least 1
    """

    interval_s: float = 1.0
    alpha: float = 0.2
    k: float = 6.0
    warmup_ticks: int = 5
    patience: int = 3
    max_alarm_rate: float = 0.5
    max_p99_s: float = math.inf
    max_sink_errors: int = 0

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.k <= 0:
            raise ValueError("k must be positive")
        if self.warmup_ticks < 1:
            raise ValueError("warmup_ticks must be at least 1")
        if self.patience < 1:
            raise ValueError("patience must be at least 1")
        if not 0.0 < self.max_alarm_rate <= 1.0:
            raise ValueError("max_alarm_rate must be in (0, 1]")
        if self.max_p99_s <= 0:
            raise ValueError("max_p99_s must be positive")
        if self.max_sink_errors < 0:
            raise ValueError("max_sink_errors must be non-negative")

    def to_dict(self) -> dict:
        return {
            "interval_s": self.interval_s,
            "alpha": self.alpha,
            "k": self.k,
            "warmup_ticks": self.warmup_ticks,
            "patience": self.patience,
            "max_alarm_rate": self.max_alarm_rate,
            "max_p99_s": None if math.isinf(self.max_p99_s)
            else self.max_p99_s,
            "max_sink_errors": self.max_sink_errors,
        }


class EwmaWatch:
    """EWMA mean/variance watch on one scalar metric.

    >>> watch = EwmaWatch(alpha=0.5, k=3.0, warmup_ticks=3)
    >>> [watch.observe(1.0) for _ in range(5)]
    [False, False, False, False, False]
    >>> watch.observe(100.0)
    True
    """

    def __init__(self, *, alpha: float, k: float, warmup_ticks: int) -> None:
        self.alpha = alpha
        self.k = k
        self.warmup_ticks = warmup_ticks
        self._mean: Optional[float] = None
        self._variance = 0.0
        self._ticks = 0

    def observe(self, value: float) -> bool:
        """Feed one tick; ``True`` when it breaches the learned band.

        Breaching ticks do not update the learned mean/variance (see the
        module docstring on freezing).
        """
        value = float(value)
        if self._mean is not None and self._ticks >= self.warmup_ticks:
            band = self._mean + self.k * math.sqrt(self._variance) + 1e-12
            if value > band:
                return True
        if self._mean is None:
            self._mean = value
        else:
            delta = value - self._mean
            self._mean += self.alpha * delta
            self._variance = (1.0 - self.alpha) * (
                self._variance + self.alpha * delta * delta)
        self._ticks += 1
        return False


class MetaWatcher:
    """Watch a service's health and roll a promotion back on regression."""

    def __init__(self, policy: Optional[WatchPolicy] = None) -> None:
        self.policy = policy if policy is not None else WatchPolicy()
        self.breaches = 0              #: breaching (metric, tick) pairs seen
        self.rollbacks = 0             #: rollbacks this watcher triggered
        self.last_breaches: List[str] = []
        self._streak = 0
        self._previous: Optional[dict] = None
        self._watches = {
            name: EwmaWatch(alpha=self.policy.alpha, k=self.policy.k,
                            warmup_ticks=self.policy.warmup_ticks)
            for name in ("alarm_rate", "p99_s")
        }
        self._task: Optional[asyncio.Task] = None

    # -- sync core ----------------------------------------------------------- #
    def observe(self, snapshot: dict) -> List[str]:
        """Feed one cumulative health snapshot; return this tick's breaches.

        ``snapshot`` is :meth:`repro.serve.AnomalyService.health_snapshot`
        output (cumulative counters); the first call only primes the
        deltas.  Returns the names of the breached watches, e.g.
        ``["alarm_rate:ewma", "sink_errors:ceiling"]``.
        """
        previous, self._previous = self._previous, snapshot
        if previous is None:
            return []
        scored = snapshot["samples_scored"] - previous["samples_scored"]
        alarms = snapshot["alarms_total"] - previous["alarms_total"]
        sink_errors = snapshot["sink_errors"] - previous["sink_errors"]
        alarm_rate = alarms / scored if scored > 0 else 0.0
        p99 = 0.0
        if snapshot.get("queue_delay") and previous.get("queue_delay"):
            p99 = windowed_quantile(previous["queue_delay"],
                                    snapshot["queue_delay"])
        breaches: List[str] = []
        if self._watches["alarm_rate"].observe(alarm_rate):
            breaches.append("alarm_rate:ewma")
        if alarm_rate > self.policy.max_alarm_rate:
            breaches.append("alarm_rate:ceiling")
        if self._watches["p99_s"].observe(p99):
            breaches.append("p99_s:ewma")
        if p99 > self.policy.max_p99_s:
            breaches.append("p99_s:ceiling")
        if sink_errors > self.policy.max_sink_errors:
            breaches.append("sink_errors:ceiling")
        if breaches:
            self.breaches += len(breaches)
            self.last_breaches = breaches
            self._streak += 1
        else:
            self._streak = 0
        return breaches

    @property
    def should_rollback(self) -> bool:
        return self._streak >= self.policy.patience

    # -- async shell --------------------------------------------------------- #
    @property
    def armed(self) -> bool:
        return self._task is not None and not self._task.done()

    def arm(self, service) -> None:
        """Start ticking against ``service`` on the running event loop.

        Typically called by :meth:`repro.serve.AnomalyService.promote`
        right after the swap; the watch disarms itself after triggering a
        rollback (one promotion, one guard).
        """
        if self.armed:
            raise RuntimeError("watcher is already armed")
        self._streak = 0
        self._previous = None
        self._task = asyncio.get_running_loop().create_task(
            self._run(service), name="repro-lifecycle-watch")

    def disarm(self) -> None:
        """Stop the watch task (safe to call from the task itself)."""
        task, self._task = self._task, None
        if task is None:
            return
        try:
            current = asyncio.current_task()
        except RuntimeError:       # no running loop (sync caller)
            current = None
        if task is not current:
            task.cancel()

    async def _run(self, service) -> None:
        try:
            while True:
                await asyncio.sleep(self.policy.interval_s)
                try:
                    snapshot = service.health_snapshot()
                except RuntimeError:
                    return          # service stopped; nothing to watch
                self.observe(snapshot)
                if self.should_rollback:
                    self.rollbacks += 1
                    await service.rollback(
                        reason="watch:" + ",".join(self.last_breaches))
                    return
        except asyncio.CancelledError:
            raise
        finally:
            self._task = None
