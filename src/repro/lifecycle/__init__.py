"""Model lifecycle control plane: baselines, canaries, promotion, rollback.

The serving data plane (:mod:`repro.serve`, :mod:`repro.cluster`) scores
streams against one fitted artifact; this package is the control plane
that changes *which* artifact, without restarting anything:

* :func:`record_baseline` replays traffic through the serving core and
  persists a **golden baseline** -- the artifact's expected score /
  latency / alarm-rate distributions -- as a versioned JSON sidecar next
  to the packaged artifact (:data:`BASELINE_NAME`).
* :class:`CanaryController` shadow-scores a candidate detector on a
  deterministic fraction of live sessions inside a running
  :class:`~repro.serve.AnomalyService` (piggy-backing on micro-batcher
  flushes; candidate alarms are recorded, never emitted) and judges the
  live stats against the candidate's golden baseline with explicit
  promote/reject gates (:class:`CanaryGates`).
* :class:`MetaWatcher` keeps an EWMA watch over the service's *own*
  health metrics (alarm rate, enqueue-to-score p99, sink errors) and
  triggers an automatic rollback when a freshly promoted artifact
  regresses in production.
* :meth:`repro.serve.AnomalyService.swap_detector` is the hot-swap
  primitive the above drive: drain in-flight windows, migrate every live
  session via ``export_state``/``from_state`` onto the new detector
  without dropping a sample, and keep the old artifact pinned for
  instant rollback.  The cluster router coordinates the same swap across
  workers under its rebalance write gate.

``docs/OPERATIONS.md`` has the operator runbook (record baseline ->
canary -> promote -> rollback); ``LifecycleSpec`` on
:class:`repro.pipeline.ServiceSpec` carries the deployment-time gate
tuning.
"""

from .baseline import (
    BASELINE_NAME,
    BASELINE_VERSION,
    GoldenBaseline,
    LifecycleError,
    distribution_shift,
    load_baseline,
    record_baseline,
    save_baseline,
)
from .canary import CanaryController, CanaryGates, CanaryReport, GateResult
from .watcher import EwmaWatch, MetaWatcher, WatchPolicy

__all__ = [
    "BASELINE_NAME",
    "BASELINE_VERSION",
    "GoldenBaseline",
    "LifecycleError",
    "distribution_shift",
    "load_baseline",
    "record_baseline",
    "save_baseline",
    "CanaryController",
    "CanaryGates",
    "CanaryReport",
    "GateResult",
    "EwmaWatch",
    "MetaWatcher",
    "WatchPolicy",
]
