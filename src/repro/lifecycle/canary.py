"""Canary evaluation: shadow-score a candidate on live traffic, then judge.

A :class:`CanaryController` rides inside a running
:class:`~repro.serve.AnomalyService`: the micro-batcher hands it every
flushed batch (the ``shadow`` hook), the controller picks out the requests
of *shadowed* sessions -- a deterministic, hash-based fraction of streams,
so the same streams stay shadowed across flushes and processes -- and
re-scores their already-materialised ``(window, target)`` pairs with the
candidate detector in one extra ``score_windows_batch`` call.  The
candidate's scores, per-window latency and would-be alarms are recorded
into streaming histograms; nothing the candidate does is ever emitted to
sinks or subscribers.

:meth:`CanaryController.evaluate` turns the live statistics into an
explicit verdict against the candidate's golden baseline
(:mod:`repro.lifecycle.baseline`):

``promote``
    Enough samples, and every gate holds.
``reject``
    A gate is breached (score-distribution shift, alarm-rate ratio, p99
    latency budget) or the shadow lane itself errored.
``undecided``
    Not enough shadow samples yet to judge.

Gate limits live in :class:`CanaryGates`; the deployment spec
(``service.lifecycle``) carries the tuned values into services built
through the pipeline.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.detector import AnomalyDetector
from .baseline import (
    GoldenBaseline,
    distribution_shift,
    latency_histogram,
)
from ..edge.monitor import StreamingHistogram

__all__ = ["CanaryGates", "GateResult", "CanaryReport", "CanaryController"]

#: shadow-lane scoring errors tolerated before the lane disables itself
_MAX_ERRORS = 3


@dataclass(frozen=True)
class CanaryGates:
    """Promote/reject limits for one canary evaluation.

    ``min_samples``
        Shadow-scored samples required before any verdict other than
        ``undecided``.
    ``max_score_shift``
        Ceiling on the total-variation distance between the candidate's
        live score distribution and its golden baseline's (see
        :func:`~repro.lifecycle.distribution_shift`).
    ``max_alarm_ratio`` / ``alarm_rate_slack``
        The candidate's live alarm rate must stay within
        ``baseline_rate * max_alarm_ratio + alarm_rate_slack``; the
        additive slack keeps near-zero baselines from turning a single
        alarm into a rejection.
    ``max_latency_p99_s``
        Budget on the candidate's p99 per-window shadow-scoring latency
        (defaults to the serving stack's 25 ms enqueue-to-score budget).

    >>> CanaryGates(min_samples=0)
    Traceback (most recent call last):
        ...
    ValueError: min_samples must be at least 1
    """

    min_samples: int = 256
    max_score_shift: float = 0.35
    max_alarm_ratio: float = 3.0
    alarm_rate_slack: float = 0.005
    max_latency_p99_s: float = 0.025

    def __post_init__(self) -> None:
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        if not 0.0 < self.max_score_shift <= 1.0:
            raise ValueError("max_score_shift must be in (0, 1]")
        if self.max_alarm_ratio < 1.0:
            raise ValueError("max_alarm_ratio must be at least 1")
        if self.alarm_rate_slack < 0.0:
            raise ValueError("alarm_rate_slack must be non-negative")
        if self.max_latency_p99_s <= 0.0:
            raise ValueError("max_latency_p99_s must be positive")

    def to_dict(self) -> dict:
        return {
            "min_samples": self.min_samples,
            "max_score_shift": self.max_score_shift,
            "max_alarm_ratio": self.max_alarm_ratio,
            "alarm_rate_slack": self.alarm_rate_slack,
            "max_latency_p99_s": self.max_latency_p99_s,
        }


@dataclass(frozen=True)
class GateResult:
    """One gate's observed value against its limit."""

    name: str
    value: float
    limit: float
    ok: bool

    def to_dict(self) -> dict:
        return {"name": self.name, "value": self.value,
                "limit": self.limit, "ok": self.ok}


@dataclass(frozen=True)
class CanaryReport:
    """The full evaluation: per-gate results plus the overall verdict."""

    verdict: str                   #: ``promote`` / ``reject`` / ``undecided``
    samples: int
    alarms: int
    errors: int
    alarm_rate: float
    baseline_alarm_rate: float
    score_shift: float
    latency_p99_s: float
    gates: Tuple[GateResult, ...]
    fingerprint: Optional[str] = None   #: candidate artifact fingerprint

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "samples": self.samples,
            "alarms": self.alarms,
            "errors": self.errors,
            "alarm_rate": self.alarm_rate,
            "baseline_alarm_rate": self.baseline_alarm_rate,
            "score_shift": self.score_shift,
            "latency_p99_s": self.latency_p99_s,
            "gates": [gate.to_dict() for gate in self.gates],
            "fingerprint": self.fingerprint,
        }


class CanaryController:
    """Shadow-score one candidate detector and judge it (module docstring).

    Parameters
    ----------
    candidate:
        The fitted candidate detector (same channel layout as the live
        one -- it re-scores the live sessions' windows).
    baseline:
        The candidate's own :class:`GoldenBaseline`; live shadow stats
        are compared against it.
    gates:
        :class:`CanaryGates` limits (defaults apply when ``None``).
    fraction:
        Fraction of streams to shadow, in ``(0, 1]``.  Membership is a
        deterministic hash of the stream id, so a stream is either always
        or never shadowed, regardless of process or flush order.
    fingerprint:
        The candidate artifact's fingerprint; stamped on the report and,
        after promotion, on the service.
    """

    def __init__(self, candidate: AnomalyDetector, *,
                 baseline: GoldenBaseline,
                 gates: Optional[CanaryGates] = None,
                 fraction: float = 0.25,
                 fingerprint: Optional[str] = None,
                 clock=time.perf_counter) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.candidate = candidate
        self.baseline = baseline
        self.gates = gates if gates is not None else CanaryGates()
        self.fraction = fraction
        self.fingerprint = fingerprint
        self._clock = clock
        threshold = getattr(candidate, "threshold", None)
        self._threshold = threshold.threshold if threshold is not None \
            else None
        # Live histograms share the baseline's bin layout so
        # distribution_shift can compare them directly.
        self.score_histogram = StreamingHistogram(
            baseline.score_histogram.edges)
        self.latency_histogram = latency_histogram()
        self.samples = 0
        self.alarms = 0
        self.errors = 0
        self.stopped = False
        self._membership: dict = {}

    # -- shadow-lane hot path ------------------------------------------------ #
    def is_shadowed(self, stream_id: str) -> bool:
        """Deterministic shadow membership for one stream id."""
        cached = self._membership.get(stream_id)
        if cached is None:
            digest = hashlib.blake2s(stream_id.encode("utf-8"),
                                     digest_size=8).digest()
            cached = int.from_bytes(digest, "big") / 2.0 ** 64 < self.fraction
            self._membership[stream_id] = cached
        return cached

    def observe_flush(self, batch: Sequence) -> None:
        """Shadow-score the shadowed slice of one flushed batch.

        Called by the micro-batcher after its own scoring call (the
        ``shadow`` hook), with the flushed
        :class:`~repro.serve.session.WindowRequest` list.  Never raises:
        a shadow lane that can crash the data plane would make canarying
        riskier than the promotion it guards, so errors are counted and
        the lane disables itself after ``3`` of them (the error count
        also forces a ``reject`` verdict).
        """
        if self.stopped:
            return
        try:
            rows = [request for request in batch
                    if self.is_shadowed(request.session.stream_id)]
            if not rows:
                return
            windows = np.stack([request.context for request in rows])
            targets = np.stack([request.target for request in rows])
            start = self._clock()
            scores = self.candidate.score_windows_batch(windows, targets)
            per_row = (self._clock() - start) / len(rows)
            threshold = self._threshold
            for score in scores:
                score = float(score)
                self.score_histogram.add(score)
                self.latency_histogram.add(per_row)
                self.samples += 1
                if threshold is not None and score > threshold:
                    self.alarms += 1
        except Exception:
            self.errors += 1
            if self.errors >= _MAX_ERRORS:
                self.stopped = True

    # -- judgement ----------------------------------------------------------- #
    @property
    def alarm_rate(self) -> float:
        return self.alarms / self.samples if self.samples else 0.0

    def evaluate(self) -> CanaryReport:
        """Judge the live shadow statistics against the golden baseline."""
        gates = self.gates
        shift = distribution_shift(self.baseline.score_histogram,
                                   self.score_histogram)
        p99 = self.latency_histogram.p99
        rate = self.alarm_rate
        rate_limit = (self.baseline.alarm_rate * gates.max_alarm_ratio
                      + gates.alarm_rate_slack)
        results: List[GateResult] = [
            GateResult("samples", float(self.samples),
                       float(gates.min_samples),
                       self.samples >= gates.min_samples),
            GateResult("score_shift", shift, gates.max_score_shift,
                       shift <= gates.max_score_shift),
            GateResult("alarm_rate", rate, rate_limit, rate <= rate_limit),
            GateResult("latency_p99_s", p99, gates.max_latency_p99_s,
                       p99 <= gates.max_latency_p99_s),
            GateResult("shadow_errors", float(self.errors), 0.0,
                       self.errors == 0),
        ]
        if self.errors:
            verdict = "reject"
        elif self.samples < gates.min_samples:
            verdict = "undecided"
        elif all(result.ok for result in results):
            verdict = "promote"
        else:
            verdict = "reject"
        return CanaryReport(
            verdict=verdict,
            samples=self.samples,
            alarms=self.alarms,
            errors=self.errors,
            alarm_rate=rate,
            baseline_alarm_rate=self.baseline.alarm_rate,
            score_shift=shift,
            latency_p99_s=p99,
            gates=tuple(results),
            fingerprint=self.fingerprint,
        )
