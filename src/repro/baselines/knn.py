"""k-Nearest-Neighbour (kNN) baseline detector.

The paper scores each data point by the *maximum* distance to its k = 5
nearest neighbours in the normal training data, the configuration reported
as the best nearest-neighbour variant by Goldstein & Uchida (2016).  The
detector operates on individual samples (window = 1), so the anomaly score
of a sample is available as soon as the sample arrives.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..core.detector import AnomalyDetector, InferenceCost
from ..neighbors.knn import KNNAnomalyScorer

__all__ = ["KNNConfig", "KNNDetector"]


@dataclass(frozen=True)
class KNNConfig:
    """Hyper-parameters of the kNN baseline."""

    n_channels: int
    n_neighbors: int = 5
    aggregation: Literal["max", "mean"] = "max"
    max_reference_points: int = 3000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ValueError("n_channels must be at least 1")
        if self.n_neighbors < 1:
            raise ValueError("n_neighbors must be at least 1")
        if self.max_reference_points <= self.n_neighbors:
            raise ValueError("max_reference_points must exceed n_neighbors")

    @classmethod
    def paper(cls, n_channels: int = 86) -> "KNNConfig":
        """Paper configuration: k = 5, maximum-distance aggregation.

        The reference set is the full 390-minute training recording sampled at
        200 Hz (about 4.7 million points), which is what makes the kNN scan so
        expensive on the boards.
        """
        return cls(n_channels=n_channels, n_neighbors=5, aggregation="max",
                   max_reference_points=4_680_000)


class KNNDetector(AnomalyDetector):
    """Outlier detector scored by the distance to the normal reference set."""

    name = "kNN"

    def __init__(self, config: KNNConfig) -> None:
        super().__init__(window=1)
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.scorer = KNNAnomalyScorer(
            n_neighbors=config.n_neighbors,
            aggregation=config.aggregation,
            max_reference_points=config.max_reference_points,
            rng=self._rng,
        )

    # -- training ------------------------------------------------------- #
    def fit(self, train_data: np.ndarray) -> "KNNDetector":
        train_data = np.asarray(train_data, dtype=np.float64)
        if train_data.ndim != 2 or train_data.shape[1] != self.config.n_channels:
            raise ValueError(f"expected training data of shape (T, {self.config.n_channels})")
        start = time.perf_counter()
        self.scorer.fit(train_data)
        self.history.wall_time_s = time.perf_counter() - start
        self._mark_fitted()
        return self

    # -- scoring -------------------------------------------------------- #
    def score_window(self, window: np.ndarray, target: np.ndarray) -> float:
        """One-step scoring via :meth:`score_windows_batch` (one shared path)."""
        return float(self.score_windows_batch(
            np.asarray(window, dtype=np.float64)[None, ...],
            np.asarray(target, dtype=np.float64).reshape(1, -1),
        )[0])

    def score_windows_batch(self, windows: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Vectorized distance scoring: one reference-set scan for all rows."""
        self._check_fitted()
        _, targets = self._validate_batch(windows, targets)
        return self.scorer.score_samples(targets)

    # -- cost ----------------------------------------------------------- #
    def inference_cost(self) -> InferenceCost:
        """A brute-force scan of the whole reference set per query."""
        n_reference = self.scorer.reference_.shape[0] if self.scorer.reference_ is not None \
            else self.config.max_reference_points
        # Difference, square, accumulate, plus the partial sort of the distances.
        flops = 5.0 * n_reference * self.config.n_channels
        parameter_bytes = n_reference * self.config.n_channels * 8
        return InferenceCost(
            flops=float(flops),
            parameter_bytes=float(parameter_bytes),
            activation_bytes=float(n_reference * 8),
            gpu_fraction=0.0,
            parallel_efficiency=0.25,
            per_call_overhead_s=2.0e-3,
            n_kernel_launches=10.0,
        )
