"""Gradient Boosted Regression Forest (GBRF) baseline detector.

Following Huang et al. (2021) as modified by the paper (Section 3.3): a
boosted forest of 30 regression trees forecasts the next sample from the
context window, without any dimensionality-reduction step, and the anomaly
score is the euclidean norm of the forecast residual (same scoring rule as
AR-LSTM).

A full window of every channel would give the trees tens of thousands of
input features; like the reference implementation, the detector summarises
the context with a small set of recent samples per channel
(``context_samples`` evenly spaced taps, always including the most recent
one), which keeps tree construction tractable while preserving the short-term
dynamics that matter for one-step-ahead forecasting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.detector import AnomalyDetector, InferenceCost
from ..data.windowing import WindowDataset
from ..trees.gradient_boosting import MultiOutputGradientBoosting

__all__ = ["GBRFConfig", "GBRFDetector"]


@dataclass(frozen=True)
class GBRFConfig:
    """Hyper-parameters of the GBRF baseline."""

    n_channels: int
    window: int = 32
    n_estimators: int = 30
    max_depth: int = 3
    learning_rate: float = 0.1
    context_samples: int = 4
    max_train_windows: int = 400
    max_output_channels: Optional[int] = None
    max_split_features: Optional[int] = 24
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ValueError("n_channels must be at least 1")
        if self.window < 1:
            raise ValueError("window must be at least 1")
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        if not 1 <= self.context_samples <= self.window:
            raise ValueError("context_samples must be in [1, window]")

    @classmethod
    def paper(cls, n_channels: int = 86) -> "GBRFConfig":
        """Paper configuration: 30 trees, no dimensionality reduction."""
        return cls(n_channels=n_channels, window=512, n_estimators=30,
                   context_samples=8, max_train_windows=1_000_000,
                   max_split_features=None)


class GBRFDetector(AnomalyDetector):
    """Forecasting detector built on boosted regression trees."""

    name = "GBRF"

    def __init__(self, config: GBRFConfig) -> None:
        super().__init__(window=config.window)
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        n_outputs = config.n_channels if config.max_output_channels is None \
            else min(config.n_channels, config.max_output_channels)
        self._n_outputs = n_outputs
        self.model = MultiOutputGradientBoosting(
            n_outputs=n_outputs,
            n_estimators=config.n_estimators,
            learning_rate=config.learning_rate,
            max_depth=config.max_depth,
            max_features=config.max_split_features,
            rng=self._rng,
        )
        self._tap_indices = self._compute_taps(config.window, config.context_samples)

    @staticmethod
    def _compute_taps(window: int, context_samples: int) -> np.ndarray:
        """Indices of the window samples used as tree features (most recent last)."""
        if context_samples == 1:
            return np.array([window - 1])
        taps = np.linspace(0, window - 1, context_samples)
        return np.unique(np.round(taps).astype(int))

    def _features(self, contexts: np.ndarray) -> np.ndarray:
        """Flatten the tapped context samples into tree features."""
        contexts = np.asarray(contexts, dtype=np.float64)
        if contexts.ndim == 2:
            contexts = contexts[None, ...]
        tapped = contexts[:, self._tap_indices, :]
        return tapped.reshape(contexts.shape[0], -1)

    # -- training ------------------------------------------------------- #
    def fit(self, train_data: np.ndarray) -> "GBRFDetector":
        train_data = np.asarray(train_data, dtype=np.float64)
        if train_data.ndim != 2 or train_data.shape[1] != self.config.n_channels:
            raise ValueError(f"expected training data of shape (T, {self.config.n_channels})")
        start = time.perf_counter()
        dataset = WindowDataset.from_stream(train_data, self.config.window, horizon=1) \
            .subsample(self.config.max_train_windows, rng=self._rng)
        features = self._features(dataset.contexts)
        targets = dataset.targets[:, :self._n_outputs]
        self.model.fit(features, targets)
        train_residuals = self.model.predict(features) - targets
        self.history.epoch_losses.append(float(np.mean(train_residuals ** 2)))
        self.history.wall_time_s = time.perf_counter() - start
        self._mark_fitted()
        return self

    # -- scoring -------------------------------------------------------- #
    def predict_next(self, windows: np.ndarray) -> np.ndarray:
        """Forecast the (possibly truncated) next sample for a batch of contexts."""
        return self.model.predict(self._features(windows))

    def score_window(self, window: np.ndarray, target: np.ndarray) -> float:
        """One-step scoring via :meth:`score_windows_batch` (one shared path)."""
        return float(self.score_windows_batch(
            np.asarray(window, dtype=np.float64)[None, ...],
            np.asarray(target, dtype=np.float64).reshape(1, -1),
        )[0])

    def score_windows_batch(self, windows: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Vectorized forecast-residual scoring for a batch of windows."""
        self._check_fitted()
        windows, targets = self._validate_batch(windows, targets)
        predictions = self.predict_next(windows)
        return np.linalg.norm(predictions - targets[:, :self._n_outputs], axis=1)

    # -- cost ----------------------------------------------------------- #
    def inference_cost(self) -> InferenceCost:
        """Tree traversal is a handful of comparisons per tree per channel."""
        node_visits = self._n_outputs * self.config.n_estimators * self.config.max_depth
        flops = 2.0 * node_visits
        # Each node stores feature index, threshold, value: ~3 values of 8 bytes.
        nodes_per_tree = 2 ** (self.config.max_depth + 1)
        parameter_bytes = self._n_outputs * self.config.n_estimators * nodes_per_tree * 24
        return InferenceCost(
            flops=flops,
            parameter_bytes=float(parameter_bytes),
            activation_bytes=float(self._n_outputs * 8),
            gpu_fraction=0.1,
            parallel_efficiency=0.3,
            per_call_overhead_s=1.5e-3,
            n_kernel_launches=float(self.config.n_estimators),
        )
