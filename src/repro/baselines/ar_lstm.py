"""Autoregressive LSTM (AR-LSTM) baseline.

The paper's recurrent baseline stacks five LSTM layers with 256 feature maps
each, followed by two fully connected layers; the anomaly score is the
euclidean norm of the difference between the predicted and the observed next
sample (Section 3.3).  The architecture is parameterised here so the
CPU-only reproduction can run a reduced copy while the full configuration
remains expressible via :meth:`ARLSTMDetector.paper_configuration`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

import numpy as np

from .. import nn
from ..core.detector import AnomalyDetector, InferenceCost
from ..data.windowing import WindowDataset

__all__ = ["ARLSTMConfig", "ARLSTMDetector"]


@dataclass(frozen=True)
class ARLSTMConfig:
    """Architecture and training hyper-parameters of the AR-LSTM baseline."""

    n_channels: int
    window: int = 32
    hidden_size: int = 32
    num_layers: int = 2
    fc_size: int = 64
    learning_rate: float = 1e-3
    epochs: int = 3
    batch_size: int = 32
    max_train_windows: int = 400
    gradient_clip: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ValueError("n_channels must be at least 1")
        if self.window < 2:
            raise ValueError("window must be at least 2")
        if self.hidden_size < 1 or self.fc_size < 1:
            raise ValueError("hidden_size and fc_size must be positive")
        if self.num_layers < 1:
            raise ValueError("num_layers must be at least 1")

    @classmethod
    def paper(cls, n_channels: int = 86) -> "ARLSTMConfig":
        """The configuration stated in the paper: 5 layers x 256 units, lr 1e-5."""
        return cls(n_channels=n_channels, window=512, hidden_size=256, num_layers=5,
                   fc_size=256, learning_rate=1e-5, epochs=50,
                   max_train_windows=1_000_000)


class _ARLSTMNetwork(nn.Module):
    """LSTM stack followed by two fully connected layers."""

    def __init__(self, config: ARLSTMConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.lstm = nn.LSTM(config.n_channels, config.hidden_size,
                            num_layers=config.num_layers, rng=rng)
        self.fc1 = nn.Linear(config.hidden_size, config.fc_size, rng=rng)
        self.fc2 = nn.Linear(config.fc_size, config.n_channels, rng=rng)
        self.activation = nn.ReLU()

    def forward(self, windows: nn.Tensor) -> nn.Tensor:
        """Predict the next sample from a (batch, window, channels) input."""
        last_hidden = self.lstm.last_hidden(windows)
        hidden = self.activation(self.fc1(last_hidden))
        return self.fc2(hidden)


class ARLSTMDetector(AnomalyDetector):
    """Forecasting detector scored by the L2 norm of the prediction error."""

    name = "AR-LSTM"

    def __init__(self, config: ARLSTMConfig) -> None:
        super().__init__(window=config.window)
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.network = _ARLSTMNetwork(config, rng=self._rng)

    @classmethod
    def paper_configuration(cls, n_channels: int = 86) -> "ARLSTMDetector":
        """Instantiate the full-scale paper configuration (not trained)."""
        return cls(ARLSTMConfig.paper(n_channels))

    # -- training ------------------------------------------------------- #
    def fit(self, train_data: np.ndarray) -> "ARLSTMDetector":
        train_data = np.asarray(train_data, dtype=np.float64)
        if train_data.ndim != 2 or train_data.shape[1] != self.config.n_channels:
            raise ValueError(f"expected training data of shape (T, {self.config.n_channels})")
        start = time.perf_counter()
        dataset = WindowDataset.from_stream(train_data, self.config.window, horizon=1) \
            .subsample(self.config.max_train_windows, rng=self._rng)
        optimizer = nn.Adam(self.network.parameters(), lr=self.config.learning_rate)
        self.network.train()
        for _ in range(self.config.epochs):
            losses: List[float] = []
            for contexts, targets in dataset.batches(self.config.batch_size, shuffle=True,
                                                     rng=self._rng):
                prediction = self.network(nn.Tensor(contexts))
                loss = nn.mse_loss(prediction, nn.Tensor(targets))
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(self.network.parameters(), self.config.gradient_clip)
                optimizer.step()
                losses.append(loss.item())
            self.history.epoch_losses.append(float(np.mean(losses)))
        self.network.eval()
        self.history.wall_time_s = time.perf_counter() - start
        self._mark_fitted()
        return self

    # -- scoring -------------------------------------------------------- #
    def predict_next(self, windows: np.ndarray) -> np.ndarray:
        """Forecast the next sample for a batch of (window, channels) contexts."""
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim == 2:
            windows = windows[None, ...]
        # BLAS dispatches 1-row matmuls (here: every LSTM/FC layer) to a
        # gemv-class kernel whose rounding differs from the >=2-row gemm
        # kernels, which are row-count invariant.  Duplicating a lone window
        # keeps sequential scoring bit-identical to batched scoring.
        padded = windows.shape[0] == 1
        if padded:
            windows = np.concatenate([windows, windows])
        with nn.no_grad():
            prediction = self.network(nn.Tensor(windows))
        result = prediction.numpy()
        return result[:1] if padded else result

    def score_window(self, window: np.ndarray, target: np.ndarray) -> float:
        """One-step scoring via :meth:`score_windows_batch` (one shared path)."""
        return float(self.score_windows_batch(
            np.asarray(window, dtype=np.float64)[None, ...],
            np.asarray(target, dtype=np.float64).reshape(1, -1),
        )[0])

    def score_windows_batch(self, windows: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Vectorized forecasting-error scoring: one LSTM pass for all rows."""
        self._check_fitted()
        windows, targets = self._validate_batch(windows, targets)
        predictions = self.predict_next(windows)
        return np.linalg.norm(predictions - targets, axis=1)

    # -- cost ----------------------------------------------------------- #
    def inference_cost(self) -> InferenceCost:
        profile = nn.profile_model(self.network.lstm,
                                   (self.config.window, self.config.n_channels))
        fc_flops = 2 * (self.config.hidden_size * self.config.fc_size
                        + self.config.fc_size * self.config.n_channels)
        params = self.network.num_parameters()
        # LSTMs re-read the full weight matrices at every time step, which is
        # what makes them memory-bandwidth hungry on edge GPUs.
        weight_traffic = params * 4 * self.config.window
        activation_bytes = profile.total_activation_bytes \
            + 4 * (self.config.fc_size + self.config.n_channels)
        # Recurrent steps are partially fused by the runtime but still issue a
        # long sequence of dependent kernels.
        launches = max(self.config.window / 8.0, self.config.num_layers * 4.0)
        return InferenceCost(
            flops=float(profile.total_flops + fc_flops),
            parameter_bytes=float(params * 4),
            activation_bytes=float(activation_bytes),
            gpu_fraction=0.95,
            parallel_efficiency=0.35,
            n_kernel_launches=launches,
            weight_traffic_bytes=float(weight_traffic),
        )
