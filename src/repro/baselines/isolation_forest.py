"""Isolation Forest baseline detector.

Paper configuration (Section 3.3): an ensemble of 100 isolation trees with a
contamination value of 0.1, scored by the average path length needed to
isolate a point (Liu et al., 2012).  Like kNN, the detector works on
individual samples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.detector import AnomalyDetector, InferenceCost
from ..trees.isolation_forest import IsolationForest

__all__ = ["IsolationForestConfig", "IsolationForestDetector"]


@dataclass(frozen=True)
class IsolationForestConfig:
    """Hyper-parameters of the Isolation Forest baseline."""

    n_channels: int
    n_estimators: int = 100
    max_samples: int = 256
    contamination: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ValueError("n_channels must be at least 1")
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")

    @classmethod
    def paper(cls, n_channels: int = 86) -> "IsolationForestConfig":
        """Paper configuration: 100 trees, contamination 0.1."""
        return cls(n_channels=n_channels, n_estimators=100, contamination=0.1)


class IsolationForestDetector(AnomalyDetector):
    """Outlier detector scored by isolation path length."""

    name = "Isolation Forest"

    def __init__(self, config: IsolationForestConfig) -> None:
        super().__init__(window=1)
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.forest = IsolationForest(
            n_estimators=config.n_estimators,
            max_samples=config.max_samples,
            contamination=config.contamination,
            rng=self._rng,
        )

    # -- training ------------------------------------------------------- #
    def fit(self, train_data: np.ndarray) -> "IsolationForestDetector":
        train_data = np.asarray(train_data, dtype=np.float64)
        if train_data.ndim != 2 or train_data.shape[1] != self.config.n_channels:
            raise ValueError(f"expected training data of shape (T, {self.config.n_channels})")
        start = time.perf_counter()
        self.forest.fit(train_data)
        self.history.wall_time_s = time.perf_counter() - start
        self._mark_fitted()
        return self

    # -- scoring -------------------------------------------------------- #
    def score_window(self, window: np.ndarray, target: np.ndarray) -> float:
        """One-step scoring via :meth:`score_windows_batch` (one shared path)."""
        return float(self.score_windows_batch(
            np.asarray(window, dtype=np.float64)[None, ...],
            np.asarray(target, dtype=np.float64).reshape(1, -1),
        )[0])

    def score_windows_batch(self, windows: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Vectorized path-length scoring: one forest pass for all rows."""
        self._check_fitted()
        _, targets = self._validate_batch(windows, targets)
        return self.forest.score_samples(targets)

    # -- cost ----------------------------------------------------------- #
    def inference_cost(self) -> InferenceCost:
        """One comparison per level of each of the (sequentially traversed) trees."""
        expected_depth = np.ceil(np.log2(max(self.config.max_samples, 2)))
        node_visits = self.config.n_estimators * expected_depth
        nodes_per_tree = 2 * self.config.max_samples
        parameter_bytes = self.config.n_estimators * nodes_per_tree * 24
        return InferenceCost(
            flops=float(2.0 * node_visits),
            parameter_bytes=float(parameter_bytes),
            activation_bytes=float(self.config.n_estimators * 8),
            gpu_fraction=0.0,
            parallel_efficiency=0.2,
            per_call_overhead_s=6.0e-3,
            n_kernel_launches=1.5 * self.config.n_estimators,
        )
