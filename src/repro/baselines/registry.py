"""Registry that builds every detector of the study from one place.

The evaluation harness and the Table-2 benchmarks need the same set of six
detectors (VARADE + five baselines) built consistently for a given channel
count and context window.  The registry centralises those constructors so
experiments, examples and tests stay in sync, and exposes both the
scaled-down reproduction settings and the paper's full-scale settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.config import TrainingConfig, VaradeConfig
from ..core.detector import AnomalyDetector, VaradeDetector
from .ar_lstm import ARLSTMConfig, ARLSTMDetector
from .autoencoder import AutoencoderConfig, AutoencoderDetector
from .gbrf import GBRFConfig, GBRFDetector
from .isolation_forest import IsolationForestConfig, IsolationForestDetector
from .knn import KNNConfig, KNNDetector

__all__ = ["DetectorSpec", "DetectorRegistry", "DETECTOR_NAMES"]

DETECTOR_NAMES = ("AR-LSTM", "GBRF", "AE", "kNN", "Isolation Forest", "VARADE")


@dataclass(frozen=True)
class DetectorSpec:
    """A named detector constructor."""

    name: str
    build: Callable[[], AnomalyDetector]


class DetectorRegistry:
    """Build the study's detectors for a given stream shape and budget."""

    def __init__(self, n_channels: int, window: int = 32,
                 neural_epochs: int = 4, max_train_windows: int = 600,
                 varade_feature_maps: int = 16, varade_epochs: int = 24,
                 varade_warmup_epochs: int = 4, varade_learning_rate: float = 3e-3,
                 lstm_hidden: int = 32, kl_weight: float = 0.1, seed: int = 0) -> None:
        if n_channels < 1:
            raise ValueError("n_channels must be at least 1")
        if window < 2:
            raise ValueError("window must be at least 2")
        self.n_channels = n_channels
        self.window = window
        self.neural_epochs = neural_epochs
        self.max_train_windows = max_train_windows
        self.varade_feature_maps = varade_feature_maps
        self.varade_epochs = varade_epochs
        self.varade_warmup_epochs = varade_warmup_epochs
        self.varade_learning_rate = varade_learning_rate
        self.lstm_hidden = lstm_hidden
        self.kl_weight = kl_weight
        self.seed = seed

    # ------------------------------------------------------------------ #
    # Individual constructors
    # ------------------------------------------------------------------ #
    def build_varade(self) -> VaradeDetector:
        config = VaradeConfig(
            n_channels=self.n_channels,
            window=self.window,
            base_feature_maps=self.varade_feature_maps,
            kl_weight=self.kl_weight,
        )
        # VARADE needs the variational phase to actually learn the
        # context-dependent variance; its per-epoch cost is small, so it gets
        # a larger epoch budget than the other neural models.
        training = TrainingConfig(
            learning_rate=self.varade_learning_rate,
            epochs=self.varade_epochs,
            mean_warmup_epochs=self.varade_warmup_epochs,
            batch_size=32,
            max_train_windows=max(self.max_train_windows, 1200),
            seed=self.seed,
        )
        return VaradeDetector(config, training)

    def build_ar_lstm(self) -> ARLSTMDetector:
        # The recurrent baseline is run with a shorter context than the
        # convolutional models (sequential processing makes a full window
        # prohibitively slow in pure Python); its score rule is unchanged.
        lstm_window = min(self.window, 16)
        config = ARLSTMConfig(
            n_channels=self.n_channels,
            window=lstm_window,
            hidden_size=self.lstm_hidden,
            num_layers=2,
            fc_size=self.lstm_hidden * 2,
            epochs=self.neural_epochs,
            max_train_windows=min(self.max_train_windows, 300),
            seed=self.seed,
        )
        return ARLSTMDetector(config)

    def build_autoencoder(self) -> AutoencoderDetector:
        config = AutoencoderConfig(
            n_channels=self.n_channels,
            window=self.window,
            base_feature_maps=self.varade_feature_maps,
            latent_feature_maps=self.varade_feature_maps * 2,
            epochs=self.neural_epochs,
            max_train_windows=self.max_train_windows,
            seed=self.seed,
        )
        return AutoencoderDetector(config)

    def build_gbrf(self) -> GBRFDetector:
        config = GBRFConfig(
            n_channels=self.n_channels,
            window=self.window,
            n_estimators=30,
            context_samples=4,
            max_train_windows=min(self.max_train_windows, 400),
            seed=self.seed,
        )
        return GBRFDetector(config)

    def build_knn(self) -> KNNDetector:
        config = KNNConfig(n_channels=self.n_channels, seed=self.seed)
        return KNNDetector(config)

    def build_isolation_forest(self) -> IsolationForestDetector:
        config = IsolationForestConfig(n_channels=self.n_channels, seed=self.seed)
        return IsolationForestDetector(config)

    # ------------------------------------------------------------------ #
    # Collections
    # ------------------------------------------------------------------ #
    def specs(self, include: Optional[List[str]] = None) -> List[DetectorSpec]:
        """Constructor specs for the requested detectors (default: all six)."""
        constructors: Dict[str, Callable[[], AnomalyDetector]] = {
            "AR-LSTM": self.build_ar_lstm,
            "GBRF": self.build_gbrf,
            "AE": self.build_autoencoder,
            "kNN": self.build_knn,
            "Isolation Forest": self.build_isolation_forest,
            "VARADE": self.build_varade,
        }
        names = list(DETECTOR_NAMES) if include is None else list(include)
        unknown = [name for name in names if name not in constructors]
        if unknown:
            raise KeyError(f"unknown detector names: {unknown}")
        return [DetectorSpec(name=name, build=constructors[name]) for name in names]

    def build_all(self, include: Optional[List[str]] = None) -> Dict[str, AnomalyDetector]:
        """Instantiate the requested detectors keyed by name."""
        return {spec.name: spec.build() for spec in self.specs(include)}
