"""Registry that builds every detector of the study from one place.

The evaluation harness and the Table-2 benchmarks need the same set of six
detectors (VARADE + five baselines) built consistently for a given channel
count and context window.  The registry centralises those constructors so
experiments, examples and tests stay in sync, and exposes both the
scaled-down reproduction settings and the paper's full-scale settings.

.. note::
   This is the *legacy* study registry, kept as a thin compatibility layer:
   new code should describe detectors declaratively with
   :class:`repro.pipeline.DeploymentSpec` and build them through
   :class:`repro.pipeline.Pipeline` (string-keyed kinds, JSON round-trip,
   seed plumbing).  :meth:`DetectorRegistry.deployment_spec` bridges the
   two worlds: it converts this registry's scaled-down settings for one
   detector into the equivalent ``DeploymentSpec``, and is what
   :func:`repro.eval.run_full_experiment` now routes through.  Both paths
   construct bit-identical detectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.config import TrainingConfig, VaradeConfig
from ..core.detector import AnomalyDetector, VaradeDetector
from .ar_lstm import ARLSTMConfig, ARLSTMDetector
from .autoencoder import AutoencoderConfig, AutoencoderDetector
from .gbrf import GBRFConfig, GBRFDetector
from .isolation_forest import IsolationForestConfig, IsolationForestDetector
from .knn import KNNConfig, KNNDetector

__all__ = ["DetectorSpec", "DetectorRegistry", "DETECTOR_NAMES"]

DETECTOR_NAMES = ("AR-LSTM", "GBRF", "AE", "kNN", "Isolation Forest", "VARADE")


@dataclass(frozen=True)
class DetectorSpec:
    """A named detector constructor."""

    name: str
    build: Callable[[], AnomalyDetector]


class DetectorRegistry:
    """Build the study's detectors for a given stream shape and budget.

    Distinct from the pipeline's string-keyed registry of the same name,
    :class:`repro.pipeline.DetectorRegistry` -- keep both module-qualified
    at call sites (:meth:`deployment_spec` bridges from this one to the
    declarative path).
    """

    def __init__(self, n_channels: int, window: int = 32,
                 neural_epochs: int = 4, max_train_windows: int = 600,
                 varade_feature_maps: int = 16, varade_epochs: int = 24,
                 varade_warmup_epochs: int = 4, varade_learning_rate: float = 3e-3,
                 lstm_hidden: int = 32, kl_weight: float = 0.1, seed: int = 0) -> None:
        if n_channels < 1:
            raise ValueError("n_channels must be at least 1")
        if window < 2:
            raise ValueError("window must be at least 2")
        self.n_channels = n_channels
        self.window = window
        self.neural_epochs = neural_epochs
        self.max_train_windows = max_train_windows
        self.varade_feature_maps = varade_feature_maps
        self.varade_epochs = varade_epochs
        self.varade_warmup_epochs = varade_warmup_epochs
        self.varade_learning_rate = varade_learning_rate
        self.lstm_hidden = lstm_hidden
        self.kl_weight = kl_weight
        self.seed = seed

    # ------------------------------------------------------------------ #
    # Config constructors (shared by the builders and the pipeline bridge)
    # ------------------------------------------------------------------ #
    def varade_configs(self) -> "Tuple[VaradeConfig, TrainingConfig]":
        config = VaradeConfig(
            n_channels=self.n_channels,
            window=self.window,
            base_feature_maps=self.varade_feature_maps,
            kl_weight=self.kl_weight,
        )
        # VARADE needs the variational phase to actually learn the
        # context-dependent variance; its per-epoch cost is small, so it gets
        # a larger epoch budget than the other neural models.
        training = TrainingConfig(
            learning_rate=self.varade_learning_rate,
            epochs=self.varade_epochs,
            mean_warmup_epochs=self.varade_warmup_epochs,
            batch_size=32,
            max_train_windows=max(self.max_train_windows, 1200),
            seed=self.seed,
        )
        return config, training

    def ar_lstm_config(self) -> ARLSTMConfig:
        # The recurrent baseline is run with a shorter context than the
        # convolutional models (sequential processing makes a full window
        # prohibitively slow in pure Python); its score rule is unchanged.
        return ARLSTMConfig(
            n_channels=self.n_channels,
            window=min(self.window, 16),
            hidden_size=self.lstm_hidden,
            num_layers=2,
            fc_size=self.lstm_hidden * 2,
            epochs=self.neural_epochs,
            max_train_windows=min(self.max_train_windows, 300),
            seed=self.seed,
        )

    def autoencoder_config(self) -> AutoencoderConfig:
        return AutoencoderConfig(
            n_channels=self.n_channels,
            window=self.window,
            base_feature_maps=self.varade_feature_maps,
            latent_feature_maps=self.varade_feature_maps * 2,
            epochs=self.neural_epochs,
            max_train_windows=self.max_train_windows,
            seed=self.seed,
        )

    def gbrf_config(self) -> GBRFConfig:
        return GBRFConfig(
            n_channels=self.n_channels,
            window=self.window,
            n_estimators=30,
            context_samples=4,
            max_train_windows=min(self.max_train_windows, 400),
            seed=self.seed,
        )

    def knn_config(self) -> KNNConfig:
        return KNNConfig(n_channels=self.n_channels, seed=self.seed)

    def isolation_forest_config(self) -> IsolationForestConfig:
        return IsolationForestConfig(n_channels=self.n_channels, seed=self.seed)

    #: display name -> (config-builder, detector-builder) method names; the
    #: one dispatch table behind both :meth:`specs` and
    #: :meth:`deployment_spec`, so the legacy and pipeline paths cannot
    #: drift apart when a detector is added or renamed.
    _BUILDERS = {
        "AR-LSTM": ("ar_lstm_config", "build_ar_lstm"),
        "GBRF": ("gbrf_config", "build_gbrf"),
        "AE": ("autoencoder_config", "build_autoencoder"),
        "kNN": ("knn_config", "build_knn"),
        "Isolation Forest": ("isolation_forest_config", "build_isolation_forest"),
        "VARADE": ("varade_configs", "build_varade"),
    }

    # ------------------------------------------------------------------ #
    # Individual constructors
    # ------------------------------------------------------------------ #
    def build_varade(self) -> VaradeDetector:
        return VaradeDetector(*self.varade_configs())

    def build_ar_lstm(self) -> ARLSTMDetector:
        return ARLSTMDetector(self.ar_lstm_config())

    def build_autoencoder(self) -> AutoencoderDetector:
        return AutoencoderDetector(self.autoencoder_config())

    def build_gbrf(self) -> GBRFDetector:
        return GBRFDetector(self.gbrf_config())

    def build_knn(self) -> KNNDetector:
        return KNNDetector(self.knn_config())

    def build_isolation_forest(self) -> IsolationForestDetector:
        return IsolationForestDetector(self.isolation_forest_config())

    # ------------------------------------------------------------------ #
    # Bridge to the declarative pipeline
    # ------------------------------------------------------------------ #
    def deployment_spec(self, name: str, **spec_kwargs) -> "DeploymentSpec":
        """The :class:`repro.pipeline.DeploymentSpec` equivalent of one entry.

        ``Pipeline.from_spec(registry.deployment_spec(name)).build_detector()``
        constructs exactly the detector ``registry.specs([name])[0].build()``
        would -- same config dataclass, same seed -- so harnesses migrating
        to the pipeline keep bit-identical scores.  Extra ``spec_kwargs``
        (``calibration=``, ``quantization=``, ...) are forwarded to the
        spec.
        """
        from dataclasses import asdict

        # Imported lazily: repro.pipeline layers on top of the baselines
        # package, not the other way around.
        from ..pipeline import DETECTORS, DeploymentSpec
        from ..pipeline import DetectorSpec as PipelineDetectorSpec

        if name not in self._BUILDERS:
            raise KeyError(f"unknown detector names: [{name!r}]")
        kind = DETECTORS.kind_for_display_name(name)
        make_configs = getattr(self, self._BUILDERS[name][0])
        training = None
        if name == "VARADE":
            config, training_config = make_configs()
            training = asdict(training_config)
        else:
            config = make_configs()
        return DeploymentSpec(
            detector=PipelineDetectorSpec(kind=kind, params=asdict(config),
                                          training=training),
            seed=self.seed,
            **spec_kwargs,
        )

    # ------------------------------------------------------------------ #
    # Collections
    # ------------------------------------------------------------------ #
    def specs(self, include: Optional[List[str]] = None) -> List[DetectorSpec]:
        """Constructor specs for the requested detectors (default: all six)."""
        constructors: Dict[str, Callable[[], AnomalyDetector]] = {
            name: getattr(self, build_attr)
            for name, (_, build_attr) in self._BUILDERS.items()
        }
        names = list(DETECTOR_NAMES) if include is None else list(include)
        unknown = [name for name in names if name not in constructors]
        if unknown:
            raise KeyError(f"unknown detector names: {unknown}")
        return [DetectorSpec(name=name, build=constructors[name]) for name in names]

    def build_all(self, include: Optional[List[str]] = None) -> Dict[str, AnomalyDetector]:
        """Instantiate the requested detectors keyed by name."""
        return {spec.name: spec.build() for spec in self.specs(include)}
