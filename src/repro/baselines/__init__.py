"""Baseline anomaly detectors benchmarked against VARADE in the paper:
AR-LSTM, GBRF, convolutional auto-encoder, kNN and Isolation Forest.
"""

from .ar_lstm import ARLSTMConfig, ARLSTMDetector
from .autoencoder import AutoencoderConfig, AutoencoderDetector
from .gbrf import GBRFConfig, GBRFDetector
from .isolation_forest import IsolationForestConfig, IsolationForestDetector
from .knn import KNNConfig, KNNDetector
from .registry import DETECTOR_NAMES, DetectorRegistry, DetectorSpec

__all__ = [
    "ARLSTMConfig",
    "ARLSTMDetector",
    "AutoencoderConfig",
    "AutoencoderDetector",
    "GBRFConfig",
    "GBRFDetector",
    "IsolationForestConfig",
    "IsolationForestDetector",
    "KNNConfig",
    "KNNDetector",
    "DETECTOR_NAMES",
    "DetectorRegistry",
    "DetectorSpec",
]
