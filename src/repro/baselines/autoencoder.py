"""Convolutional auto-encoder (AE) baseline.

The paper's reconstruction-based baseline is a convolutional auto-encoder
built from six ResNet blocks; the anomaly score is the euclidean norm of the
difference between the reconstructed and the observed values (Section 3.3).
The encoder halves the time dimension with strided residual blocks and the
decoder mirrors it with transposed convolutions; the score of a sample is
the reconstruction error at the final (most recent) time step of its window,
which keeps the score causally aligned with the stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

import numpy as np

from .. import nn
from ..core.detector import AnomalyDetector, InferenceCost
from ..data.windowing import WindowDataset

__all__ = ["AutoencoderConfig", "AutoencoderDetector"]


@dataclass(frozen=True)
class AutoencoderConfig:
    """Architecture and training hyper-parameters of the AE baseline."""

    n_channels: int
    window: int = 32
    base_feature_maps: int = 16
    n_blocks: int = 6
    latent_feature_maps: int = 32
    learning_rate: float = 1e-3
    epochs: int = 3
    batch_size: int = 32
    max_train_windows: int = 600
    gradient_clip: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ValueError("n_channels must be at least 1")
        if self.n_blocks < 2 or self.n_blocks % 2 != 0:
            raise ValueError("n_blocks must be an even number >= 2")
        downsampling = 2 ** (self.n_blocks // 2)
        if self.window < downsampling or self.window % downsampling != 0:
            raise ValueError(
                f"window must be a multiple of {downsampling} so the decoder can "
                "mirror the encoder exactly"
            )

    @classmethod
    def paper(cls, n_channels: int = 86) -> "AutoencoderConfig":
        """Full-scale configuration: 6 ResNet blocks, lr 1e-5, window 512."""
        return cls(n_channels=n_channels, window=512, base_feature_maps=64,
                   latent_feature_maps=128, learning_rate=1e-5, epochs=50,
                   max_train_windows=1_000_000)


class _ConvAutoencoder(nn.Module):
    """Symmetric residual encoder / transposed-convolution decoder."""

    def __init__(self, config: AutoencoderConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        half_blocks = config.n_blocks // 2
        feature_maps = config.base_feature_maps

        encoder_layers: List[nn.Module] = []
        in_channels = config.n_channels
        for block in range(half_blocks):
            out_channels = config.latent_feature_maps if block == half_blocks - 1 else feature_maps
            encoder_layers.append(
                nn.ResidualBlock1d(in_channels, out_channels, kernel_size=3, stride=2, rng=rng)
            )
            in_channels = out_channels
        self.encoder = nn.Sequential(*encoder_layers)

        decoder_layers: List[nn.Module] = []
        for block in range(half_blocks):
            last = block == half_blocks - 1
            out_channels = config.n_channels if last else feature_maps
            decoder_layers.append(nn.ConvTranspose1d(in_channels, out_channels,
                                                     kernel_size=4, stride=2, padding=1, rng=rng))
            if not last:
                decoder_layers.append(nn.ReLU())
            in_channels = out_channels
        self.decoder = nn.Sequential(*decoder_layers)

    def forward(self, windows: nn.Tensor) -> nn.Tensor:
        """Reconstruct a (batch, channels, window) input."""
        latent = self.encoder(windows)
        return self.decoder(latent)


class AutoencoderDetector(AnomalyDetector):
    """Reconstruction-based detector scored by the reconstruction error."""

    name = "AE"
    scores_current_sample = True

    def __init__(self, config: AutoencoderConfig) -> None:
        super().__init__(window=config.window)
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.network = _ConvAutoencoder(config, rng=self._rng)

    # -- training ------------------------------------------------------- #
    def fit(self, train_data: np.ndarray) -> "AutoencoderDetector":
        train_data = np.asarray(train_data, dtype=np.float64)
        if train_data.ndim != 2 or train_data.shape[1] != self.config.n_channels:
            raise ValueError(f"expected training data of shape (T, {self.config.n_channels})")
        start = time.perf_counter()
        dataset = WindowDataset.from_stream(train_data, self.config.window, horizon=1) \
            .subsample(self.config.max_train_windows, rng=self._rng)
        optimizer = nn.Adam(self.network.parameters(), lr=self.config.learning_rate)
        self.network.train()
        for _ in range(self.config.epochs):
            losses: List[float] = []
            for contexts, _ in dataset.batches(self.config.batch_size, shuffle=True,
                                               rng=self._rng):
                inputs = nn.Tensor(np.transpose(contexts, (0, 2, 1)))
                reconstruction = self.network(inputs)
                loss = nn.mse_loss(reconstruction, inputs.detach())
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(self.network.parameters(), self.config.gradient_clip)
                optimizer.step()
                losses.append(loss.item())
            self.history.epoch_losses.append(float(np.mean(losses)))
        self.network.eval()
        self.history.wall_time_s = time.perf_counter() - start
        self._mark_fitted()
        return self

    # -- scoring -------------------------------------------------------- #
    def reconstruct(self, windows: np.ndarray) -> np.ndarray:
        """Reconstruct a batch of (window, channels) contexts."""
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim == 2:
            windows = windows[None, ...]
        with nn.no_grad():
            inputs = nn.Tensor(np.transpose(windows, (0, 2, 1)))
            outputs = self.network(inputs)
        return np.transpose(outputs.numpy(), (0, 2, 1))

    def score_window(self, window: np.ndarray, target: np.ndarray) -> float:
        """Reconstruction error of the most recent sample in the window.

        Delegates to :meth:`score_windows_batch` (one shared path).
        """
        return float(self.score_windows_batch(
            np.asarray(window, dtype=np.float64)[None, ...],
            np.asarray(target, dtype=np.float64).reshape(1, -1),
        )[0])

    def score_windows_batch(self, windows: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Vectorized reconstruction-error scoring for a batch of windows."""
        self._check_fitted()
        windows, _ = self._validate_batch(windows, targets)
        reconstruction = self.reconstruct(windows)
        errors = reconstruction[:, -1, :] - windows[:, -1, :]
        return np.linalg.norm(errors, axis=1)

    # -- cost ----------------------------------------------------------- #
    def inference_cost(self) -> InferenceCost:
        profile = nn.profile_model(self.network.encoder,
                                   (self.config.n_channels, self.config.window))
        latent_length = self.config.window // (2 ** (self.config.n_blocks // 2))
        decoder_profile = nn.profile_model(self.network.decoder,
                                           (self.config.latent_feature_maps, latent_length))
        # Residual blocks issue many small kernels (convolutions, shortcut
        # projections, element-wise adds, activations) over full-length
        # activations, which is what makes the AE the slowest neural model on
        # the boards despite a FLOP count comparable to VARADE's.
        launches = 20.0 * self.config.n_blocks
        return InferenceCost(
            flops=float(profile.total_flops + decoder_profile.total_flops),
            parameter_bytes=float(self.network.num_parameters() * 4),
            activation_bytes=float(profile.total_activation_bytes
                                   + decoder_profile.total_activation_bytes),
            gpu_fraction=0.9,
            parallel_efficiency=0.7,
            n_kernel_launches=launches,
        )
