"""``python -m repro`` -- the reproducible deployment pipeline CLI.

Drives :class:`repro.pipeline.Pipeline` end to end from the command line, so
an edge deployment is reproducible from one spec file and a handful of
commands that share a working directory::

    python -m repro train    --spec spec.json --workdir runs/cell-7
    python -m repro quantize --workdir runs/cell-7
    python -m repro package  --workdir runs/cell-7
    python -m repro stream   --workdir runs/cell-7
    python -m repro bench    --workdir runs/cell-7
    python -m repro serve    --workdir runs/cell-7 --port 7007

Layout of the working directory:

* ``spec.json``        -- the deployment spec (copied/written by ``train``);
* ``detector/``        -- the fitted + calibrated float artifact;
* ``detector-int8/``   -- the int8 artifact (written by ``quantize``);
* ``package/``         -- the final deployable artifact (``package``), int8
  when one exists, with the spec embedded in its manifest;
* ``package.fingerprint`` -- the deterministic content fingerprint of the
  package (:func:`repro.serialize.artifact_fingerprint`).

``train --fast`` uses a built-in tiny synthetic spec (seconds on a laptop
CPU), which is what the CI smoke job runs on every push.  All stages are
deterministic in the spec's master ``seed``: re-running ``train`` +
``package`` from the same spec reproduces the same fingerprint.
"""

from __future__ import annotations

import argparse
import dataclasses
import shutil
import sys
from pathlib import Path
from typing import Any, List, Optional

import numpy as np

from .pipeline import (CalibrationSpec, DataSpec, DeploymentSpec, DetectorSpec,
                       Pipeline, PipelineStageError, QuantizationSpec,
                       RuntimeSpec, ServiceSpec, SpecError)
from .lifecycle import LifecycleError
from .serialize import MANIFEST_NAME, SerializationError, artifact_fingerprint

__all__ = ["main", "fast_spec"]

SPEC_NAME = "spec.json"
FLOAT_ARTIFACT = "detector"
INT8_ARTIFACT = "detector-int8"
PACKAGE_DIR = "package"
FINGERPRINT_NAME = "package.fingerprint"


class CLIUsageError(Exception):
    """A user-facing CLI mistake (missing file/flag); exits 2 like SpecError."""


def _drop_stale(workdir: Path, *names: str) -> None:
    """Remove derived artifacts a stage has just made stale."""
    for name in names:
        stale = workdir / name
        if stale.is_dir():
            shutil.rmtree(stale)
            print(f"removed stale {stale}/")
    (workdir / FINGERPRINT_NAME).unlink(missing_ok=True)


def fast_spec(seed: int = 0) -> DeploymentSpec:
    """The built-in tiny synthetic spec behind ``train --fast``."""
    return DeploymentSpec(
        detector=DetectorSpec(
            kind="varade",
            params={"n_channels": 4, "window": 16, "base_feature_maps": 4},
            training={"epochs": 2, "mean_warmup_epochs": 1,
                      "variance_finetune_epochs": 2, "learning_rate": 3e-3,
                      "max_train_windows": 150},
        ),
        data=DataSpec(source="synthetic",
                      params={"n_channels": 4, "train_samples": 400,
                              "test_samples": 400}),
        calibration=CalibrationSpec(method="quantile", quantile=0.995),
        service=ServiceSpec(max_batch=16, max_delay_ms=5.0),
        runtime=RuntimeSpec(sample_rate_hz=50.0,
                            devices=("Jetson Xavier NX", "Jetson AGX Orin")),
        seed=seed,
    )


# --------------------------------------------------------------------------- #
# Shared helpers
# --------------------------------------------------------------------------- #
def _load_spec(workdir: Path) -> DeploymentSpec:
    spec_path = workdir / SPEC_NAME
    if not spec_path.is_file():
        raise CLIUsageError(
            f"{spec_path} not found; run `repro train` in this "
            f"workdir first (or pass --workdir)"
        )
    return DeploymentSpec.load(spec_path)


def _build_dataset(spec: DeploymentSpec) -> Any:
    if spec.data is None:
        raise CLIUsageError(
            "the spec has no 'data' entry; the CLI stages need one to "
            "build the training/replay streams"
        )
    return spec.data.build(spec.seed)


def _serving_artifact(workdir: Path, prefer_package: bool = False) -> Path:
    """The artifact that deploys.

    ``prefer_package`` picks the packaged directory when one exists (the
    ``stream``/``bench`` stages replay what was shipped); otherwise the int8
    artifact wins over the float one.
    """
    if prefer_package:
        package = workdir / PACKAGE_DIR
        if (package / MANIFEST_NAME).is_file():
            return package
    int8 = workdir / INT8_ARTIFACT
    if (int8 / MANIFEST_NAME).is_file():
        return int8
    return workdir / FLOAT_ARTIFACT


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #
def _cmd_train(args: argparse.Namespace) -> int:
    workdir: Path = args.workdir
    if args.fast:
        spec = fast_spec(seed=args.seed if args.seed is not None else 0)
    elif args.spec is not None:
        if not args.spec.is_file():
            raise CLIUsageError(f"spec file {args.spec} not found")
        spec = DeploymentSpec.load(args.spec)
        if args.seed is not None:
            spec = dataclasses.replace(spec, seed=args.seed)
    else:
        raise CLIUsageError("train needs --spec FILE or --fast")

    dataset = _build_dataset(spec)
    print(f"train: kind={spec.detector.kind} seed={spec.seed} "
          f"data={spec.data.source} "
          f"train_samples={np.asarray(dataset.train).shape[0]}")
    pipeline = Pipeline.from_spec(spec)
    pipeline.fit(dataset.train)
    pipeline.calibrate()
    detector = pipeline.detector
    assert detector.threshold is not None
    loss = detector.history.final_loss
    loss_part = f", final loss {loss}" if loss is not None else ""
    print(f"train: fitted {detector.name} in "
          f"{detector.history.wall_time_s:.1f}s{loss_part}, threshold "
          f"{detector.threshold.threshold:.6g} "
          f"({detector.threshold.method}, {detector.threshold.parameter})")

    workdir.mkdir(parents=True, exist_ok=True)
    spec.save(workdir / SPEC_NAME)
    pipeline.package(workdir / FLOAT_ARTIFACT, overwrite=True)
    # Derived artifacts from a previous run no longer match the new weights;
    # drop them so a later `quantize`/`package`/`stream` cannot silently
    # serve them.
    _drop_stale(workdir, INT8_ARTIFACT, PACKAGE_DIR)
    print(f"train: wrote {workdir / SPEC_NAME} and {workdir / FLOAT_ARTIFACT}/")
    return 0


def _cmd_quantize(args: argparse.Namespace) -> int:
    workdir: Path = args.workdir
    spec = _load_spec(workdir)
    if args.headroom is not None:
        spec = dataclasses.replace(
            spec, quantization=QuantizationSpec(headroom=args.headroom))
    elif spec.quantization is None:
        spec = dataclasses.replace(spec, quantization=QuantizationSpec())
    pipeline = Pipeline.load(workdir / FLOAT_ARTIFACT)
    # The refreshed spec may legitimately differ in its quantization (and
    # other post-training) entries, but training-relevant edits would make
    # the packaged spec lie about the weights it ships with.
    for field_name in ("detector", "data", "calibration", "seed"):
        if getattr(spec, field_name) != getattr(pipeline.spec, field_name):
            raise CLIUsageError(
                f"spec.json {field_name!r} differs from the spec the float "
                f"artifact was trained with; re-run `repro train` before "
                f"quantizing"
            )
    # The loaded artifact may predate the quantization entry; the refreshed
    # spec governs this stage and is re-saved below.
    pipeline.spec = spec

    dataset = _build_dataset(spec)
    try:
        pipeline.quantize(np.asarray(dataset.train, dtype=np.float64))
    except NotImplementedError as error:
        # AnomalyDetector.quantize's feature-test contract: detectors
        # without a quantizable graph raise NotImplementedError.
        raise CLIUsageError(
            f"{pipeline.detector.name} does not support int8 quantization: "
            f"{error}"
        ) from error
    quantized = pipeline.quantized
    # package() serves the quantized detector once one exists and embeds the
    # spec -- one packaging code path for both the int8 and final artifacts.
    pipeline.package(workdir / INT8_ARTIFACT, overwrite=True)
    # A package built before quantization no longer reflects what should
    # deploy; drop it so `stream`/`bench` fall back to the fresh int8 artifact.
    _drop_stale(workdir, PACKAGE_DIR)
    spec.save(workdir / SPEC_NAME)
    float_kb = pipeline.detector.inference_cost().parameter_bytes / 1e3
    int8_kb = quantized.inference_cost().parameter_bytes / 1e3
    print(f"quantize: {quantized.name} written to {workdir / INT8_ARTIFACT}/ "
          f"({float_kb:.0f} KB float -> {int8_kb:.0f} KB int8, "
          f"headroom {spec.quantization.headroom})")
    return 0


def _cmd_package(args: argparse.Namespace) -> int:
    workdir: Path = args.workdir
    source = _serving_artifact(workdir)
    out: Path = args.out if args.out is not None else workdir / PACKAGE_DIR
    pipeline = Pipeline.load(source)
    if pipeline.spec.quantization is not None and source.name != INT8_ARTIFACT:
        # Packaging float weights under a spec that declares int8 would make
        # the artifact manifest lie about what it ships.
        raise CLIUsageError(
            "the spec enables int8 quantization but no quantized artifact "
            "exists; run `repro quantize` first (or drop the spec's "
            "'quantization' entry)"
        )
    pipeline.package(out, overwrite=True)
    fingerprint = artifact_fingerprint(out)
    # The workdir fingerprint file describes the workdir's own package/;
    # with --out the artifact lives elsewhere, so only print it.
    if args.out is None:
        (workdir / FINGERPRINT_NAME).write_text(fingerprint + "\n",
                                                encoding="utf-8")
    print(f"package: {source.name} -> {out}/ "
          f"(serving {pipeline.serving_detector.name})")
    print(f"package: fingerprint {fingerprint}")
    return 0


def _load_serving_pipeline(workdir: Path) -> Pipeline:
    """Load what was shipped, warning when spec.json has since been edited.

    The replay stages deliberately run the spec *embedded in the artifact*
    (that is what deploys); a diverged workdir spec.json means the user
    edited it without re-running the stages that would apply the edit.
    """
    source = _serving_artifact(workdir, prefer_package=True)
    pipeline = Pipeline.load(source)
    spec_path = workdir / SPEC_NAME
    if spec_path.is_file():
        try:
            workdir_spec = DeploymentSpec.load(spec_path)
        except (SpecError, OSError):
            workdir_spec = None
        if workdir_spec is not None and workdir_spec != pipeline.spec:
            print(f"note: {spec_path} differs from the spec embedded in "
                  f"{source.name}/; replaying the shipped spec (re-run "
                  f"`repro train`/`quantize`/`package` to apply the edits)",
                  file=sys.stderr)
    return pipeline


def _cmd_stream(args: argparse.Namespace) -> int:
    workdir: Path = args.workdir
    pipeline = _load_serving_pipeline(workdir)
    dataset = _build_dataset(pipeline.spec)
    result = pipeline.deploy_stream(dataset.test, labels=dataset.test_labels,
                                    max_samples=args.max_samples)
    detected = int(result.alarms[np.asarray(dataset.test_labels) == 1].sum())
    false_alarms = int(result.alarms[np.asarray(dataset.test_labels) == 0].sum())
    print(f"stream: {pipeline.serving_detector.name} replayed "
          f"{result.scores.shape[0]} samples, scored {result.samples_scored} "
          f"at {result.host_inference_hz:.1f} Hz host rate")
    print(f"stream: {detected} anomalous samples alarmed, "
          f"{false_alarms} false alarms, "
          f"{len(result.adaptation_events)} adaptation events")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve the packaged artifact over the wire layer (``repro serve``)."""
    import asyncio

    from .serve import (PROTOCOLS, AnomalyWireServer, ServiceConfig,
                        make_transport, write_endpoint_file)

    workdir: Path = args.workdir
    pipeline = _load_serving_pipeline(workdir)
    service_spec = pipeline.spec.service
    cluster_spec = None if service_spec is None else service_spec.cluster
    workers = args.workers
    if workers is None and cluster_spec is not None:
        workers = cluster_spec.workers
    if (workers is not None and workers > 1) or args.tenant:
        return _cmd_serve_cluster(args, workdir, pipeline,
                                  workers if workers is not None else 2)
    overrides = {}
    for name in ("max_batch", "max_delay_ms", "max_queue", "backpressure",
                 "trace_events"):
        value = getattr(args, name)
        if value is not None:
            overrides[name] = value
    if args.no_incremental:
        overrides["incremental"] = False

    def knob(flag, spec_value, default):
        if flag is not None:
            return flag
        if service_spec is not None:
            return spec_value
        return default

    metrics_port = knob(args.metrics_port,
                        getattr(service_spec, "metrics_port", None), None)
    alarm_log = knob(args.alarm_log,
                     getattr(service_spec, "alarm_log", None), None)
    # A scrape port or a trace dump needs the registry/ring behind it.
    if args.observability or metrics_port is not None \
            or args.trace_out is not None:
        overrides["observability"] = True
    if service_spec is not None:
        config = service_spec.config(**overrides)
    else:
        config = ServiceConfig(**overrides)

    host = knob(args.host, getattr(service_spec, "host", None), "127.0.0.1")
    port = knob(args.port, getattr(service_spec, "port", None), 7007)
    transport_kind = knob(args.transport,
                          getattr(service_spec, "transport", None), "tcp")
    uds_path = knob(args.uds_path,
                    getattr(service_spec, "uds_path", None), None)
    protocol = knob(args.protocol,
                    getattr(service_spec, "protocol", None), "auto")
    protocols = PROTOCOLS if protocol == "auto" else (protocol,)
    try:
        transport = make_transport(transport_kind, host=host, port=port,
                                   uds_path=uds_path)
    except (ValueError, RuntimeError) as error:
        raise CLIUsageError(str(error)) from error

    alarm_sinks = []
    if alarm_log is not None:
        from .obs import JsonlAlarmSink

        alarm_sinks.append(JsonlAlarmSink(alarm_log))
    service = pipeline.deploy_service(config=config, alarm_sinks=alarm_sinks)
    server = AnomalyWireServer(service, transport, protocols=protocols)
    detector = pipeline.serving_detector
    threshold = getattr(detector, "threshold", None)
    print(f"serve: {detector.name} (window {detector.window}, threshold "
          f"{'none' if threshold is None else format(threshold.threshold, '.6g')}) "
          f"batch<= {config.max_batch}, delay<= {config.max_delay_ms}ms, "
          f"queue<= {config.max_queue} [{config.backpressure}]"
          f"{', incremental' if config.incremental else ''}")

    async def _serve() -> None:
        ready: "asyncio.Event" = asyncio.Event()
        task = asyncio.create_task(
            server.serve_forever(port_file=args.port_file, ready=ready))
        # Wait for the listener OR an early failure (e.g. the port is taken):
        # waiting on `ready` alone would hang forever on a bind error.
        ready_task = asyncio.create_task(ready.wait())
        try:
            await asyncio.wait({task, ready_task},
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            ready_task.cancel()
        if task.done():
            await task        # propagate the startup failure
            return
        print(f"serve: listening on "
              f"{transport.describe() if transport_kind == 'uds' else f'{host}:{server.bound_port}'} "
              f"(protocols: {'/'.join(protocols)}; "
              f"ops: open/push/close/stats/ping/metrics/trace/shutdown)",
              flush=True)
        httpd = None
        if metrics_port is not None:
            from .obs import ObservabilityHTTPServer

            def _health() -> dict:
                return {
                    "status": "ok",
                    "fingerprint": service.artifact_fingerprint,
                    "detector": getattr(service.detector, "name",
                                        type(service.detector).__name__),
                    "live_sessions": len(service.sessions),
                }

            httpd = ObservabilityHTTPServer(
                metrics=service.metrics_text,
                trace=(service.trace_export_json
                       if config.trace_events > 0 else None),
                health=_health,
                host=host, port=metrics_port)
            bound = await httpd.start()
            if args.metrics_port_file is not None:
                # Atomic write-then-rename: a poller never reads a
                # half-written port number.
                write_endpoint_file(args.metrics_port_file, f"{bound}\n")
            print(f"serve: metrics on http://{host}:{bound}/metrics",
                  flush=True)
        if args.max_seconds is not None:
            async def _deadline() -> None:
                await asyncio.sleep(args.max_seconds)
                server.request_stop()
            asyncio.create_task(_deadline())
        try:
            await task
        finally:
            if httpd is not None:
                await httpd.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    except OSError as error:
        raise CLIUsageError(
            f"cannot serve on {transport.describe()}: {error}") from error
    finally:
        # Dump whatever the bounded trace ring holds, even on ^C, then
        # release the CLI-owned alarm sinks.
        if args.trace_out is not None and service.observability is not None \
                and service.observability.tracer is not None:
            service.observability.tracer.write(args.trace_out)
            print(f"serve: trace written to {args.trace_out}")
        for sink in alarm_sinks:
            sink.close()
    print("serve: stopped")
    return 0


def _cmd_serve_cluster(args: argparse.Namespace, workdir: Path,
                       pipeline: Pipeline, workers: int) -> int:
    """``repro serve --workers N``: shard router + worker fleet.

    Each worker is a full serving stack in its own subprocess; the router
    consistent-hash-partitions ``stream_id`` across them and proxies the
    unchanged single-server wire protocol, so clients connect to one
    endpoint exactly as before.
    """
    import asyncio

    from .cluster import (RouterConfig, ShardRouter, WorkerConfig,
                          WorkerSupervisor)
    from .serve import make_transport, write_endpoint_file

    if args.trace_out is not None or args.trace_events is not None:
        raise CLIUsageError(
            "tracing is per-worker state; --trace-out/--trace-events are "
            "not supported with --workers (use the trace op against an "
            "individual worker endpoint)")
    if args.alarm_log is not None:
        raise CLIUsageError(
            "--alarm-log runs inside a single service process and is not "
            "supported with --workers; alarm events still stream to every "
            "subscribed client connection")
    service_spec = pipeline.spec.service
    cluster_spec = None if service_spec is None else service_spec.cluster

    artifacts = {"default": _serving_artifact(workdir, prefer_package=True)}
    for entry in args.tenant or []:
        name, sep, path = entry.partition("=")
        if not sep or not name or not path:
            raise CLIUsageError(
                f"--tenant wants NAME=ARTIFACT_DIR, got {entry!r}")
        if name in artifacts:
            raise CLIUsageError(f"duplicate tenant {name!r}")
        tenant_dir = Path(path)
        if not (tenant_dir / MANIFEST_NAME).is_file():
            raise CLIUsageError(
                f"tenant {name!r}: no artifact manifest under {tenant_dir}")
        artifacts[name] = tenant_dir

    def knob(flag, spec_value, default):
        if flag is not None:
            return flag
        if service_spec is not None and spec_value is not None:
            return spec_value
        return default

    host = knob(args.host, getattr(service_spec, "host", None), "127.0.0.1")
    port = knob(args.port, getattr(service_spec, "port", None), 7007)
    transport_kind = knob(args.transport,
                          getattr(service_spec, "transport", None), "tcp")
    uds_path = knob(args.uds_path,
                    getattr(service_spec, "uds_path", None), None)
    metrics_port = knob(args.metrics_port,
                        getattr(service_spec, "metrics_port", None), None)
    try:
        transport = make_transport(transport_kind, host=host, port=port,
                                   uds_path=uds_path)
    except (ValueError, RuntimeError) as error:
        raise CLIUsageError(str(error)) from error

    worker_transport = "tcp" if cluster_spec is None \
        else cluster_spec.worker_transport
    configs = []
    for index in range(workers):
        configs.append(WorkerConfig(
            name=f"w{index}", artifacts=dict(artifacts),
            default_tenant="default", transport=worker_transport,
            max_batch=args.max_batch, max_delay_ms=args.max_delay_ms,
            max_queue=args.max_queue, backpressure=args.backpressure,
            incremental=False if args.no_incremental else None))
    router_config = RouterConfig() if cluster_spec is None \
        else cluster_spec.router_config()

    supervisor = WorkerSupervisor()
    detector = pipeline.serving_detector
    print(f"serve: {detector.name} x {workers} workers "
          f"(tenants: {'/'.join(sorted(artifacts))}; "
          f"worker transport: {worker_transport})")

    async def _serve(router: ShardRouter) -> None:
        ready: "asyncio.Event" = asyncio.Event()
        task = asyncio.create_task(
            router.serve_forever(port_file=args.port_file, ready=ready))
        ready_task = asyncio.create_task(ready.wait())
        try:
            await asyncio.wait({task, ready_task},
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            ready_task.cancel()
        if task.done():
            await task          # propagate the startup failure
            return
        print(f"serve: cluster listening on "
              f"{transport.describe() if transport_kind == 'uds' else f'{host}:{router.bound_port}'} "
              f"(1 router -> {len(supervisor.workers)} workers; ops: "
              f"open/push/close/stats/snapshot/ping/metrics/shutdown)",
              flush=True)
        httpd = None
        if metrics_port is not None:
            from .obs import ObservabilityHTTPServer

            httpd = ObservabilityHTTPServer(metrics=router.metrics_text,
                                            host=host, port=metrics_port)
            bound = await httpd.start()
            if args.metrics_port_file is not None:
                write_endpoint_file(args.metrics_port_file, f"{bound}\n")
            print(f"serve: fleet metrics on http://{host}:{bound}/metrics",
                  flush=True)
        if args.max_seconds is not None:
            async def _deadline() -> None:
                await asyncio.sleep(args.max_seconds)
                router.request_stop()
            asyncio.create_task(_deadline())
        try:
            await task
        finally:
            if httpd is not None:
                await httpd.stop()

    try:
        for config in configs:
            handle = supervisor.spawn(config)
            print(f"serve: worker {handle.name} pid {handle.pid} "
                  f"on {handle.endpoint}", flush=True)
        router = ShardRouter(supervisor, transport, config=router_config)
        asyncio.run(_serve(router))
    except KeyboardInterrupt:
        pass
    except OSError as error:
        raise CLIUsageError(
            f"cannot serve on {transport.describe()}: {error}") from error
    finally:
        supervisor.stop_all()
    print("serve: stopped")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    workdir: Path = args.workdir
    pipeline = _load_serving_pipeline(workdir)
    dataset = _build_dataset(pipeline.spec)
    report = pipeline.evaluate(dataset.test, labels=dataset.test_labels)
    print(f"bench: {report.name} on {pipeline.spec.data.source} data "
          f"(seed {pipeline.spec.seed})")
    print(f"bench: AUC-ROC {report.auc_roc:.4f}, "
          f"AP {report.average_precision:.4f} over "
          f"{report.samples_scored} scored samples")
    for device_name, metrics in pipeline.edge_estimates().items():
        print(f"bench: {device_name}: "
              f"{metrics.inference_frequency_hz:.1f} Hz, "
              f"{metrics.power_w:.2f} W, {metrics.ram_mb:.0f} MB RAM")
    return 0


def _cmd_baseline(args: argparse.Namespace) -> int:
    workdir: Path = args.workdir
    artifact = args.artifact if args.artifact is not None \
        else _serving_artifact(workdir, prefer_package=True)
    if not (Path(artifact) / MANIFEST_NAME).is_file():
        raise CLIUsageError(
            f"no packaged artifact at {artifact}; run `repro package` first")
    from .lifecycle import BASELINE_NAME

    pipeline = Pipeline.load(artifact)
    dataset = _build_dataset(pipeline.spec)
    baseline = pipeline.record_baseline(dataset.test)
    print(f"baseline: {baseline.detector} scored "
          f"{baseline.samples_scored} samples over {baseline.streams} "
          f"stream(s); alarm rate {baseline.alarm_rate:.4g}")
    print(f"baseline: wrote {Path(artifact) / BASELINE_NAME} "
          f"(artifact {baseline.fingerprint[:12]}…)")
    return 0


def _parse_endpoint(value: str) -> Any:
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise CLIUsageError(
            f"--connect needs HOST:PORT, got {value!r}")
    return host or "127.0.0.1", int(port)


def _print_report(report: dict, prefix: str = "canary") -> None:
    if "gates" not in report:           # cluster reply: one report per worker
        verdict = report.get("verdict")
        if verdict is not None:
            print(f"{prefix}: fleet verdict {verdict}")
        for worker, worker_report in sorted(
                (report.get("workers") or {}).items()):
            _print_report(worker_report, prefix=f"{prefix}[{worker}]")
        return
    print(f"{prefix}: verdict {report['verdict']} after "
          f"{report['samples']} shadow samples "
          f"({report['alarms']} alarms, {report['errors']} errors)")
    for gate in report["gates"]:
        mark = "ok" if gate["ok"] else "BREACH"
        print(f"{prefix}:   {gate['name']:<14} {gate['value']:.6g} "
              f"(limit {gate['limit']:.6g}) {mark}")


def _cmd_canary(args: argparse.Namespace) -> int:
    from .serve import TCPClient

    host, port = _parse_endpoint(args.connect)
    with TCPClient(host, port) as client:
        if args.status:
            _print_report(client.canary_status(tenant=args.tenant))
            return 0
        if args.stop:
            reply = client.canary_stop(tenant=args.tenant)
            report = reply.get("report") or reply
            print("canary: stopped")
            if isinstance(report, dict):
                _print_report(report)
            return 0
        if args.artifact is None:
            raise CLIUsageError(
                "canary needs --artifact DIR (a packaged candidate with a "
                "recorded baseline), or --status / --stop")
        reply = client.canary(
            str(args.artifact), fraction=args.fraction,
            watch=(True if args.watch else None), tenant=args.tenant)
        fingerprint = reply.get("fingerprint") or "?"
        print(f"canary: shadow-scoring candidate {fingerprint[:12]}… on "
              f"{args.fraction:.0%} of streams"
              f"{' (watcher armed on promote)' if args.watch else ''}")
    return 0


def _cmd_promote(args: argparse.Namespace) -> int:
    from .serve import TCPClient

    host, port = _parse_endpoint(args.connect)
    with TCPClient(host, port) as client:
        if args.rollback:
            result = client.rollback(reason=args.reason, tenant=args.tenant)
            fingerprint = result.get("fingerprint") or "?"
            print(f"promote: rolled back to {fingerprint[:12]}… "
                  f"({result.get('migrated_sessions', '?')} sessions "
                  f"migrated)")
            return 0
        result = client.promote(force=args.force, tenant=args.tenant)
        report = result.get("report")
        if isinstance(report, dict):
            _print_report(report, prefix="promote")
        elif result.get("workers"):
            _print_report({"workers": {
                worker: detail.get("report", {})
                for worker, detail in result["workers"].items()
                if isinstance(detail, dict)}}, prefix="promote")
        if result.get("promoted"):
            fingerprint = result.get("fingerprint") or "?"
            print(f"promote: promoted {fingerprint[:12]}… "
                  f"({result.get('migrated_sessions', '?')} sessions "
                  f"migrated)")
            return 0
        print("promote: gates held the promotion back "
              "(re-run with --force to override)")
        return 1
    return 0


# --------------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------------- #
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproducible VARADE deployment pipeline "
                    "(spec -> train -> quantize -> package -> serve).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workdir(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workdir", type=Path, default=Path("runs/default"),
                       help="pipeline working directory (default: runs/default)")

    train = sub.add_parser("train", help="fit + calibrate per the spec, "
                                         "save the float artifact")
    add_workdir(train)
    source = train.add_mutually_exclusive_group()
    source.add_argument("--spec", type=Path, help="deployment spec JSON file")
    source.add_argument("--fast", action="store_true",
                        help="use the built-in tiny synthetic spec")
    train.add_argument("--seed", type=int, default=None,
                       help="override the spec's master seed")
    train.set_defaults(func=_cmd_train)

    quantize = sub.add_parser("quantize", help="int8-quantize the trained "
                                               "float artifact")
    add_workdir(quantize)
    quantize.add_argument("--headroom", type=float, default=None,
                          help="activation-range headroom (default: spec's, "
                               "else 2.0)")
    quantize.set_defaults(func=_cmd_quantize)

    package = sub.add_parser("package", help="produce the deployable package "
                                             "(int8 artifact when present)")
    add_workdir(package)
    package.add_argument("--out", type=Path, default=None,
                         help="package output dir (default: WORKDIR/package)")
    package.set_defaults(func=_cmd_package)

    stream = sub.add_parser("stream", help="replay the spec's test stream "
                                           "through the streaming runtime")
    add_workdir(stream)
    stream.add_argument("--max-samples", type=int, default=None,
                        help="limit how many samples are scored")
    stream.set_defaults(func=_cmd_stream)

    bench = sub.add_parser("bench", help="AUC + edge estimates of the "
                                         "packaged detector")
    add_workdir(bench)
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser("serve", help="serve the packaged detector over "
                                         "the wire layer (repro.serve)")
    add_workdir(serve)
    serve.add_argument("--host", default=None,
                       help="bind address (default: spec's service.host, "
                            "else 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port, 0 = ephemeral (default: spec's "
                            "service.port, else 7007)")
    serve.add_argument("--transport", default=None, choices=("tcp", "uds"),
                       help="listener transport: TCP or a Unix-domain socket "
                            "(default: spec's service.transport, else tcp)")
    serve.add_argument("--uds-path", type=Path, default=None,
                       help="Unix socket path (required with --transport uds)")
    serve.add_argument("--protocol", default=None,
                       choices=("auto", "json", "binary"),
                       help="accepted wire protocol(s); auto negotiates "
                            "JSON vs binary per connection from its first "
                            "byte (default: spec's service.protocol, else auto)")
    serve.add_argument("--port-file", type=Path, default=None,
                       help="write the bound endpoint (TCP port or UDS path) "
                            "to this file once listening")
    serve.add_argument("--max-batch", type=int, default=None,
                       help="micro-batch size bound (default: spec's, else 32)")
    serve.add_argument("--max-delay-ms", type=float, default=None,
                       help="latency budget before a partial batch flushes "
                            "(default: spec's, else 5.0)")
    serve.add_argument("--max-queue", type=int, default=None,
                       help="per-session pending-window bound "
                            "(default: spec's, else 256)")
    serve.add_argument("--backpressure", default=None,
                       choices=("block", "drop_oldest", "reject"),
                       help="full-queue policy (default: spec's, else block)")
    serve.add_argument("--no-incremental", action="store_true",
                       help="disable the O(1)-per-sample incremental scoring "
                            "lane; sessions use batched scoring only")
    serve.add_argument("--workers", type=int, default=None,
                       help="shard across N worker subprocesses behind a "
                            "consistent-hash router (one endpoint, "
                            "unchanged protocol); default 1, or "
                            "spec.service.cluster.workers when set")
    serve.add_argument("--tenant", action="append", metavar="NAME=DIR",
                       help="serve an extra packaged artifact under tenant "
                            "NAME on every worker (repeatable; implies "
                            "cluster mode; `open` frames pick the tenant "
                            "by name or artifact fingerprint)")
    serve.add_argument("--max-seconds", type=float, default=None,
                       help="stop the server after this long (smoke flows)")
    serve.add_argument("--observability", action="store_true",
                       help="enable the repro.obs metrics registry and trace "
                            "ring (also implied by --metrics-port and "
                            "--trace-out); adds the metrics/trace wire ops")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="serve GET /metrics (Prometheus text format), "
                            "/trace and /healthz on this plain-HTTP port; "
                            "0 = ephemeral (default: spec's "
                            "service.metrics_port, else off)")
    serve.add_argument("--metrics-port-file", type=Path, default=None,
                       help="write the bound metrics port to this file once "
                            "scrapeable (for --metrics-port 0)")
    serve.add_argument("--trace-events", type=int, default=None,
                       help="bound the Chrome-trace event ring; 0 disables "
                            "tracing (default: spec's, else 4096)")
    serve.add_argument("--trace-out", type=Path, default=None,
                       help="write the Chrome/Perfetto trace JSON here on "
                            "shutdown (implies --observability; open at "
                            "https://ui.perfetto.dev)")
    serve.add_argument("--alarm-log", type=Path, default=None,
                       help="append every alarm as one JSON line to this "
                            "file (default: spec's service.alarm_log, "
                            "else off)")
    serve.set_defaults(func=_cmd_serve)

    baseline = sub.add_parser(
        "baseline", help="record the packaged artifact's golden baseline "
                         "(score/latency/alarm statistics) from the spec's "
                         "test traffic")
    add_workdir(baseline)
    baseline.add_argument("--artifact", type=Path, default=None,
                          help="packaged artifact directory (default: the "
                               "workdir's serving artifact)")
    baseline.set_defaults(func=_cmd_baseline)

    canary = sub.add_parser(
        "canary", help="attach / inspect a canary on a running server "
                       "(shadow-scores a candidate on live traffic)")
    canary.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="serving endpoint to control")
    canary.add_argument("--artifact", type=Path, default=None,
                        help="candidate packaged artifact (server-side "
                             "path; needs a recorded baseline)")
    canary.add_argument("--fraction", type=float, default=0.25,
                        help="fraction of streams to shadow (default 0.25)")
    canary.add_argument("--watch", action="store_true",
                        help="arm the health meta-watcher on promotion "
                             "(auto-rollback on regression)")
    canary.add_argument("--status", action="store_true",
                        help="evaluate the attached canary's gates")
    canary.add_argument("--stop", action="store_true",
                        help="detach the canary without promoting")
    canary.add_argument("--tenant", default=None,
                        help="tenant name on a multi-tenant server")
    canary.set_defaults(func=_cmd_canary)

    promote = sub.add_parser(
        "promote", help="promote the attached canary's candidate "
                        "(zero-downtime hot-swap), or --rollback")
    promote.add_argument("--connect", required=True, metavar="HOST:PORT",
                         help="serving endpoint to control")
    promote.add_argument("--force", action="store_true",
                         help="swap even when the gates say reject")
    promote.add_argument("--rollback", action="store_true",
                         help="swap back to the pinned previous artifact")
    promote.add_argument("--reason", default="manual",
                         help="rollback reason for the audit trail")
    promote.add_argument("--tenant", default=None,
                         help="tenant name on a multi-tenant server")
    promote.set_defaults(func=_cmd_promote)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return int(args.func(args))
    except (SpecError, SerializationError, PipelineStageError,
            CLIUsageError, LifecycleError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (ConnectionError, RuntimeError) as error:
        # Wire-control commands (canary/promote) talk to a live server;
        # a refused op or a dead endpoint is a user-facing error, not a
        # traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
