"""Configuration of the VARADE model and its training loop.

The paper's full-scale configuration is a window of T = 512 samples, eight
convolutional layers (kernel size 2, stride 2, so the time dimension halves
at every layer), feature maps starting at 128 and doubling every two layers
up to 1,024, Adam with a fixed 1e-5 learning rate, and a Gaussian output
head (mean and log-variance) regularised by a KL term.

:class:`VaradeConfig` expresses that full configuration (see
:meth:`VaradeConfig.paper`) as well as the scaled-down defaults used by the
CPU-only reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["VaradeConfig", "TrainingConfig"]


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class TrainingConfig:
    """Optimisation hyper-parameters."""

    learning_rate: float = 1e-3
    epochs: int = 5
    batch_size: int = 32
    max_train_windows: int = 2000
    window_stride: int = 1
    gradient_clip: float = 5.0
    #: epochs spent fitting the mean with a plain squared-error loss before
    #: switching to the full variational objective.  The Gaussian NLL scales
    #: the mean gradient by 1/sigma^2, so letting the variance adapt before
    #: the mean is accurate stalls training (the classic heteroscedastic
    #: regression pathology); a short warm-up avoids it without changing the
    #: objective that is ultimately optimised.
    mean_warmup_epochs: int = 2
    #: epochs of a final calibration phase in which only the log-variance head
    #: is optimised (full ELBO, forecaster frozen).  With the backbone fixed,
    #: the variance head fits the context-dependent uncertainty cleanly, which
    #: is what makes "variance as anomaly score" behave as the paper describes
    #: (low variance on familiar dynamics, high variance on anything else).
    variance_finetune_epochs: int = 10
    variance_finetune_lr: float = 1e-2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.epochs < 1:
            raise ValueError("epochs must be at least 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.max_train_windows < 1:
            raise ValueError("max_train_windows must be at least 1")
        if self.window_stride < 1:
            raise ValueError("window_stride must be at least 1")
        if self.mean_warmup_epochs < 0:
            raise ValueError("mean_warmup_epochs must be non-negative")
        if self.variance_finetune_epochs < 0:
            raise ValueError("variance_finetune_epochs must be non-negative")
        if self.variance_finetune_lr <= 0:
            raise ValueError("variance_finetune_lr must be positive")

    @classmethod
    def paper(cls) -> "TrainingConfig":
        """The optimisation settings stated in the paper (Adam, lr = 1e-5)."""
        return cls(learning_rate=1e-5, epochs=50, batch_size=64,
                   max_train_windows=1_000_000, mean_warmup_epochs=5)


@dataclass(frozen=True)
class VaradeConfig:
    """Architecture and loss hyper-parameters of VARADE."""

    n_channels: int = 86
    window: int = 64
    base_feature_maps: int = 16
    kl_weight: float = 0.1
    feature_map_doubling_period: int = 2
    #: initial bias of the log-variance head (log of the initial predicted
    #: variance); the weights of that head start at zero so the variance is
    #: context independent until the data says otherwise.
    initial_log_var: float = -2.0
    #: parameterise the predicted mean as ``last observed sample + delta``
    #: (the linear head predicts the change).  The paper's figure shows a
    #: plain linear projection; predicting the increment is an equivalent
    #: reparameterisation that reaches a good forecast within the small
    #: training budget of the CPU-only reproduction, which in turn lets the
    #: variance head learn the uncertainty structure the anomaly score needs.
    predict_delta: bool = True

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ValueError("n_channels must be at least 1")
        if not _is_power_of_two(self.window) or self.window < 4:
            raise ValueError(
                "window must be a power of two >= 4 so stride-2 convolutions "
                "can reduce the time dimension down to 2 before the linear head"
            )
        if self.base_feature_maps < 1:
            raise ValueError("base_feature_maps must be at least 1")
        if self.kl_weight < 0:
            raise ValueError("kl_weight must be non-negative")
        if self.feature_map_doubling_period < 1:
            raise ValueError("feature_map_doubling_period must be at least 1")

    @property
    def n_layers(self) -> int:
        """Number of convolutional layers.

        Each kernel-2 / stride-2 convolution halves the time dimension; the
        stack stops when two time steps remain, which the linear head then
        consumes.  For the paper's T = 512 this gives 8 layers, matching the
        architecture description in Section 3.1.
        """
        return int(self.window).bit_length() - 2

    @property
    def head_time_steps(self) -> int:
        """Time steps remaining after the convolutional stack (always 2)."""
        return self.window // (2 ** self.n_layers)

    def feature_map_schedule(self) -> List[int]:
        """Output feature maps of each convolutional layer.

        The count doubles every ``feature_map_doubling_period`` layers starting
        from ``base_feature_maps`` (128 -> ... -> 1024 in the paper's 8-layer
        configuration).
        """
        return [
            self.base_feature_maps * (2 ** (layer // self.feature_map_doubling_period))
            for layer in range(self.n_layers)
        ]

    @classmethod
    def paper(cls, n_channels: int = 86) -> "VaradeConfig":
        """The full-scale configuration from the paper (T=512, 128->1024 maps)."""
        return cls(n_channels=n_channels, window=512, base_feature_maps=128, kl_weight=0.1)

    @classmethod
    def edge_scaled(cls, n_channels: int, window: int = 64,
                    base_feature_maps: int = 16, kl_weight: float = 0.1) -> "VaradeConfig":
        """A reduced configuration sized for the CPU-only reproduction."""
        return cls(n_channels=n_channels, window=window,
                   base_feature_maps=base_feature_maps, kl_weight=kl_weight)
