"""The VARADE network (paper Figure 1).

The model is a causal stack of 1-D convolutions over the context window: the
current and past samples ``t_0, t_-1, ..., t_-T`` enter as a
``(batch, channels, window)`` tensor; every convolution has kernel size 2 and
stride 2 so the time dimension halves at each layer, while the number of
feature maps doubles every two layers.  After ``log2(T)`` layers the time
dimension is 1; a final linear projection produces the mean and
log-variance of the Gaussian distribution over the next sample ``t_1``.

The predicted variance is the anomaly score: the KL regulariser pushes the
model to report high variance whenever it is uncertain, which is exactly
what happens during an anomaly.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .. import nn
from .config import VaradeConfig

__all__ = ["VaradeNetwork"]


class VaradeNetwork(nn.Module):
    """Variational autoregressive convolutional forecaster."""

    def __init__(self, config: VaradeConfig, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.config = config
        rng = rng if rng is not None else np.random.default_rng(0)

        feature_maps = config.feature_map_schedule()
        layers: List[nn.Module] = []
        in_channels = config.n_channels
        for out_channels in feature_maps:
            layers.append(nn.Conv1d(in_channels, out_channels, kernel_size=2, stride=2, rng=rng))
            layers.append(nn.ReLU())
            in_channels = out_channels
        self.backbone = nn.Sequential(*layers)
        self.final_feature_maps = in_channels
        self.final_time_steps = config.head_time_steps
        # After the backbone two time steps remain; the flattened feature
        # vector is projected to (mean, log_var) for every channel.
        head_inputs = in_channels * self.final_time_steps
        self.head_mean = nn.Linear(head_inputs, config.n_channels, rng=rng)
        self.head_log_var = nn.Linear(head_inputs, config.n_channels, rng=rng)
        # Neutral initialisation of the variance head: zero weights and a
        # moderately confident bias.  The NLL objective initially pushes every
        # log-variance down along whatever feature direction the random
        # initial weights happen to point at, which (before convergence)
        # inverts the uncertainty/context relationship the detector relies on;
        # starting from a context-independent variance removes that transient
        # so the positive relationship emerges from the data itself.
        self.head_log_var.weight.data = np.zeros_like(self.head_log_var.weight.data)
        self.head_log_var.bias.data = np.full_like(
            self.head_log_var.bias.data, config.initial_log_var
        )
        # Graph-free batched inference path (reads the live weights, so it
        # stays valid across optimiser steps and load_state_dict).
        self._fast_plan = nn.FastForwardPlan(
            self.backbone,
            {"mean": self.head_mean, "log_var": self.head_log_var},
            in_channels=config.n_channels,
            in_length=config.window,
        )

    # ------------------------------------------------------------------ #
    # Forward passes
    # ------------------------------------------------------------------ #
    def forward(self, window: nn.Tensor) -> Tuple[nn.Tensor, nn.Tensor]:
        """Predict the distribution of the next sample.

        ``window`` has shape ``(batch, channels, window)``; the result is the
        pair ``(mean, log_var)`` each of shape ``(batch, channels)``.
        """
        if window.ndim != 3:
            raise ValueError("expected input of shape (batch, channels, window)")
        if window.shape[1] != self.config.n_channels:
            raise ValueError(
                f"expected {self.config.n_channels} channels, got {window.shape[1]}"
            )
        if window.shape[2] != self.config.window:
            raise ValueError(
                f"expected a window of {self.config.window} samples, got {window.shape[2]}"
            )
        features = self.backbone(window)
        flat = features.reshape(
            features.shape[0], self.final_feature_maps * self.final_time_steps
        )
        mean = self.head_mean(flat)
        if self.config.predict_delta:
            # Predict the increment over the most recent observation.
            mean = mean + window[:, :, -1]
        log_var = self.head_log_var(flat)
        # Keep the log-variance in a numerically safe range.
        log_var = log_var.clip(-10.0, 10.0)
        return mean, log_var

    def predict_distribution(self, windows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Numpy-in / numpy-out inference without building the autograd graph.

        ``windows`` has shape ``(batch, window, channels)`` (stream layout);
        it is transposed internally to channels-first.  The forward pass runs
        through the vectorized :class:`repro.nn.FastForwardPlan` -- one matmul
        per convolution into preallocated buffers -- so scoring a batch of
        windows (the multi-stream fleet path) costs barely more than scoring
        one, and a given window produces bit-identical results in any batch.
        """
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim == 2:
            windows = windows[None, ...]
        if windows.ndim != 3:
            raise ValueError("expected windows of shape (batch, window, channels)")
        if windows.shape[1] != self.config.window:
            raise ValueError(
                f"expected a window of {self.config.window} samples, got {windows.shape[1]}"
            )
        if windows.shape[2] != self.config.n_channels:
            raise ValueError(
                f"expected {self.config.n_channels} channels, got {windows.shape[2]}"
            )
        inputs = np.ascontiguousarray(np.transpose(windows, (0, 2, 1)))
        outputs = self._fast_plan.forward(inputs)
        # The plan's buffers are reused on the next call: derive fresh arrays.
        if self.config.predict_delta:
            mean = outputs["mean"] + inputs[:, :, -1]
        else:
            mean = outputs["mean"].copy()
        log_var = np.clip(outputs["log_var"], -10.0, 10.0)
        return mean, log_var

    # ------------------------------------------------------------------ #
    # Profiling hook (used by repro.nn.utils.profile_model)
    # ------------------------------------------------------------------ #
    def profile_children(self, name, input_shape, layer_profiles, profile_layer) -> None:
        """Expand the backbone and heads for FLOP / traffic accounting."""
        shape = profile_layer(self.backbone, f"{name}.backbone", input_shape, layer_profiles)
        flat_shape = (shape[0] * shape[1],)
        profile_layer(self.head_mean, f"{name}.head_mean", flat_shape, layer_profiles)
        profile_layer(self.head_log_var, f"{name}.head_log_var", flat_shape, layer_profiles)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def layer_summary(self) -> List[str]:
        """Textual description of the conv stack (used by the Figure-1 bench)."""
        lines = []
        length = self.config.window
        in_channels = self.config.n_channels
        for index, out_channels in enumerate(self.config.feature_map_schedule()):
            length = length // 2
            lines.append(
                f"conv{index + 1}: {in_channels:>4} -> {out_channels:>4} feature maps, "
                f"time {length * 2:>4} -> {length:>4}"
            )
            in_channels = out_channels
        lines.append(
            f"head: linear {in_channels * self.final_time_steps} -> "
            f"2 x {self.config.n_channels} (mean, log-variance)"
        )
        return lines
