"""Common anomaly-detector API and the VARADE detector.

Every detector in the study (VARADE and the five baselines) implements the
same contract so the evaluation harness and the edge runtime can treat them
uniformly:

* :meth:`AnomalyDetector.fit` trains on a normalised, anomaly-free stream;
* :meth:`AnomalyDetector.score_stream` scores a whole test stream and returns
  per-sample anomaly scores aligned with the stream indices;
* :meth:`AnomalyDetector.score_window` scores a single rolling context window
  (the streaming path used by the edge runtime);
* :meth:`AnomalyDetector.score_windows_batch` scores a batch of rolling
  windows in one call -- the multi-stream fleet path
  (:class:`repro.edge.MultiStreamRuntime`) gathers one window per stream and
  amortises the per-call overhead across the whole batch.  Overrides must
  return exactly the scores the :meth:`score_window` loop would, row for row;
  the parity suite in ``tests/test_edge/test_fleet_parity.py`` enforces this;
* :meth:`AnomalyDetector.inference_cost` reports the per-inference compute and
  memory-traffic profile consumed by the edge device model;
* :meth:`AnomalyDetector.calibrate_threshold` attaches a
  :class:`~repro.core.calibration.CalibratedThreshold` derived from normal
  data, which the streaming runtimes pick up automatically and
  :mod:`repro.serialize` persists alongside the weights;
* :meth:`AnomalyDetector.quantize` returns an int8 post-training-quantized
  drop-in detector for models that support it (VARADE; see
  :mod:`repro.core.quantized`).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .. import nn
from ..data.windowing import WindowDataset
from .calibration import CalibratedThreshold, ThresholdCalibrator
from .config import TrainingConfig, VaradeConfig
from .varade import VaradeNetwork

__all__ = ["InferenceCost", "ScoreResult", "AnomalyDetector", "VaradeDetector",
           "VaradeIncrementalScorer"]


@dataclass(frozen=True)
class InferenceCost:
    """Per-inference cost profile used by the edge device model.

    ``flops`` counts multiply-accumulate-style floating point operations for a
    single inference (one new sample scored), ``parameter_bytes`` the model
    state that must be read, ``activation_bytes`` the intermediate values
    written, ``gpu_fraction`` the share of the work that benefits from the GPU
    (0 = pure CPU algorithm), ``parallel_efficiency`` how well the algorithm
    saturates wide SIMD/CUDA execution (matrix products parallelise well;
    sequential tree or time-step traversals do not), ``per_call_overhead_s``
    fixed per-inference work outside the kernels (pre/post-processing), and
    ``n_kernel_launches`` the number of separate framework operations
    dispatched per inference -- on edge devices running small models, the
    per-launch overhead usually dominates the raw arithmetic.

    ``compute_dtype`` names the arithmetic the kernels run in; int8 profiles
    (``"int8"``) unlock the device's integer-throughput multiplier in the
    edge estimator in addition to their smaller ``parameter_bytes``.
    """

    flops: float
    parameter_bytes: float
    activation_bytes: float
    gpu_fraction: float = 1.0
    parallel_efficiency: float = 1.0
    per_call_overhead_s: float = 0.0
    n_kernel_launches: float = 1.0
    #: bytes of weights actually read per inference; defaults to
    #: ``parameter_bytes`` but is larger for models (LSTMs) that re-read their
    #: weights at every time step.
    weight_traffic_bytes: Optional[float] = None
    #: arithmetic dtype of the kernels ("float32" or "int8").
    compute_dtype: str = "float32"

    @property
    def memory_traffic_bytes(self) -> float:
        weights = self.parameter_bytes if self.weight_traffic_bytes is None \
            else self.weight_traffic_bytes
        return weights + self.activation_bytes


@dataclass
class ScoreResult:
    """Anomaly scores aligned with the samples of a test stream."""

    scores: np.ndarray       # (n_samples,) np.nan where no score is available
    valid_mask: np.ndarray   # (n_samples,) bool
    window: int              # context length consumed before the first score

    def valid_scores(self) -> np.ndarray:
        return self.scores[self.valid_mask]

    def aligned(self, labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return (scores, labels) restricted to the scored samples."""
        labels = np.asarray(labels)
        if labels.shape[0] != self.scores.shape[0]:
            raise ValueError("labels length must match the scored stream length")
        return self.scores[self.valid_mask], labels[self.valid_mask]


@dataclass
class TrainingHistory:
    """Loss trace recorded during :meth:`AnomalyDetector.fit`."""

    epoch_losses: List[float] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def final_loss(self) -> Optional[float]:
        return self.epoch_losses[-1] if self.epoch_losses else None


class AnomalyDetector(abc.ABC):
    """Abstract base class shared by VARADE and every baseline."""

    #: human-readable name used in tables and figures
    name: str = "detector"

    #: how scores are aligned with the stream.  Forecasting-error detectors
    #: (AR-LSTM, GBRF) score the *next* observation against their prediction,
    #: so a sample's score uses the window that precedes it.  Detectors that
    #: score the state of the window itself (VARADE's uncertainty, the AE's
    #: reconstruction error) assign the score to the *last* sample of the
    #: window, so an anomalous sample influences its own score.
    scores_current_sample: bool = False

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self.history = TrainingHistory()
        self._fitted = False
        #: calibrated decision threshold (optional deployment state).  Set by
        #: :meth:`calibrate_threshold` / :meth:`set_threshold`; the streaming
        #: runtimes use it for alarms when no explicit threshold is passed and
        #: :mod:`repro.serialize` round-trips it with the weights.
        self.threshold: Optional[CalibratedThreshold] = None
        #: optional fitted input scaler (e.g. the training
        #: :class:`~repro.data.normalization.MinMaxScaler`) carried with the
        #: deployable artifact so deployment code can apply the training
        #: normalisation (``detector.scaler.transform(raw)``) to raw sensor
        #: streams before scoring.  The scoring paths and runtimes do NOT
        #: apply it automatically -- they expect already-normalised input,
        #: exactly like :meth:`fit` received.
        self.scaler = None

    # -- training ------------------------------------------------------- #
    @abc.abstractmethod
    def fit(self, train_data: np.ndarray) -> "AnomalyDetector":
        """Train on a normalised, anomaly-free stream of shape (T, channels)."""

    # -- scoring -------------------------------------------------------- #
    @abc.abstractmethod
    def score_window(self, window: np.ndarray, target: np.ndarray) -> float:
        """Score one step: ``window`` is (window, channels), ``target`` (channels,)."""

    def score_windows_batch(self, windows: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Score a batch of rolling windows in one call.

        ``windows`` has shape ``(n, window, channels)`` and ``targets``
        ``(n, channels)``; the result is the ``(n,)`` array of scores that
        :meth:`score_window` would produce row by row.  The rows are
        independent -- they may come from different streams, which is exactly
        how :class:`repro.edge.MultiStreamRuntime` amortises per-call
        overhead across a fleet of streams.

        The default implementation loops over :meth:`score_window`; every
        detector in the study overrides it with a vectorized version that is
        bit-identical per row regardless of the batch composition.
        """
        self._check_fitted()
        windows, targets = self._validate_batch(windows, targets)
        scores = np.empty(windows.shape[0])
        for index in range(windows.shape[0]):
            scores[index] = self.score_window(windows[index], targets[index])
        return scores

    def score_stream(self, test_data: np.ndarray, batch_size: int = 256) -> ScoreResult:
        """Score every sample of a stream that has at least ``window`` history.

        Scoring is delegated to :meth:`score_windows_batch` in chunks of
        ``batch_size`` windows.
        """
        test_data = np.asarray(test_data, dtype=np.float64)
        self._check_fitted()
        n_samples = test_data.shape[0]
        scores = np.full(n_samples, np.nan)
        valid = np.zeros(n_samples, dtype=bool)
        # Window-state detectors score the last sample of the first full
        # window, so a stream of exactly `window` rows yields one score;
        # forecasters need one more row to have a target.
        min_rows = self.window if self.scores_current_sample else self.window + 1
        if n_samples < min_rows:
            return ScoreResult(scores=scores, valid_mask=valid, window=self.window)

        if self.scores_current_sample:
            from ..data.windowing import sliding_windows

            contexts = sliding_windows(test_data, self.window, stride=1)
            target_indices = np.arange(self.window - 1, n_samples)
            dataset = WindowDataset(contexts=contexts,
                                    targets=test_data[target_indices],
                                    target_indices=target_indices)
        else:
            dataset = WindowDataset.from_stream(test_data, self.window, horizon=1, stride=1)
        batch_scores = self._score_batch(dataset, batch_size=batch_size)
        scores[dataset.target_indices] = batch_scores
        valid[dataset.target_indices] = True
        return ScoreResult(scores=scores, valid_mask=valid, window=self.window)

    def _score_batch(self, dataset: WindowDataset, batch_size: int) -> np.ndarray:
        """Chunked batch scoring built on :meth:`score_windows_batch`."""
        output = np.empty(len(dataset))
        for start in range(0, len(dataset), batch_size):
            stop = min(start + batch_size, len(dataset))
            output[start:stop] = self.score_windows_batch(
                dataset.contexts[start:stop], dataset.targets[start:stop]
            )
        return output

    def incremental_scorer(self) -> Optional["VaradeIncrementalScorer"]:
        """Return a fresh per-stream incremental scorer, or ``None``.

        An incremental scorer advances one sample at a time in O(layers)
        work per sample and must produce **bit-identical** scores to
        :meth:`score_windows_batch` on the same windows -- it is a hot-path
        optimisation, never a different model.  The default is ``None``
        (no incremental path); detectors whose compute graph supports
        causal reuse (VARADE's strided conv stack, float and int8)
        override this.  Each call returns an independent scorer holding
        its own stream state, so every session gets its own.
        """
        return None

    # -- deployment state ------------------------------------------------ #
    def set_threshold(self, threshold: Optional[CalibratedThreshold]) -> "AnomalyDetector":
        """Attach (or clear) the calibrated decision threshold."""
        self.threshold = threshold
        return self

    def calibrate_threshold(self, normal_data: np.ndarray, *,
                            method: str = "quantile", quantile: float = 0.99,
                            mad_factor: float = 6.0,
                            batch_size: int = 256) -> CalibratedThreshold:
        """Calibrate and attach a decision threshold from a normal stream.

        Scores ``normal_data`` (a ``(T, channels)`` anomaly-free stream) with
        :meth:`score_stream` and derives the threshold from the resulting
        score distribution via :class:`~repro.core.calibration.ThresholdCalibrator`.
        The threshold is stored on :attr:`threshold` (picked up by the
        streaming runtimes and by :mod:`repro.serialize`) and returned.
        """
        result = self.score_stream(normal_data, batch_size=batch_size)
        calibrator = ThresholdCalibrator(method=method, quantile=quantile,
                                         mad_factor=mad_factor)
        self.threshold = calibrator.calibrate(result.valid_scores())
        return self.threshold

    # -- quantization ---------------------------------------------------- #
    def quantize(self, calibration_data: np.ndarray,
                 headroom: float = 2.0) -> "AnomalyDetector":
        """Return an int8 post-training-quantized drop-in detector.

        Only detectors with a quantizable compute graph override this;
        the default raises so callers can feature-test support.
        """
        raise NotImplementedError(
            f"{self.name} does not support post-training quantization"
        )

    # -- cost ----------------------------------------------------------- #
    @abc.abstractmethod
    def inference_cost(self) -> InferenceCost:
        """Per-inference compute/memory profile for the edge device model."""

    # -- helpers -------------------------------------------------------- #
    def _validate_batch(self, windows: np.ndarray,
                        targets: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Coerce and shape-check a ``score_windows_batch`` input pair."""
        windows = np.asarray(windows, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if windows.ndim != 3:
            raise ValueError("windows must have shape (n, window, channels)")
        if windows.shape[1] != self.window:
            raise ValueError(
                f"{self.name}: expected windows of {self.window} samples, "
                f"got {windows.shape[1]}"
            )
        if targets.ndim != 2 or targets.shape[0] != windows.shape[0]:
            raise ValueError("targets must have shape (n, channels) matching windows")
        if targets.shape[1] != windows.shape[2]:
            raise ValueError(
                f"channel mismatch: windows carry {windows.shape[2]} channels, "
                f"targets {targets.shape[1]}"
            )
        return windows, targets

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{self.name}: score called before fit()")

    def _mark_fitted(self) -> None:
        self._fitted = True


class VaradeIncrementalScorer:
    """O(1)-per-sample VARADE scoring around an incremental forward plan.

    Wraps either a float :class:`repro.nn.IncrementalForwardPlan` or an int8
    :class:`repro.nn.IncrementalQuantizedPlan` (both expose the same
    ``push`` / ``push_many`` / ``reset`` surface) and maps the ``log_var``
    head to the paper's anomaly score -- the mean predicted variance --
    with exactly the clipping and reduction the batch path applies, so an
    incremental score is bit-identical to the ``score_windows_batch`` score
    of the same window.
    """

    def __init__(self, plan) -> None:
        self._plan = plan

    @property
    def samples_seen(self) -> int:
        return self._plan.samples_seen

    @property
    def warm(self) -> bool:
        """Whether the next push falls past the warm-up prefix."""
        return self._plan.warm

    def reset(self) -> None:
        """Forget all stream state (call on any gap in the stream)."""
        self._plan.reset()

    def push(self, values: np.ndarray) -> Optional[float]:
        """Advance by one sample; return its score, ``None`` while warming."""
        heads = self._plan.push(values)
        if heads is None:
            return None
        return float(self._score_rows(heads["log_var"])[0])

    def push_many(self, samples: np.ndarray) -> np.ndarray:
        """Advance by a chunk of samples; NaN rows mark the warm-up prefix."""
        heads = self._plan.push_many(samples)
        return self._score_rows(heads["log_var"])

    @staticmethod
    def _score_rows(log_var: np.ndarray) -> np.ndarray:
        # Same ops as VaradeDetector/QuantizedVaradeDetector scoring: cast,
        # clip to the trained range, exponentiate, per-row mean.  The
        # reduction runs along contiguous rows, so its summation order --
        # and therefore its bits -- is batch-size independent; NaN warm-up
        # rows propagate to NaN scores.
        log_var = np.clip(np.asarray(log_var, dtype=np.float64), -10.0, 10.0)
        return np.exp(log_var).mean(axis=1)


class VaradeDetector(AnomalyDetector):
    """VARADE: variational autoregressive anomaly detection (the paper's method).

    The detector trains the :class:`VaradeNetwork` on normal data with the
    negative-ELBO objective (Gaussian NLL + weighted KL) and, at inference,
    uses the predicted variance -- the model's own uncertainty -- as the
    anomaly score.  The mean prediction is discarded at inference time, as in
    the paper.
    """

    name = "VARADE"
    scores_current_sample = True

    def __init__(self, config: VaradeConfig,
                 training: Optional[TrainingConfig] = None) -> None:
        super().__init__(window=config.window)
        self.config = config
        self.training = training if training is not None else TrainingConfig()
        self._rng = np.random.default_rng(self.training.seed)
        self.network = VaradeNetwork(config, rng=self._rng)
        self.optimizer: Optional[nn.Adam] = None

    # -- training ------------------------------------------------------- #
    def fit(self, train_data: np.ndarray) -> "VaradeDetector":
        train_data = np.asarray(train_data, dtype=np.float64)
        if train_data.ndim != 2 or train_data.shape[1] != self.config.n_channels:
            raise ValueError(
                f"expected training data of shape (T, {self.config.n_channels})"
            )
        start = time.perf_counter()
        dataset = WindowDataset.from_stream(
            train_data, self.config.window, horizon=1, stride=self.training.window_stride
        ).subsample(self.training.max_train_windows, rng=self._rng)

        self.optimizer = nn.Adam(self.network.parameters(), lr=self.training.learning_rate)
        self.network.train()
        for epoch in range(self.training.epochs):
            warmup = epoch < self.training.mean_warmup_epochs
            epoch_losses: List[float] = []
            for contexts, targets in dataset.batches(self.training.batch_size,
                                                     shuffle=True, rng=self._rng):
                inputs = nn.Tensor(np.transpose(contexts, (0, 2, 1)))
                target_tensor = nn.Tensor(targets)
                mean, log_var = self.network(inputs)
                if warmup:
                    # Fit the mean first; the variance head keeps its neutral
                    # initialisation until the forecasts are sensible.
                    loss = nn.mse_loss(mean, target_tensor)
                else:
                    loss = nn.elbo_loss(target_tensor, mean, log_var,
                                        kl_weight=self.config.kl_weight)
                self.optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(self.network.parameters(), self.training.gradient_clip)
                self.optimizer.step()
                epoch_losses.append(loss.item())
            self.history.epoch_losses.append(float(np.mean(epoch_losses)))

        # Variance calibration: with the forecaster frozen, fit the
        # log-variance head alone under the full ELBO so the predicted
        # variance tracks the context-dependent uncertainty (the anomaly
        # score the paper relies on).
        if self.training.variance_finetune_epochs > 0:
            head = self.network.head_log_var
            var_optimizer = nn.Adam([head.weight, head.bias],
                                    lr=self.training.variance_finetune_lr)
            for _ in range(self.training.variance_finetune_epochs):
                epoch_losses = []
                for contexts, targets in dataset.batches(self.training.batch_size,
                                                         shuffle=True, rng=self._rng):
                    inputs = nn.Tensor(np.transpose(contexts, (0, 2, 1)))
                    target_tensor = nn.Tensor(targets)
                    mean, log_var = self.network(inputs)
                    loss = nn.elbo_loss(target_tensor, mean.detach(), log_var,
                                        kl_weight=self.config.kl_weight)
                    var_optimizer.zero_grad()
                    loss.backward()
                    var_optimizer.step()
                    epoch_losses.append(loss.item())
                self.history.epoch_losses.append(float(np.mean(epoch_losses)))

        self.network.eval()
        self.history.wall_time_s = time.perf_counter() - start
        self._mark_fitted()
        return self

    # -- scoring -------------------------------------------------------- #
    def score_window(self, window: np.ndarray, target: np.ndarray) -> float:
        """Anomaly score of one step: the mean predicted variance.

        The ``target`` argument is part of the common detector API but is not
        used: VARADE scores from its own uncertainty, before the next sample
        is even observed.  Delegates to :meth:`score_windows_batch` so the
        sequential and batched paths share one code path (and therefore
        bit-identical scores).
        """
        return float(self.score_windows_batch(
            np.asarray(window, dtype=np.float64)[None, ...],
            np.asarray(target, dtype=np.float64).reshape(1, -1),
        )[0])

    def score_windows_batch(self, windows: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Vectorized variance scoring: one fast-path forward for all rows."""
        self._check_fitted()
        windows, _ = self._validate_batch(windows, targets)
        _, log_var = self.network.predict_distribution(windows)
        return np.exp(log_var).mean(axis=1)

    def incremental_scorer(self) -> Optional[VaradeIncrementalScorer]:
        """Per-stream O(1)-per-sample scorer, bit-identical to the batch path.

        Only the ``log_var`` head is evaluated (the score never uses the
        mean).  Returns ``None`` when the network's conv stack cannot be
        updated causally (padded or non-right-anchored convs) or when the
        BLAS width-class probe rejects the incremental call shapes --
        callers fall back to :meth:`score_windows_batch`.
        """
        self._check_fitted()
        try:
            plan = nn.IncrementalForwardPlan(self.network._fast_plan,
                                             heads=("log_var",))
        except (TypeError, ValueError):
            return None
        return VaradeIncrementalScorer(plan)

    def forecast(self, window: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return (mean, variance) of the next-sample distribution for one window."""
        self._check_fitted()
        mean, log_var = self.network.predict_distribution(window[None, ...])
        return mean[0], np.exp(log_var)[0]

    # -- quantization ---------------------------------------------------- #
    def quantize(self, calibration_data: np.ndarray,
                 headroom: float = 2.0) -> "AnomalyDetector":
        """Int8 post-training quantization of the fitted network.

        ``calibration_data`` is either a normal stream of shape
        ``(T, channels)`` (windowed internally) or an explicit batch of
        context windows ``(n, window, channels)``; its activation ranges,
        widened by ``headroom`` so abnormal windows do not saturate, set the
        per-tensor int8 scales.  Returns a
        :class:`~repro.core.quantized.QuantizedVaradeDetector` that serves
        the same :meth:`score_windows_batch` contract (and inherits this
        detector's calibrated threshold and scaler, if any).
        """
        from .quantized import QuantizedVaradeDetector

        self._check_fitted()
        return QuantizedVaradeDetector.from_detector(self, calibration_data,
                                                     headroom=headroom)

    # -- cost ----------------------------------------------------------- #
    def inference_cost(self) -> InferenceCost:
        profile = nn.profile_model(
            self.network, (self.config.n_channels, self.config.window)
        )
        # One convolution + one activation per layer, plus the two linear heads
        # and the flatten/clip bookkeeping.
        launches = 2.0 * self.config.n_layers + 4.0
        return InferenceCost(
            flops=float(profile.total_flops),
            parameter_bytes=float(profile.parameter_bytes),
            activation_bytes=float(profile.total_activation_bytes),
            gpu_fraction=0.95,
            parallel_efficiency=0.85,
            n_kernel_launches=launches,
        )
