"""Int8 drop-in VARADE detector built by post-training quantization.

:meth:`repro.core.detector.VaradeDetector.quantize` converts a fitted float
detector into a :class:`QuantizedVaradeDetector`: the Conv1d/Linear weights
are quantized to symmetric per-output-channel int8, activation ranges are
calibrated on representative normal windows, and inference runs through the
:class:`repro.nn.quant.QuantizedForwardPlan` int8 mirror of the float fast
path.  The result serves the exact :class:`~repro.core.detector.AnomalyDetector`
scoring contract (``score_window`` / ``score_windows_batch`` /
``score_stream``), so it drops into the streaming runtimes, the multi-stream
fleet and the serialization layer unchanged -- only ``fit`` is refused, since
the trainable graph has been discarded.

``benchmarks/bench_quantized_inference.py`` measures the float-vs-int8
throughput and score drift; ``tests/test_core/test_quantized.py`` holds the
accuracy-tolerance suite.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn.quant import IncrementalQuantizedPlan, QuantizedForwardPlan
from .config import VaradeConfig
from .detector import (AnomalyDetector, InferenceCost, TrainingHistory,
                       VaradeDetector, VaradeIncrementalScorer)

__all__ = ["QuantizedVaradeDetector", "coerce_calibration_windows"]

#: calibration needs representative ranges, not every window; long streams
#: are thinned to this many evenly spaced windows before the range scan.
_MAX_CALIBRATION_WINDOWS = 1024


def coerce_calibration_windows(data: np.ndarray, window: int,
                               n_channels: int) -> np.ndarray:
    """Normalise calibration input to a ``(n, window, channels)`` batch.

    Accepts either an explicit window batch or a raw ``(T, channels)``
    stream, which is cut into sliding windows and thinned to at most
    ``_MAX_CALIBRATION_WINDOWS`` evenly spaced examples.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim == 2:
        from ..data.windowing import sliding_windows

        if data.shape[0] < window:
            raise ValueError(
                f"calibration stream has {data.shape[0]} samples, "
                f"need at least one full window of {window}"
            )
        windows = sliding_windows(data, window, stride=1)
    elif data.ndim == 3:
        windows = data
    else:
        raise ValueError(
            "calibration data must be a (T, channels) stream or a "
            "(n, window, channels) window batch"
        )
    if windows.shape[1] != window or windows.shape[2] != n_channels:
        raise ValueError(
            f"calibration windows must have shape (n, {window}, {n_channels}), "
            f"got {windows.shape}"
        )
    if windows.shape[0] > _MAX_CALIBRATION_WINDOWS:
        keep = np.linspace(0, windows.shape[0] - 1, _MAX_CALIBRATION_WINDOWS)
        windows = windows[np.round(keep).astype(int)]
    return windows


class QuantizedVaradeDetector(AnomalyDetector):
    """Inference-only int8 VARADE sharing the common detector contract."""

    name = "VARADE-int8"
    scores_current_sample = True

    def __init__(self, config: VaradeConfig, plan: QuantizedForwardPlan,
                 history: Optional[TrainingHistory] = None) -> None:
        super().__init__(window=config.window)
        if plan.in_channels != config.n_channels or plan.in_length != config.window:
            raise ValueError(
                f"plan input shape ({plan.in_channels}, {plan.in_length}) does not "
                f"match config ({config.n_channels}, {config.window})"
            )
        if set(plan.heads) != {"mean", "log_var"}:
            raise ValueError("a VARADE plan needs exactly the 'mean' and 'log_var' heads")
        self.config = config
        self.plan = plan
        if history is not None:
            self.history = history
        # A quantized detector is a deployment artifact: born fitted.
        self._mark_fitted()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_detector(cls, detector: VaradeDetector, calibration_data: np.ndarray,
                      headroom: float = 2.0) -> "QuantizedVaradeDetector":
        """Quantize a fitted float VARADE against calibration windows.

        ``headroom`` widens the calibrated activation ranges (default 2x): the
        calibration data is *normal* by construction, but the detector's job
        is to score abnormal windows, whose activations overshoot the normal
        ranges -- without margin they would saturate to the int8 ceiling and
        flatten exactly the scores the AUC depends on.
        """
        config = detector.config
        windows = coerce_calibration_windows(calibration_data, config.window,
                                             config.n_channels)
        calibration = np.ascontiguousarray(np.transpose(windows, (0, 2, 1)))
        plan = QuantizedForwardPlan.from_network(
            detector.network.backbone,
            {"mean": detector.network.head_mean,
             "log_var": detector.network.head_log_var},
            in_channels=config.n_channels,
            in_length=config.window,
            calibration=calibration,
            headroom=headroom,
        )
        history = TrainingHistory(
            epoch_losses=list(detector.history.epoch_losses),
            wall_time_s=detector.history.wall_time_s,
        )
        quantized = cls(config, plan, history=history)
        quantized.threshold = detector.threshold
        quantized.scaler = detector.scaler
        return quantized

    # ------------------------------------------------------------------ #
    # Training is refused
    # ------------------------------------------------------------------ #
    def fit(self, train_data: np.ndarray) -> "QuantizedVaradeDetector":
        raise RuntimeError(
            "QuantizedVaradeDetector is inference-only: train the float "
            "VaradeDetector, then call quantize() again"
        )

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def predict_distribution(self, windows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Int8 counterpart of :meth:`VaradeNetwork.predict_distribution`.

        ``windows`` is ``(batch, window, channels)`` (stream layout); returns
        float64 ``(mean, log_var)`` pairs with the same ``predict_delta`` and
        log-variance clipping semantics as the float network.
        """
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim == 2:
            windows = windows[None, ...]
        if windows.ndim != 3 or windows.shape[1] != self.config.window \
                or windows.shape[2] != self.config.n_channels:
            raise ValueError(
                f"expected windows of shape (batch, {self.config.window}, "
                f"{self.config.n_channels}), got {windows.shape}"
            )
        # The plan stages stream-layout input directly; no transpose copy here.
        outputs = self.plan.forward(windows, layout="nlc")
        # Plan buffers are reused on the next call: derive fresh float64 arrays.
        mean = outputs["mean"].astype(np.float64)
        if self.config.predict_delta:
            mean += windows[:, -1, :]
        log_var = np.clip(outputs["log_var"].astype(np.float64), -10.0, 10.0)
        return mean, log_var

    def score_window(self, window: np.ndarray, target: np.ndarray) -> float:
        """One-step scoring via :meth:`score_windows_batch` (one shared path)."""
        return float(self.score_windows_batch(
            np.asarray(window, dtype=np.float64)[None, ...],
            np.asarray(target, dtype=np.float64).reshape(1, -1),
        )[0])

    def score_windows_batch(self, windows: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Vectorized variance scoring through the int8 plan."""
        self._check_fitted()
        windows, _ = self._validate_batch(windows, targets)
        _, log_var = self.predict_distribution(windows)
        return np.exp(log_var).mean(axis=1)

    def incremental_scorer(self) -> Optional[VaradeIncrementalScorer]:
        """Int8 per-stream O(1)-per-sample scorer (bit-identical to batch).

        The int8 plan needs no BLAS probe -- its staged GEMMs are exact
        integers by construction -- but a non-right-anchored conv still
        rules the causal update out, in which case ``None`` is returned
        and callers fall back to :meth:`score_windows_batch`.
        """
        try:
            plan = IncrementalQuantizedPlan(self.plan, heads=["log_var"])
        except (TypeError, ValueError):
            return None
        return VaradeIncrementalScorer(plan)

    # ------------------------------------------------------------------ #
    # Cost
    # ------------------------------------------------------------------ #
    def inference_cost(self) -> InferenceCost:
        """Int8 cost profile: same MACs, quarter the weight/activation bytes."""
        flops = 0.0
        activation_bytes = 0.0
        length = self.config.window
        for conv in self.plan.conv_layers:
            length = conv.output_length(length)
            flops += 2.0 * conv.out_channels * conv.in_channels * conv.kernel_size * length
            activation_bytes += conv.out_channels * length  # int8 activations
        for head in self.plan.heads.values():
            flops += 2.0 * head.in_features * head.out_features
            activation_bytes += head.out_features * 4  # float outputs
        launches = 2.0 * self.config.n_layers + 4.0
        return InferenceCost(
            flops=flops,
            parameter_bytes=float(self.plan.parameter_bytes()),
            activation_bytes=float(activation_bytes),
            gpu_fraction=0.95,
            parallel_efficiency=0.85,
            n_kernel_launches=launches,
            compute_dtype="int8",
        )
