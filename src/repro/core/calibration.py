"""Anomaly-score threshold calibration.

AUC-ROC (the paper's accuracy metric) is threshold-free, but deploying a
detector in the manufacturing control loop -- the paper's stated future work
-- requires an operating threshold.  This module selects thresholds from the
score distribution on normal (training) data, either by quantile (matching
the Isolation Forest contamination convention) or by a robust
median-absolute-deviation rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

__all__ = ["ThresholdCalibrator", "CalibratedThreshold"]


@dataclass(frozen=True)
class CalibratedThreshold:
    """A calibrated decision threshold plus how it was obtained."""

    threshold: float
    method: str
    parameter: float

    def classify(self, scores: np.ndarray) -> np.ndarray:
        """Return 1 where the score exceeds the threshold, else 0."""
        return (np.asarray(scores) > self.threshold).astype(np.int64)


class ThresholdCalibrator:
    """Choose a decision threshold from scores measured on normal data."""

    def __init__(self, method: Literal["quantile", "mad"] = "quantile",
                 quantile: float = 0.99, mad_factor: float = 6.0) -> None:
        if method not in ("quantile", "mad"):
            raise ValueError("method must be 'quantile' or 'mad'")
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if mad_factor <= 0:
            raise ValueError("mad_factor must be positive")
        self.method = method
        self.quantile = quantile
        self.mad_factor = mad_factor

    @classmethod
    def matching(cls, threshold: CalibratedThreshold) -> "ThresholdCalibrator":
        """A calibrator configured like the one that produced ``threshold``.

        :class:`CalibratedThreshold` records its ``method`` and ``parameter``
        precisely so a later recalibration -- e.g. the online drift adaptation
        in :mod:`repro.drift` -- can re-derive the threshold from fresh scores
        *the same way* the original deployment calibrated it.
        """
        if threshold.method == "quantile":
            return cls(method="quantile", quantile=threshold.parameter)
        if threshold.method == "mad":
            return cls(method="mad", mad_factor=threshold.parameter)
        raise ValueError(
            f"cannot rebuild a calibrator for unknown method {threshold.method!r}"
        )

    def calibrate(self, normal_scores: np.ndarray) -> CalibratedThreshold:
        """Compute the threshold from anomaly scores of normal data.

        Non-finite scores (the NaN prefix of a scored stream, overflowed
        scores) are ignored; an empty input or one with *no* finite score at
        all raises a descriptive ``ValueError`` rather than silently
        propagating a nan threshold into the alarm path.
        """
        scores = np.asarray(normal_scores, dtype=np.float64).ravel()
        if scores.size == 0:
            raise ValueError(
                "cannot calibrate a threshold on an empty score array: "
                "score a normal stream first and pass its valid scores"
            )
        finite = np.isfinite(scores)
        if not finite.any():
            raise ValueError(
                f"cannot calibrate a threshold: all {scores.size} scores are "
                "non-finite (nan/inf); the detector produced no usable scores "
                "on the calibration data"
            )
        scores = scores[finite]
        if self.method == "quantile":
            threshold = float(np.quantile(scores, self.quantile))
            parameter = self.quantile
        else:
            median = float(np.median(scores))
            mad = float(np.median(np.abs(scores - median)))
            threshold = median + self.mad_factor * max(mad, 1e-12)
            parameter = self.mad_factor
        return CalibratedThreshold(threshold=threshold, method=self.method, parameter=parameter)
