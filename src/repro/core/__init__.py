"""VARADE: the paper's primary contribution.

A light variational autoregressive forecaster whose predicted variance is the
anomaly score, plus the shared anomaly-detector API, training configuration
and threshold calibration utilities.
"""

from .calibration import CalibratedThreshold, ThresholdCalibrator
from .config import TrainingConfig, VaradeConfig
from .detector import (AnomalyDetector, InferenceCost, ScoreResult,
                       VaradeDetector, VaradeIncrementalScorer)
from .quantized import QuantizedVaradeDetector
from .varade import VaradeNetwork

__all__ = [
    "CalibratedThreshold",
    "ThresholdCalibrator",
    "TrainingConfig",
    "VaradeConfig",
    "AnomalyDetector",
    "InferenceCost",
    "ScoreResult",
    "QuantizedVaradeDetector",
    "VaradeDetector",
    "VaradeIncrementalScorer",
    "VaradeNetwork",
]
