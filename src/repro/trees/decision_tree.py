"""CART regression trees.

This is the base learner for the Gradient Boosted Regression Forest (GBRF)
baseline.  Splits minimise the mean-squared-error criterion via recursive
binary splitting, as specified in the paper's implementation details
(Section 3.4), using an efficient sorted-prefix-sum split search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = ["DecisionTreeRegressor", "TreeNode"]


@dataclass
class TreeNode:
    """A node of a regression tree.

    Leaves have ``feature == -1`` and carry the mean target ``value``.
    Internal nodes route samples with ``x[feature] <= threshold`` to the left
    child and the rest to the right child.
    """

    feature: int = -1
    threshold: float = 0.0
    value: float = 0.0
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0

    def depth(self) -> int:
        """Height of the subtree rooted at this node (leaf = 0)."""
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())

    def count_leaves(self) -> int:
        if self.is_leaf:
            return 1
        return self.left.count_leaves() + self.right.count_leaves()


class DecisionTreeRegressor:
    """A regression tree grown with the MSE criterion.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until leaves are pure or smaller
        than ``min_samples_leaf``.
    min_samples_split:
        Minimum number of samples required to attempt a split.
    min_samples_leaf:
        Minimum number of samples in each child of a split.
    max_features:
        If given, the number of features examined (without replacement) at
        every split -- used by the boosted forest for decorrelation.
    """

    def __init__(self, max_depth: Optional[int] = None, min_samples_split: int = 2,
                 min_samples_leaf: int = 1, max_features: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        if max_depth is not None and max_depth < 0:
            raise ValueError("max_depth must be non-negative")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be at least 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = rng if rng is not None else np.random.default_rng()
        self.root: Optional[TreeNode] = None
        self.n_features_: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        """Grow the tree on ``features`` (n_samples, n_features) and ``targets``."""
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64).ravel()
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array (n_samples, n_features)")
        if features.shape[0] != targets.shape[0]:
            raise ValueError("features and targets must have the same number of samples")
        if features.shape[0] == 0:
            raise ValueError("cannot fit a tree on an empty dataset")
        self.n_features_ = features.shape[1]
        self.root = self._grow(features, targets, depth=0)
        return self

    def _grow(self, features: np.ndarray, targets: np.ndarray, depth: int) -> TreeNode:
        node = TreeNode(value=float(targets.mean()))
        n_samples = targets.shape[0]
        if (self.max_depth is not None and depth >= self.max_depth) \
                or n_samples < self.min_samples_split \
                or np.allclose(targets, targets[0]):
            return node

        feature, threshold = self._best_split(features, targets)
        if feature < 0:
            return node

        mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(features[mask], targets[mask], depth + 1)
        node.right = self._grow(features[~mask], targets[~mask], depth + 1)
        return node

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= n_features:
            return np.arange(n_features)
        return self._rng.choice(n_features, size=self.max_features, replace=False)

    def _best_split(self, features: np.ndarray, targets: np.ndarray) -> tuple[int, float]:
        """Return the (feature, threshold) minimising weighted child MSE.

        Uses prefix sums over the sorted targets so each feature is scanned in
        O(n log n).  Returns ``(-1, 0.0)`` when no valid split exists.
        """
        n_samples = targets.shape[0]
        best_feature = -1
        best_threshold = 0.0
        total_sum = targets.sum()
        total_sq = (targets ** 2).sum()
        best_score = total_sq - total_sum ** 2 / n_samples  # parent SSE

        min_leaf = self.min_samples_leaf
        for feature in self._candidate_features(features.shape[1]):
            order = np.argsort(features[:, feature], kind="stable")
            sorted_values = features[order, feature]
            sorted_targets = targets[order]
            prefix_sum = np.cumsum(sorted_targets)
            prefix_sq = np.cumsum(sorted_targets ** 2)

            # Candidate split after position i (1-based count of left samples).
            left_counts = np.arange(1, n_samples)
            valid = (left_counts >= min_leaf) & (n_samples - left_counts >= min_leaf)
            # A split between equal feature values is not realisable.
            distinct = sorted_values[:-1] < sorted_values[1:]
            valid &= distinct
            if not valid.any():
                continue

            left_sum = prefix_sum[:-1]
            left_sq = prefix_sq[:-1]
            right_sum = total_sum - left_sum
            right_sq = total_sq - left_sq
            right_counts = n_samples - left_counts
            sse = (left_sq - left_sum ** 2 / left_counts) \
                + (right_sq - right_sum ** 2 / right_counts)
            sse = np.where(valid, sse, np.inf)
            best_index = int(np.argmin(sse))
            if sse[best_index] < best_score - 1e-12:
                best_score = float(sse[best_index])
                best_feature = int(feature)
                best_threshold = float(
                    0.5 * (sorted_values[best_index] + sorted_values[best_index + 1])
                )
        return best_feature, best_threshold

    # ------------------------------------------------------------------ #
    # Prediction and introspection
    # ------------------------------------------------------------------ #
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (n_samples, n_features)."""
        if self.root is None:
            raise RuntimeError("predict() called before fit()")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        if features.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {features.shape[1]}"
            )
        output = np.empty(features.shape[0])
        for index, row in enumerate(features):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            output[index] = node.value
        return output

    @property
    def depth(self) -> int:
        if self.root is None:
            raise RuntimeError("tree has not been fitted")
        return self.root.depth()

    @property
    def n_leaves(self) -> int:
        if self.root is None:
            raise RuntimeError("tree has not been fitted")
        return self.root.count_leaves()

    def node_count(self) -> int:
        """Total number of nodes (internal + leaves)."""
        def count(node: TreeNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + count(node.left) + count(node.right)

        if self.root is None:
            raise RuntimeError("tree has not been fitted")
        return count(self.root)

    # ------------------------------------------------------------------ #
    # Array (de)serialisation (used by repro.serialize)
    # ------------------------------------------------------------------ #
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten the fitted tree into parallel preorder node arrays.

        ``feature`` is -1 at leaves; ``left``/``right`` hold child node
        indices (-1 at leaves).  The exact float64 thresholds and leaf values
        are preserved, so a tree rebuilt with :meth:`from_arrays` routes and
        predicts bit-identically.
        """
        if self.root is None:
            raise RuntimeError("to_arrays() called before fit()")
        features, thresholds, values, lefts, rights = [], [], [], [], []

        def visit(node: TreeNode) -> int:
            index = len(features)
            features.append(node.feature)
            thresholds.append(node.threshold)
            values.append(node.value)
            lefts.append(-1)
            rights.append(-1)
            if not node.is_leaf:
                lefts[index] = visit(node.left)
                rights[index] = visit(node.right)
            return index

        visit(self.root)
        return {
            "feature": np.asarray(features, dtype=np.int64),
            "threshold": np.asarray(thresholds, dtype=np.float64),
            "value": np.asarray(values, dtype=np.float64),
            "left": np.asarray(lefts, dtype=np.int64),
            "right": np.asarray(rights, dtype=np.int64),
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray], n_features: int,
                    **constructor_kwargs) -> "DecisionTreeRegressor":
        """Rebuild a fitted tree from :meth:`to_arrays` output."""
        feature = np.asarray(arrays["feature"], dtype=np.int64)
        threshold = np.asarray(arrays["threshold"], dtype=np.float64)
        value = np.asarray(arrays["value"], dtype=np.float64)
        left = np.asarray(arrays["left"], dtype=np.int64)
        right = np.asarray(arrays["right"], dtype=np.int64)
        if feature.size == 0:
            raise ValueError("node arrays are empty")

        def build(index: int) -> TreeNode:
            node = TreeNode(feature=int(feature[index]),
                            threshold=float(threshold[index]),
                            value=float(value[index]))
            if node.feature >= 0:
                node.left = build(int(left[index]))
                node.right = build(int(right[index]))
            return node

        tree = cls(**constructor_kwargs)
        tree.n_features_ = int(n_features)
        tree.root = build(0)
        return tree
