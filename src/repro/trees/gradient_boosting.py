"""Gradient Boosted Regression Forest (GBRF).

The paper's GBRF baseline follows Huang et al. (2021) with the modifications
stated in Section 3.3: 30 decision trees and no dimensionality-reduction step.
Anomalies are detected from the residual between the ensemble's forecast and
the observed value, exactly like the AR-LSTM baseline.

For a squared-error objective, gradient boosting reduces to iteratively
fitting regression trees to the current residuals and adding the shrunken
predictions to the running estimate.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .decision_tree import DecisionTreeRegressor

__all__ = ["GradientBoostingRegressor", "MultiOutputGradientBoosting"]


class GradientBoostingRegressor:
    """Single-output gradient boosting with regression-tree base learners."""

    def __init__(self, n_estimators: int = 30, learning_rate: float = 0.1,
                 max_depth: int = 3, min_samples_leaf: int = 1,
                 subsample: float = 1.0, max_features: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.max_features = max_features
        self._rng = rng if rng is not None else np.random.default_rng()
        self.trees_: List[DecisionTreeRegressor] = []
        self.initial_prediction_: float = 0.0
        self.train_scores_: List[float] = []

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostingRegressor":
        """Fit the boosted ensemble with the MSE criterion."""
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64).ravel()
        if features.shape[0] != targets.shape[0]:
            raise ValueError("features and targets must have the same number of samples")
        if features.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")

        self.trees_ = []
        self.train_scores_ = []
        self.initial_prediction_ = float(targets.mean())
        current = np.full_like(targets, self.initial_prediction_)
        n_samples = features.shape[0]

        for _ in range(self.n_estimators):
            residuals = targets - current
            if self.subsample < 1.0:
                size = max(1, int(round(self.subsample * n_samples)))
                indices = self._rng.choice(n_samples, size=size, replace=False)
            else:
                indices = slice(None)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=self._rng,
            )
            tree.fit(features[indices], residuals[indices])
            update = tree.predict(features)
            current = current + self.learning_rate * update
            self.trees_.append(tree)
            self.train_scores_.append(float(np.mean((targets - current) ** 2)))
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets by summing the shrunken tree outputs."""
        if not self.trees_:
            raise RuntimeError("predict() called before fit()")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        output = np.full(features.shape[0], self.initial_prediction_)
        for tree in self.trees_:
            output = output + self.learning_rate * tree.predict(features)
        return output

    def staged_predict(self, features: np.ndarray) -> np.ndarray:
        """Predictions after each boosting stage, shape (n_estimators, n_samples)."""
        if not self.trees_:
            raise RuntimeError("staged_predict() called before fit()")
        features = np.asarray(features, dtype=np.float64)
        output = np.full(features.shape[0], self.initial_prediction_)
        stages = np.empty((len(self.trees_), features.shape[0]))
        for index, tree in enumerate(self.trees_):
            output = output + self.learning_rate * tree.predict(features)
            stages[index] = output
        return stages

    # ------------------------------------------------------------------ #
    # Array (de)serialisation (used by repro.serialize)
    # ------------------------------------------------------------------ #
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten the fitted ensemble into concatenated node arrays.

        Each tree's preorder node arrays are concatenated; ``tree_offsets``
        (length ``n_trees + 1``) delimits them.  Child indices stay local to
        their tree.
        """
        if not self.trees_:
            raise RuntimeError("to_arrays() called before fit()")
        per_tree = [tree.to_arrays() for tree in self.trees_]
        offsets = np.zeros(len(per_tree) + 1, dtype=np.int64)
        for index, arrays in enumerate(per_tree):
            offsets[index + 1] = offsets[index] + arrays["feature"].shape[0]
        stacked = {
            key: np.concatenate([arrays[key] for arrays in per_tree])
            for key in ("feature", "threshold", "value", "left", "right")
        }
        stacked["tree_offsets"] = offsets
        stacked["initial_prediction"] = np.asarray([self.initial_prediction_])
        stacked["train_scores"] = np.asarray(self.train_scores_, dtype=np.float64)
        return stacked

    def load_arrays(self, arrays: Dict[str, np.ndarray], n_features: int) -> \
            "GradientBoostingRegressor":
        """Restore fitted state (trees + offset prediction) in place."""
        offsets = np.asarray(arrays["tree_offsets"], dtype=np.int64)
        self.trees_ = []
        for index in range(offsets.shape[0] - 1):
            lo, hi = int(offsets[index]), int(offsets[index + 1])
            tree_arrays = {key: np.asarray(arrays[key])[lo:hi]
                           for key in ("feature", "threshold", "value", "left", "right")}
            self.trees_.append(DecisionTreeRegressor.from_arrays(
                tree_arrays, n_features,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
            ))
        self.initial_prediction_ = float(np.asarray(arrays["initial_prediction"])[0])
        self.train_scores_ = [float(v) for v in np.asarray(arrays["train_scores"])]
        return self


class MultiOutputGradientBoosting:
    """One boosted ensemble per output channel.

    The robot stream has many channels; the GBRF detector forecasts each
    channel from the flattened context window, so this wrapper trains an
    independent :class:`GradientBoostingRegressor` per output dimension.
    """

    def __init__(self, n_outputs: int, n_estimators: int = 30, learning_rate: float = 0.1,
                 max_depth: int = 3, subsample: float = 1.0,
                 max_features: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        if n_outputs < 1:
            raise ValueError("n_outputs must be at least 1")
        self.n_outputs = n_outputs
        self._rng = rng if rng is not None else np.random.default_rng()
        self.models_: List[GradientBoostingRegressor] = [
            GradientBoostingRegressor(
                n_estimators=n_estimators,
                learning_rate=learning_rate,
                max_depth=max_depth,
                subsample=subsample,
                max_features=max_features,
                rng=self._rng,
            )
            for _ in range(n_outputs)
        ]

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "MultiOutputGradientBoosting":
        """Fit every per-channel ensemble; ``targets`` is (n_samples, n_outputs)."""
        targets = np.asarray(targets, dtype=np.float64)
        if targets.ndim == 1:
            targets = targets.reshape(-1, 1)
        if targets.shape[1] != self.n_outputs:
            raise ValueError(f"expected {self.n_outputs} output columns, got {targets.shape[1]}")
        for output_index, model in enumerate(self.models_):
            model.fit(features, targets[:, output_index])
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict all output channels; returns (n_samples, n_outputs)."""
        predictions = [model.predict(features) for model in self.models_]
        return np.stack(predictions, axis=1)

    # ------------------------------------------------------------------ #
    # Array (de)serialisation (used by repro.serialize)
    # ------------------------------------------------------------------ #
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten every per-channel ensemble, namespaced ``outNN.<key>``."""
        stacked: Dict[str, np.ndarray] = {}
        for output_index, model in enumerate(self.models_):
            for key, value in model.to_arrays().items():
                stacked[f"out{output_index}.{key}"] = value
        return stacked

    def load_arrays(self, arrays: Dict[str, np.ndarray], n_features: int) -> \
            "MultiOutputGradientBoosting":
        """Restore every per-channel ensemble in place."""
        for output_index, model in enumerate(self.models_):
            prefix = f"out{output_index}."
            model_arrays = {key[len(prefix):]: value for key, value in arrays.items()
                            if key.startswith(prefix)}
            if not model_arrays:
                raise KeyError(f"missing arrays for output channel {output_index}")
            model.load_arrays(model_arrays, n_features)
        return self
