"""Isolation Forest (Liu, Ting & Zhou, 2012).

The paper uses an ensemble of 100 isolation trees and a contamination value
of 0.1 (the recommended default) to turn anomaly scores into a decision
threshold.  Scores follow the reference formulation: the average path length
needed to isolate a point, normalised by the expected path length of an
unsuccessful binary-search-tree lookup, mapped through ``2^(-E[h]/c(n))`` so
larger values mean "more anomalous".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = ["IsolationForest", "IsolationTreeNode", "average_path_length"]


def average_path_length(n_samples: int | np.ndarray) -> np.ndarray:
    """Expected path length c(n) of an unsuccessful BST search over n points."""
    n = np.asarray(n_samples, dtype=np.float64)
    result = np.zeros_like(n)
    mask_two = n == 2
    mask_many = n > 2
    euler_mascheroni = 0.5772156649
    with np.errstate(divide="ignore", invalid="ignore"):
        harmonic = np.log(n - 1) + euler_mascheroni
        result = np.where(mask_many, 2.0 * harmonic - 2.0 * (n - 1) / n, result)
    result = np.where(mask_two, 1.0, result)
    return result


@dataclass
class IsolationTreeNode:
    """A node of an isolation tree."""

    feature: int = -1
    threshold: float = 0.0
    size: int = 0
    left: Optional["IsolationTreeNode"] = None
    right: Optional["IsolationTreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class _IsolationTree:
    """A single isolation tree grown on a subsample."""

    def __init__(self, height_limit: int, rng: np.random.Generator) -> None:
        self.height_limit = height_limit
        self._rng = rng
        self.root: Optional[IsolationTreeNode] = None

    def fit(self, data: np.ndarray) -> "_IsolationTree":
        self.root = self._grow(data, depth=0)
        return self

    def _grow(self, data: np.ndarray, depth: int) -> IsolationTreeNode:
        n_samples = data.shape[0]
        if depth >= self.height_limit or n_samples <= 1:
            return IsolationTreeNode(size=n_samples)
        # Choose a feature with non-zero spread; give up after a few attempts
        # (the subsample may be constant in every dimension).
        for _ in range(data.shape[1]):
            feature = int(self._rng.integers(0, data.shape[1]))
            low = data[:, feature].min()
            high = data[:, feature].max()
            if high > low:
                break
        else:
            return IsolationTreeNode(size=n_samples)
        if high <= low:
            return IsolationTreeNode(size=n_samples)
        threshold = float(self._rng.uniform(low, high))
        mask = data[:, feature] < threshold
        if not mask.any() or mask.all():
            return IsolationTreeNode(size=n_samples)
        node = IsolationTreeNode(feature=feature, threshold=threshold, size=n_samples)
        node.left = self._grow(data[mask], depth + 1)
        node.right = self._grow(data[~mask], depth + 1)
        return node

    def path_length(self, data: np.ndarray) -> np.ndarray:
        """Path length h(x) for every row, including the c(size) leaf correction."""
        lengths = np.empty(data.shape[0])
        for index, row in enumerate(data):
            node = self.root
            depth = 0
            while not node.is_leaf:
                node = node.left if row[node.feature] < node.threshold else node.right
                depth += 1
            correction = float(average_path_length(node.size)) if node.size > 1 else 0.0
            lengths[index] = depth + correction
        return lengths


class IsolationForest:
    """Ensemble of isolation trees with the standard anomaly score."""

    def __init__(self, n_estimators: int = 100, max_samples: int = 256,
                 contamination: float = 0.1,
                 rng: Optional[np.random.Generator] = None) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        if max_samples < 2:
            raise ValueError("max_samples must be at least 2")
        if not 0.0 < contamination < 0.5:
            raise ValueError("contamination must be in (0, 0.5)")
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.contamination = contamination
        self._rng = rng if rng is not None else np.random.default_rng()
        self.trees_: List[_IsolationTree] = []
        self.threshold_: Optional[float] = None
        self._sample_size: int = max_samples

    def fit(self, data: np.ndarray) -> "IsolationForest":
        """Fit the forest on (assumed mostly normal) data."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be a 2-D array (n_samples, n_features)")
        if data.shape[0] < 2:
            raise ValueError("need at least two samples to fit an isolation forest")
        n_samples = data.shape[0]
        self._sample_size = min(self.max_samples, n_samples)
        height_limit = int(np.ceil(np.log2(max(self._sample_size, 2))))

        self.trees_ = []
        for _ in range(self.n_estimators):
            indices = self._rng.choice(n_samples, size=self._sample_size, replace=False)
            tree = _IsolationTree(height_limit, self._rng)
            tree.fit(data[indices])
            self.trees_.append(tree)

        # Contamination defines the score threshold used by predict().
        train_scores = self.score_samples(data)
        self.threshold_ = float(np.quantile(train_scores, 1.0 - self.contamination))
        return self

    def score_samples(self, data: np.ndarray) -> np.ndarray:
        """Anomaly score in (0, 1); larger means more anomalous."""
        if not self.trees_:
            raise RuntimeError("score_samples() called before fit()")
        data = np.asarray(data, dtype=np.float64)
        if data.ndim == 1:
            data = data.reshape(1, -1)
        path_lengths = np.zeros(data.shape[0])
        for tree in self.trees_:
            path_lengths += tree.path_length(data)
        mean_path = path_lengths / len(self.trees_)
        normaliser = float(average_path_length(self._sample_size))
        return np.power(2.0, -mean_path / max(normaliser, 1e-12))

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Return +1 for normal points and -1 for anomalies (contamination threshold)."""
        if self.threshold_ is None:
            raise RuntimeError("predict() called before fit()")
        scores = self.score_samples(data)
        return np.where(scores > self.threshold_, -1, 1)

    # ------------------------------------------------------------------ #
    # Array (de)serialisation (used by repro.serialize)
    # ------------------------------------------------------------------ #
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten the fitted forest into concatenated preorder node arrays."""
        if not self.trees_:
            raise RuntimeError("to_arrays() called before fit()")
        features, thresholds, sizes, lefts, rights = [], [], [], [], []
        offsets = [0]

        for tree in self.trees_:
            base = len(features)

            def visit(node: IsolationTreeNode) -> int:
                local = len(features) - base
                features.append(node.feature)
                thresholds.append(node.threshold)
                sizes.append(node.size)
                lefts.append(-1)
                rights.append(-1)
                if not node.is_leaf:
                    lefts[base + local] = visit(node.left)
                    rights[base + local] = visit(node.right)
                return local

            visit(tree.root)
            offsets.append(len(features))
        return {
            "feature": np.asarray(features, dtype=np.int64),
            "threshold": np.asarray(thresholds, dtype=np.float64),
            "size": np.asarray(sizes, dtype=np.int64),
            "left": np.asarray(lefts, dtype=np.int64),
            "right": np.asarray(rights, dtype=np.int64),
            "tree_offsets": np.asarray(offsets, dtype=np.int64),
            "sample_size": np.asarray([self._sample_size], dtype=np.int64),
            "score_threshold": np.asarray(
                [np.nan if self.threshold_ is None else self.threshold_]
            ),
        }

    def load_arrays(self, arrays: Dict[str, np.ndarray]) -> "IsolationForest":
        """Restore a fitted forest in place from :meth:`to_arrays` output.

        Child indices in the node arrays are local to each tree's slice.
        """
        offsets = np.asarray(arrays["tree_offsets"], dtype=np.int64)
        feature = np.asarray(arrays["feature"], dtype=np.int64)
        threshold = np.asarray(arrays["threshold"], dtype=np.float64)
        size = np.asarray(arrays["size"], dtype=np.int64)
        left = np.asarray(arrays["left"], dtype=np.int64)
        right = np.asarray(arrays["right"], dtype=np.int64)

        self._sample_size = int(np.asarray(arrays["sample_size"])[0])
        stored_threshold = float(np.asarray(arrays["score_threshold"])[0])
        self.threshold_ = None if np.isnan(stored_threshold) else stored_threshold
        height_limit = int(np.ceil(np.log2(max(self._sample_size, 2))))

        def build(lo: int, index: int) -> IsolationTreeNode:
            node = IsolationTreeNode(
                feature=int(feature[lo + index]),
                threshold=float(threshold[lo + index]),
                size=int(size[lo + index]),
            )
            if not node.is_leaf:
                node.left = build(lo, int(left[lo + index]))
                node.right = build(lo, int(right[lo + index]))
            return node

        self.trees_ = []
        for tree_index in range(offsets.shape[0] - 1):
            tree = _IsolationTree(height_limit, self._rng)
            tree.root = build(int(offsets[tree_index]), 0)
            self.trees_.append(tree)
        return self
