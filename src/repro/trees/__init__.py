"""Tree-based learning substrates: CART regression trees, gradient boosting
and the isolation forest, re-implemented from their reference papers to
replace scikit-learn (which is unavailable in this environment).
"""

from .decision_tree import DecisionTreeRegressor, TreeNode
from .gradient_boosting import GradientBoostingRegressor, MultiOutputGradientBoosting
from .isolation_forest import IsolationForest, IsolationTreeNode, average_path_length

__all__ = [
    "DecisionTreeRegressor",
    "TreeNode",
    "GradientBoostingRegressor",
    "MultiOutputGradientBoosting",
    "IsolationForest",
    "IsolationTreeNode",
    "average_path_length",
]
