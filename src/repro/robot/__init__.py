"""Robot-cell simulation substrate.

Replaces the paper's physical testbed (a KUKA LBR iiwa instrumented with
seven IMUs and a single-phase energy meter) with a simulator that produces
the same 86-channel multivariate stream: a 7-DOF kinematic model, a library
of 30 pick-and-place actions with quintic joint trajectories, IMU and power
meter sensor models, and a collision-anomaly injector.
"""

from .actions import ActionLibrary, DEFAULT_NUM_ACTIONS, RobotAction
from .anomalies import CollisionConfig, CollisionEvent, CollisionInjector
from .drift import RecordingDriftInjector, SensorDriftEvent
from .kalman import ConstantVelocityKalman, KalmanFilter1D, smooth_series
from .kinematics import DHParameters, JOINT_LIMITS_RAD, KukaLBRIiwa
from .plant import (
    CHANNELS_PER_JOINT,
    N_JOINTS,
    N_POWER_CHANNELS,
    N_TOTAL_CHANNELS,
    RobotCellConfig,
    RobotCellSimulator,
    RobotRecording,
)
from .power import POWER_CHANNEL_NAMES, PowerMeterConfig, PowerMeterModel
from .quaternion import (
    axis_angle_to_quaternion,
    euler_to_quaternion,
    quaternion_conjugate,
    quaternion_multiply,
    quaternion_normalize,
    quaternion_slerp,
    quaternion_to_euler,
)
from .sensors import IMUConfig, IMUReading, IMUSensorModel
from .trajectory import JointTrajectory, QuinticSegment, plan_waypoint_trajectory

__all__ = [
    "ActionLibrary",
    "DEFAULT_NUM_ACTIONS",
    "RobotAction",
    "CollisionConfig",
    "CollisionEvent",
    "CollisionInjector",
    "RecordingDriftInjector",
    "SensorDriftEvent",
    "ConstantVelocityKalman",
    "KalmanFilter1D",
    "smooth_series",
    "DHParameters",
    "JOINT_LIMITS_RAD",
    "KukaLBRIiwa",
    "CHANNELS_PER_JOINT",
    "N_JOINTS",
    "N_POWER_CHANNELS",
    "N_TOTAL_CHANNELS",
    "RobotCellConfig",
    "RobotCellSimulator",
    "RobotRecording",
    "POWER_CHANNEL_NAMES",
    "PowerMeterConfig",
    "PowerMeterModel",
    "axis_angle_to_quaternion",
    "euler_to_quaternion",
    "quaternion_conjugate",
    "quaternion_multiply",
    "quaternion_normalize",
    "quaternion_slerp",
    "quaternion_to_euler",
    "IMUConfig",
    "IMUReading",
    "IMUSensorModel",
    "JointTrajectory",
    "QuinticSegment",
    "plan_waypoint_trajectory",
]
