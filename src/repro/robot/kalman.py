"""Linear Kalman filtering.

The DFRobot SEN0386 IMUs used in the paper apply an on-board Kalman filter
before streaming measurements at 200 Hz.  The sensor model reproduces this:
raw simulated signals are corrupted with noise and then smoothed by a
constant-velocity Kalman filter, so the detectors see data with the same
noise character as the paper's.
"""

from __future__ import annotations


import numpy as np

__all__ = ["KalmanFilter1D", "ConstantVelocityKalman", "smooth_series"]


class KalmanFilter1D:
    """Scalar Kalman filter with a random-walk state model."""

    def __init__(self, process_variance: float = 1e-4, measurement_variance: float = 1e-2,
                 initial_estimate: float = 0.0, initial_variance: float = 1.0) -> None:
        if process_variance <= 0 or measurement_variance <= 0:
            raise ValueError("variances must be positive")
        self.process_variance = process_variance
        self.measurement_variance = measurement_variance
        self.estimate = initial_estimate
        self.variance = initial_variance

    def update(self, measurement: float) -> float:
        """Incorporate one measurement and return the filtered estimate."""
        # Predict
        predicted_variance = self.variance + self.process_variance
        # Update
        gain = predicted_variance / (predicted_variance + self.measurement_variance)
        self.estimate = self.estimate + gain * (measurement - self.estimate)
        self.variance = (1.0 - gain) * predicted_variance
        return self.estimate

    def filter(self, measurements: np.ndarray) -> np.ndarray:
        """Filter a whole series, returning the estimates."""
        measurements = np.asarray(measurements, dtype=np.float64)
        output = np.empty_like(measurements)
        for index, value in enumerate(measurements):
            output[index] = self.update(float(value))
        return output


class ConstantVelocityKalman:
    """Kalman filter with a [position, velocity] state and position measurements.

    This matches the dynamic model used by consumer IMU modules to fuse the
    gyroscope and accelerometer into smooth orientation estimates.
    """

    def __init__(self, dt: float, process_noise: float = 1e-3,
                 measurement_noise: float = 1e-2) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.dt = dt
        self.transition = np.array([[1.0, dt], [0.0, 1.0]])
        self.observation = np.array([[1.0, 0.0]])
        q = process_noise
        self.process_cov = q * np.array([[dt ** 4 / 4.0, dt ** 3 / 2.0],
                                         [dt ** 3 / 2.0, dt ** 2]])
        self.measurement_cov = np.array([[measurement_noise]])
        self.state = np.zeros((2, 1))
        self.covariance = np.eye(2)

    def update(self, measurement: float) -> float:
        """Advance one step with a scalar position measurement."""
        # Predict
        self.state = self.transition @ self.state
        self.covariance = self.transition @ self.covariance @ self.transition.T + self.process_cov
        # Update
        innovation = measurement - float((self.observation @ self.state).item())
        innovation_cov = self.observation @ self.covariance @ self.observation.T \
            + self.measurement_cov
        gain = self.covariance @ self.observation.T / innovation_cov
        self.state = self.state + gain * innovation
        self.covariance = (np.eye(2) - gain @ self.observation) @ self.covariance
        return float(self.state[0, 0])

    def filter(self, measurements: np.ndarray) -> np.ndarray:
        """Filter a whole series of position measurements."""
        measurements = np.asarray(measurements, dtype=np.float64)
        if measurements.size:
            self.state[0, 0] = measurements[0]
        output = np.empty_like(measurements)
        for index, value in enumerate(measurements):
            output[index] = self.update(float(value))
        return output


def smooth_series(values: np.ndarray, process_variance: float = 1e-4,
                  measurement_variance: float = 1e-2) -> np.ndarray:
    """Convenience wrapper: Kalman-smooth a 1-D series with a random-walk model."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("smooth_series expects a 1-D array")
    kalman = KalmanFilter1D(process_variance=process_variance,
                            measurement_variance=measurement_variance,
                            initial_estimate=float(values[0]) if values.size else 0.0)
    return kalman.filter(values)
