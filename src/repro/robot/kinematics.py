"""Forward kinematics of a 7-DOF anthropomorphic manipulator.

The paper's testbed is a KUKA LBR iiwa, a 7-joint collaborative arm.  The
simulator uses the iiwa-14 Denavit-Hartenberg parameters to map joint angles
to link poses; those poses drive the per-joint IMU models (orientation and
linear acceleration of each sensor mount point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["DHParameters", "KukaLBRIiwa", "JOINT_LIMITS_RAD"]

# Joint limits of the LBR iiwa 14 R820 in radians (+/- degrees: 170, 120, 170,
# 120, 170, 120, 175).
JOINT_LIMITS_RAD = np.deg2rad(np.array([170.0, 120.0, 170.0, 120.0, 170.0, 120.0, 175.0]))


@dataclass(frozen=True)
class DHParameters:
    """Modified Denavit-Hartenberg parameters for one link."""

    a: float       # link length [m]
    alpha: float   # link twist [rad]
    d: float       # link offset [m]
    theta_offset: float = 0.0  # constant joint-angle offset [rad]


# LBR iiwa 14 R820 DH table (link lengths in metres).
_IIWA_DH: Tuple[DHParameters, ...] = (
    DHParameters(a=0.0, alpha=-np.pi / 2, d=0.360),
    DHParameters(a=0.0, alpha=np.pi / 2, d=0.0),
    DHParameters(a=0.0, alpha=np.pi / 2, d=0.420),
    DHParameters(a=0.0, alpha=-np.pi / 2, d=0.0),
    DHParameters(a=0.0, alpha=-np.pi / 2, d=0.400),
    DHParameters(a=0.0, alpha=np.pi / 2, d=0.0),
    DHParameters(a=0.0, alpha=0.0, d=0.126),
)


def _dh_transform(params: DHParameters, theta: float) -> np.ndarray:
    """Homogeneous transform for one link at joint angle ``theta``."""
    angle = theta + params.theta_offset
    ct, st = np.cos(angle), np.sin(angle)
    ca, sa = np.cos(params.alpha), np.sin(params.alpha)
    return np.array([
        [ct, -st * ca, st * sa, params.a * ct],
        [st, ct * ca, -ct * sa, params.a * st],
        [0.0, sa, ca, params.d],
        [0.0, 0.0, 0.0, 1.0],
    ])


class KukaLBRIiwa:
    """Forward-kinematics model of the 7-DOF KUKA LBR iiwa."""

    n_joints = 7

    def __init__(self, dh_table: Sequence[DHParameters] = _IIWA_DH) -> None:
        if len(dh_table) != self.n_joints:
            raise ValueError(f"expected {self.n_joints} DH rows, got {len(dh_table)}")
        self.dh_table = tuple(dh_table)

    def clamp_joints(self, joint_angles: np.ndarray) -> np.ndarray:
        """Clamp a joint configuration to the physical joint limits."""
        joint_angles = np.asarray(joint_angles, dtype=np.float64)
        return np.clip(joint_angles, -JOINT_LIMITS_RAD, JOINT_LIMITS_RAD)

    def link_transforms(self, joint_angles: np.ndarray) -> List[np.ndarray]:
        """Cumulative 4x4 transforms of every link frame for one configuration."""
        joint_angles = np.asarray(joint_angles, dtype=np.float64).ravel()
        if joint_angles.shape[0] != self.n_joints:
            raise ValueError(f"expected {self.n_joints} joint angles, got {joint_angles.shape[0]}")
        transforms: List[np.ndarray] = []
        current = np.eye(4)
        for params, theta in zip(self.dh_table, joint_angles):
            current = current @ _dh_transform(params, float(theta))
            transforms.append(current.copy())
        return transforms

    def joint_positions(self, joint_angles: np.ndarray) -> np.ndarray:
        """Cartesian positions of the 7 link frames, shape (7, 3)."""
        transforms = self.link_transforms(joint_angles)
        return np.stack([t[:3, 3] for t in transforms])

    def end_effector_pose(self, joint_angles: np.ndarray) -> np.ndarray:
        """4x4 pose of the flange for one configuration."""
        return self.link_transforms(joint_angles)[-1]

    def joint_orientations_euler(self, joint_angles: np.ndarray) -> np.ndarray:
        """ZYX Euler angles (roll, pitch, yaw) of every link frame, shape (7, 3)."""
        transforms = self.link_transforms(joint_angles)
        angles = np.empty((self.n_joints, 3))
        for index, transform in enumerate(transforms):
            rotation = transform[:3, :3]
            pitch = -np.arcsin(np.clip(rotation[2, 0], -1.0, 1.0))
            roll = np.arctan2(rotation[2, 1], rotation[2, 2])
            yaw = np.arctan2(rotation[1, 0], rotation[0, 0])
            angles[index] = (roll, pitch, yaw)
        return angles

    def trajectory_positions(self, joint_trajectory: np.ndarray) -> np.ndarray:
        """Joint-frame positions along a trajectory, shape (T, 7, 3)."""
        joint_trajectory = np.asarray(joint_trajectory, dtype=np.float64)
        if joint_trajectory.ndim != 2 or joint_trajectory.shape[1] != self.n_joints:
            raise ValueError("joint_trajectory must have shape (T, 7)")
        return np.stack([self.joint_positions(q) for q in joint_trajectory])

    def trajectory_orientations(self, joint_trajectory: np.ndarray) -> np.ndarray:
        """Per-joint Euler orientations along a trajectory, shape (T, 7, 3)."""
        joint_trajectory = np.asarray(joint_trajectory, dtype=np.float64)
        if joint_trajectory.ndim != 2 or joint_trajectory.shape[1] != self.n_joints:
            raise ValueError("joint_trajectory must have shape (T, 7)")
        return np.stack([self.joint_orientations_euler(q) for q in joint_trajectory])

    def reach(self) -> float:
        """Maximum reach of the arm (sum of the DH link offsets/lengths)."""
        return float(sum(abs(p.d) + abs(p.a) for p in self.dh_table))
