"""IMU sensor model.

Each of the seven joints of the paper's robot carries a DFRobot SEN0386 IMU
streaming, at 200 Hz, eleven channels: 3-axis linear acceleration, 3-axis
angular velocity, a 4-component orientation quaternion, and temperature
(Table 1 of the paper).  The sensor model maps the simulated joint
trajectory (positions, velocities, accelerations) to those channels,
adds realistic measurement noise and applies the on-board Kalman filtering
that the real sensors perform.

The mapping is a physically-motivated approximation rather than a full
rigid-body dynamics simulation: joint angles accumulate into link
orientations (the iiwa alternates roll/pitch-like axes), linear acceleration
combines the gravity projection with tangential and centripetal terms, and
angular velocity projects the upstream joint rates onto the local axes.  What
matters for the anomaly-detection study is that the channels are smooth,
action-dependent, mutually consistent and corrupted by sensor-like noise --
which this model preserves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .quaternion import euler_to_quaternion, quaternion_normalize

__all__ = ["IMUConfig", "IMUSensorModel", "IMUReading"]

_GRAVITY = 9.81
# Approximate distance of each IMU mount point from its joint axis [m].
_LINK_RADII = np.array([0.10, 0.15, 0.12, 0.14, 0.10, 0.08, 0.06])


@dataclass(frozen=True)
class IMUConfig:
    """Noise and filtering parameters of the simulated IMU."""

    sample_rate: float = 200.0
    accel_noise_std: float = 0.05       # m/s^2
    gyro_noise_std: float = 0.2         # deg/s
    quaternion_noise_std: float = 0.002
    temperature_noise_std: float = 0.05  # degC
    ambient_temperature: float = 24.0    # degC
    heating_coefficient: float = 1.5     # degC of warm-up per unit mean |velocity|
    # Motion-induced vibration: mechanical structures shake when accelerating,
    # so measurement scatter grows with joint acceleration and rate.  This is
    # what makes fast segments genuinely harder to forecast than dwell phases
    # (and is the property VARADE's variance head keys on).
    vibration_accel_gain: float = 0.35   # extra accel std per rad/s^2 of joint accel
    vibration_gyro_gain: float = 2.5     # extra gyro std (deg/s) per rad/s of joint rate
    # Structural resonance excited by joint accelerations: an oscillatory
    # component whose amplitude follows the motion intensity and whose phase
    # drifts randomly.  A collision rings the same structure, only much
    # harder, so anomalies are an amplified version of a pattern the model has
    # seen (and has learned to attribute uncertainty to) during training.
    resonance_hz: float = 12.0
    resonance_accel_gain: float = 0.8    # m/s^2 of ringing per rad/s^2 of joint accel
    resonance_gyro_gain: float = 5.0     # deg/s of ringing per rad/s of joint rate
    resonance_phase_jitter: float = 0.15  # rad of phase random walk per sample
    kalman_process_variance: float = 5e-4
    kalman_measurement_variance: float = 5e-3
    apply_kalman: bool = True


@dataclass
class IMUReading:
    """The eleven channels of one joint's IMU over a whole recording."""

    acceleration: np.ndarray   # (T, 3) m/s^2
    angular_velocity: np.ndarray  # (T, 3) deg/s
    quaternion: np.ndarray     # (T, 4)
    temperature: np.ndarray    # (T,)

    def as_matrix(self) -> np.ndarray:
        """Stack the channels in Table-1 order: Acc XYZ, Gyro XYZ, q1-q4, temp."""
        return np.concatenate([
            self.acceleration,
            self.angular_velocity,
            self.quaternion,
            self.temperature[:, None],
        ], axis=1)


class IMUSensorModel:
    """Generate the 11 IMU channels for every joint from a joint trajectory."""

    n_channels_per_joint = 11

    def __init__(self, config: Optional[IMUConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.config = config if config is not None else IMUConfig()
        self._rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------ #
    # Orientation model
    # ------------------------------------------------------------------ #
    @staticmethod
    def _link_euler_angles(positions: np.ndarray) -> np.ndarray:
        """Approximate link orientations, shape (T, n_joints, 3).

        The iiwa's joints alternate between axial (roll/yaw-like) and
        flexion (pitch-like) rotations; cumulative sums over the appropriate
        joints give each link's roll/pitch/yaw.
        """
        n_joints = positions.shape[1]
        roll = np.zeros_like(positions)
        pitch = np.zeros_like(positions)
        yaw = np.zeros_like(positions)
        cumulative_axial = np.zeros(positions.shape[0])
        cumulative_flexion = np.zeros(positions.shape[0])
        for joint in range(n_joints):
            if joint % 2 == 0:
                cumulative_axial = cumulative_axial + positions[:, joint]
            else:
                cumulative_flexion = cumulative_flexion + positions[:, joint]
            yaw[:, joint] = cumulative_axial
            pitch[:, joint] = cumulative_flexion
            roll[:, joint] = 0.3 * positions[:, joint]
        return np.stack([roll, pitch, yaw], axis=2)

    # ------------------------------------------------------------------ #
    # Channel generation
    # ------------------------------------------------------------------ #
    def measure(self, positions: np.ndarray, velocities: np.ndarray,
                accelerations: np.ndarray, joint_index: int) -> IMUReading:
        """Generate the IMU reading of one joint over the whole trajectory.

        ``positions``/``velocities``/``accelerations`` have shape
        ``(T, n_joints)`` in rad, rad/s and rad/s^2.
        """
        self._validate(positions, velocities, accelerations)
        n_joints = positions.shape[1]
        if not 0 <= joint_index < n_joints:
            raise ValueError(f"joint_index must be in [0, {n_joints}), got {joint_index}")
        cfg = self.config
        n_samples = positions.shape[0]
        radius = _LINK_RADII[joint_index % len(_LINK_RADII)]

        euler = self._link_euler_angles(positions)[:, joint_index, :]
        roll, pitch, yaw = euler[:, 0], euler[:, 1], euler[:, 2]

        # Gravity projected into the (approximate) local frame.
        gravity_x = _GRAVITY * np.sin(pitch)
        gravity_y = -_GRAVITY * np.sin(roll) * np.cos(pitch)
        gravity_z = _GRAVITY * np.cos(roll) * np.cos(pitch)

        # Motion-induced terms: tangential (r * alpha) and centripetal (r * omega^2),
        # accumulated over the joints at or before this sensor.
        upstream = slice(0, joint_index + 1)
        omega_sq = (velocities[:, upstream] ** 2).sum(axis=1)
        alpha = accelerations[:, upstream].sum(axis=1)
        tangential = radius * alpha
        centripetal = radius * omega_sq

        accel = np.stack([
            gravity_x + tangential,
            gravity_y + 0.5 * tangential,
            gravity_z - centripetal,
        ], axis=1)

        # Angular velocity: local joint rate plus a fraction of upstream rates,
        # converted to deg/s as the real sensor reports.
        own_rate = velocities[:, joint_index]
        upstream_rate = velocities[:, :joint_index].sum(axis=1) if joint_index else np.zeros(n_samples)
        gyro = np.rad2deg(np.stack([
            0.2 * upstream_rate + 0.1 * own_rate,
            own_rate * np.cos(0.3 * positions[:, joint_index]),
            own_rate * np.sin(0.3 * positions[:, joint_index]) + 0.3 * upstream_rate,
        ], axis=1))

        quaternion = euler_to_quaternion(roll, pitch, yaw)

        # Temperature: ambient plus a slow exponential-moving-average warm-up
        # driven by recent joint activity.
        activity = np.abs(own_rate)
        warmup = np.empty(n_samples)
        state = 0.0
        smoothing = min(1.0, 1.0 / (cfg.sample_rate * 30.0))  # ~30 s time constant
        for index in range(n_samples):
            state = state + smoothing * (activity[index] - state)
            warmup[index] = state
        temperature = cfg.ambient_temperature + cfg.heating_coefficient * warmup

        # Structural resonance: oscillatory ringing whose amplitude follows the
        # motion intensity and whose phase drifts, so the exact next value is
        # genuinely uncertain even though the envelope is predictable.
        activity_accel = np.abs(accelerations[:, upstream]).sum(axis=1)
        activity_rate = np.abs(velocities[:, upstream]).sum(axis=1)
        times = np.arange(n_samples) / cfg.sample_rate
        phase_walk = np.cumsum(self._rng.normal(0.0, cfg.resonance_phase_jitter, n_samples))
        base_phase = 2.0 * np.pi * cfg.resonance_hz * times + phase_walk
        joint_phase = 2.0 * np.pi * joint_index / max(n_joints, 1)
        ringing = np.sin(base_phase + joint_phase)
        accel = accel + (cfg.resonance_accel_gain * activity_accel * ringing)[:, None] \
            * np.array([1.0, 0.7, 0.4])[None, :]
        gyro = gyro + (cfg.resonance_gyro_gain * activity_rate * ringing)[:, None] \
            * np.array([0.5, 1.0, 0.8])[None, :]

        # Measurement noise: a constant sensor floor plus motion-induced
        # vibration that scales with how hard the joint is working.
        accel_std = cfg.accel_noise_std + cfg.vibration_accel_gain * activity_accel
        gyro_std = cfg.gyro_noise_std + cfg.vibration_gyro_gain * activity_rate
        accel = accel + self._rng.normal(0.0, 1.0, size=accel.shape) * accel_std[:, None]
        gyro = gyro + self._rng.normal(0.0, 1.0, size=gyro.shape) * gyro_std[:, None]
        quaternion = quaternion_normalize(
            quaternion + self._rng.normal(0.0, cfg.quaternion_noise_std, size=quaternion.shape)
        )
        temperature = temperature + self._rng.normal(
            0.0, cfg.temperature_noise_std, size=n_samples
        )

        if cfg.apply_kalman:
            accel = self._kalman_smooth(accel)
            gyro = self._kalman_smooth(gyro)

        return IMUReading(
            acceleration=accel,
            angular_velocity=gyro,
            quaternion=quaternion,
            temperature=temperature,
        )

    def measure_all(self, positions: np.ndarray, velocities: np.ndarray,
                    accelerations: np.ndarray) -> np.ndarray:
        """Channels of every joint stacked into a (T, 7*11) matrix."""
        self._validate(positions, velocities, accelerations)
        n_joints = positions.shape[1]
        blocks = [
            self.measure(positions, velocities, accelerations, joint).as_matrix()
            for joint in range(n_joints)
        ]
        return np.concatenate(blocks, axis=1)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate(positions: np.ndarray, velocities: np.ndarray,
                  accelerations: np.ndarray) -> None:
        for name, array in (("positions", positions), ("velocities", velocities),
                            ("accelerations", accelerations)):
            if np.asarray(array).ndim != 2:
                raise ValueError(f"{name} must be a 2-D array (T, n_joints)")
        if not (positions.shape == velocities.shape == accelerations.shape):
            raise ValueError("positions, velocities and accelerations must share a shape")

    def _kalman_smooth(self, values: np.ndarray) -> np.ndarray:
        """Vectorised steady-state Kalman (exponential) smoothing per column.

        A full per-sample Kalman filter converges to a constant gain for the
        random-walk model; we use that steady-state gain directly so long
        recordings stay cheap to generate while matching the filter's
        behaviour after the first few samples.
        """
        cfg = self.config
        q, r = cfg.kalman_process_variance, cfg.kalman_measurement_variance
        # Steady-state variance: p = (q + sqrt(q^2 + 4qr)) / 2, gain = (p)/(p+r)
        p = 0.5 * (q + np.sqrt(q * q + 4.0 * q * r))
        gain = (p + q) / (p + q + r)
        smoothed = np.empty_like(values)
        state = values[0].copy()
        smoothed[0] = state
        for index in range(1, values.shape[0]):
            state = state + gain * (values[index] - state)
            smoothed[index] = state
        return smoothed
