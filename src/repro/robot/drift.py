"""Sensor-drift injection for simulated robot-cell recordings.

The collision injector (:mod:`repro.robot.anomalies`) produces *anomalies*
-- short transients the detector should flag.  This module produces
*concept drift*: persistent changes to the measurement chain itself that a
deployed detector should absorb by recalibrating, not alarm on forever.
The drift signatures mirror what ages on a real cell:

* an IMU losing its zero after a knock (accelerometer offset step);
* an analogue gain change after an amplifier/ADC recalibration;
* a temperature-like slow ramp on a channel group;
* a sensor or its fieldbus link dying (channels freeze).

:class:`RecordingDriftInjector` applies one of these to a
:class:`~repro.robot.plant.RobotRecording` and returns a new recording plus
the per-sample drift mask -- the ground truth the adaptation metrics in
:mod:`repro.eval.adaptation` measure detection delay against.  The
recording's anomaly ``labels`` are left untouched: drifted samples are
*not* anomalous, which is exactly the distinction the adaptive runtime has
to learn.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from ..data.drift import (
    inject_channel_dropout,
    inject_gradual_ramp,
    inject_mean_shift,
    inject_sensor_gain,
)
from .plant import RobotRecording

__all__ = ["SensorDriftEvent", "RecordingDriftInjector"]


@dataclass(frozen=True)
class SensorDriftEvent:
    """One applied drift: what changed, where, and from when."""

    kind: str                    # one of repro.data.drift.DRIFT_KINDS
    start_index: int
    channel_names: Tuple[str, ...]
    magnitude: float             # offset, gain factor, or fill value


class RecordingDriftInjector:
    """Apply persistent sensor-drift signatures to a robot recording."""

    def __init__(self, recording: RobotRecording) -> None:
        self.recording = recording

    def _channel_indices(self, names: Sequence[str]) -> np.ndarray:
        index = []
        for name in names:
            try:
                index.append(self.recording.channel_names.index(name))
            except ValueError as error:
                raise KeyError(f"unknown channel {name!r}") from error
        return np.asarray(index, dtype=np.int64)

    def joint_channels(self, joint: int,
                       suffixes: Sequence[str] = ("AccX", "AccY", "AccZ")
                       ) -> Tuple[str, ...]:
        """Names of one joint's sensor channels (default: the accelerometer)."""
        return tuple(f"sensor_id_{joint}_{suffix}" for suffix in suffixes)

    def _apply(self, kind: str, data: np.ndarray, mask: np.ndarray,
               names: Sequence[str], magnitude: float
               ) -> Tuple[RobotRecording, SensorDriftEvent]:
        drifted = replace(self.recording, data=data)
        event = SensorDriftEvent(kind=kind,
                                 start_index=int(np.flatnonzero(mask)[0]),
                                 channel_names=tuple(names),
                                 magnitude=magnitude)
        return drifted, event

    def offset_step(self, start: int, names: Sequence[str],
                    offset: float) -> Tuple[RobotRecording, SensorDriftEvent]:
        """A zero-offset step on the named channels (knocked IMU)."""
        data, mask = inject_mean_shift(self.recording.data, start, offset,
                                       self._channel_indices(names))
        return self._apply("mean_shift", data, mask, names, offset)

    def gain_change(self, start: int, names: Sequence[str],
                    gain: float) -> Tuple[RobotRecording, SensorDriftEvent]:
        """A multiplicative gain change (recalibrated amplifier/ADC)."""
        data, mask = inject_sensor_gain(self.recording.data, start, gain,
                                        self._channel_indices(names))
        return self._apply("sensor_gain", data, mask, names, gain)

    def slow_ramp(self, start: int, names: Sequence[str], magnitude: float,
                  ramp_len: Optional[int] = None
                  ) -> Tuple[RobotRecording, SensorDriftEvent]:
        """An offset fading in over ``ramp_len`` samples (wear, thermal trend).

        ``ramp_len`` defaults to ten seconds of the recording's sample rate.
        """
        if ramp_len is None:
            ramp_len = max(int(10.0 * self.recording.sample_rate), 1)
        data, mask = inject_gradual_ramp(self.recording.data, start, magnitude,
                                         ramp_len, self._channel_indices(names))
        return self._apply("gradual_ramp", data, mask, names, magnitude)

    def sensor_dropout(self, start: int, names: Sequence[str],
                       fill: float = 0.0
                       ) -> Tuple[RobotRecording, SensorDriftEvent]:
        """The named channels freeze at ``fill`` (dead sensor or link)."""
        data, mask = inject_channel_dropout(self.recording.data, start,
                                            self._channel_indices(names),
                                            fill=fill)
        return self._apply("channel_dropout", data, mask, names, fill)

    @staticmethod
    def drift_mask(recording: RobotRecording, event: SensorDriftEvent) -> np.ndarray:
        """Rebuild the per-sample drift mask implied by ``event``."""
        mask = np.zeros(recording.n_samples, dtype=bool)
        mask[event.start_index:] = True
        return mask
