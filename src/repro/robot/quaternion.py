"""Quaternion utilities.

The paper converts IMU orientation angles to quaternions (a 4-component
representation standard in robotics) because wrap-around at +/-180 degrees
confuses pattern-recognition models.  This module provides the conversions
and algebra used by the IMU sensor model.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "euler_to_quaternion",
    "quaternion_to_euler",
    "quaternion_multiply",
    "quaternion_conjugate",
    "quaternion_normalize",
    "axis_angle_to_quaternion",
    "quaternion_slerp",
]


def euler_to_quaternion(roll: np.ndarray, pitch: np.ndarray, yaw: np.ndarray) -> np.ndarray:
    """Convert ZYX Euler angles (radians) to quaternions ``(w, x, y, z)``.

    Inputs may be scalars or arrays of identical shape; the output stacks the
    four components along the last axis.
    """
    roll = np.asarray(roll, dtype=np.float64)
    pitch = np.asarray(pitch, dtype=np.float64)
    yaw = np.asarray(yaw, dtype=np.float64)

    half_roll, half_pitch, half_yaw = roll / 2.0, pitch / 2.0, yaw / 2.0
    cr, sr = np.cos(half_roll), np.sin(half_roll)
    cp, sp = np.cos(half_pitch), np.sin(half_pitch)
    cy, sy = np.cos(half_yaw), np.sin(half_yaw)

    w = cr * cp * cy + sr * sp * sy
    x = sr * cp * cy - cr * sp * sy
    y = cr * sp * cy + sr * cp * sy
    z = cr * cp * sy - sr * sp * cy
    return np.stack([w, x, y, z], axis=-1)


def quaternion_to_euler(quaternion: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convert quaternions ``(..., 4)`` back to ZYX Euler angles (radians)."""
    quaternion = np.asarray(quaternion, dtype=np.float64)
    w, x, y, z = (quaternion[..., 0], quaternion[..., 1],
                  quaternion[..., 2], quaternion[..., 3])

    sinr_cosp = 2.0 * (w * x + y * z)
    cosr_cosp = 1.0 - 2.0 * (x * x + y * y)
    roll = np.arctan2(sinr_cosp, cosr_cosp)

    sinp = np.clip(2.0 * (w * y - z * x), -1.0, 1.0)
    pitch = np.arcsin(sinp)

    siny_cosp = 2.0 * (w * z + x * y)
    cosy_cosp = 1.0 - 2.0 * (y * y + z * z)
    yaw = np.arctan2(siny_cosp, cosy_cosp)
    return roll, pitch, yaw


def quaternion_multiply(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Hamilton product of two quaternion arrays ``(..., 4)``."""
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    w1, x1, y1, z1 = first[..., 0], first[..., 1], first[..., 2], first[..., 3]
    w2, x2, y2, z2 = second[..., 0], second[..., 1], second[..., 2], second[..., 3]
    return np.stack([
        w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
        w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
        w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
        w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
    ], axis=-1)


def quaternion_conjugate(quaternion: np.ndarray) -> np.ndarray:
    """Conjugate (inverse for unit quaternions)."""
    quaternion = np.asarray(quaternion, dtype=np.float64)
    result = quaternion.copy()
    result[..., 1:] = -result[..., 1:]
    return result


def quaternion_normalize(quaternion: np.ndarray) -> np.ndarray:
    """Normalise to unit length (guards against zero norm)."""
    quaternion = np.asarray(quaternion, dtype=np.float64)
    norm = np.linalg.norm(quaternion, axis=-1, keepdims=True)
    return quaternion / np.maximum(norm, 1e-12)


def axis_angle_to_quaternion(axis: np.ndarray, angle: np.ndarray) -> np.ndarray:
    """Quaternion for a rotation of ``angle`` radians about ``axis`` (3-vector)."""
    axis = np.asarray(axis, dtype=np.float64)
    angle = np.asarray(angle, dtype=np.float64)
    axis = axis / np.maximum(np.linalg.norm(axis, axis=-1, keepdims=True), 1e-12)
    half = angle / 2.0
    sin_half = np.sin(half)
    w = np.cos(half)
    xyz = axis * sin_half[..., None]
    return np.concatenate([w[..., None], xyz], axis=-1)


def quaternion_slerp(start: np.ndarray, end: np.ndarray, fraction: float) -> np.ndarray:
    """Spherical linear interpolation between two unit quaternions."""
    start = quaternion_normalize(start)
    end = quaternion_normalize(end)
    dot = float(np.clip(np.sum(start * end, axis=-1), -1.0, 1.0))
    if dot < 0.0:
        end = -end
        dot = -dot
    if dot > 0.9995:
        result = start + fraction * (end - start)
        return quaternion_normalize(result)
    theta = np.arccos(dot)
    sin_theta = np.sin(theta)
    weight_start = np.sin((1.0 - fraction) * theta) / sin_theta
    weight_end = np.sin(fraction * theta) / sin_theta
    return quaternion_normalize(weight_start * start + weight_end * end)
