"""Full robot-cell data-stream assembly.

Combines the action library, trajectory planner, IMU sensor models, power
meter and collision injector into the 86-channel multivariate stream the
paper records from its production cell:

* 1 action-ID channel,
* 7 joints x 11 IMU channels = 77 joint channels,
* 8 power channels.

Two recording modes mirror the paper's protocol: a *normal* recording that
cycles through every action (used for training, 390 minutes in the paper)
and a *collision* recording in which random collision anomalies are injected
(used for testing, 82 minutes and 125 collisions in the paper).  Durations
are parameters so the reproduction can run at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .actions import ActionLibrary, DEFAULT_NUM_ACTIONS
from .anomalies import CollisionConfig, CollisionEvent, CollisionInjector
from .power import PowerMeterConfig, PowerMeterModel
from .sensors import IMUConfig, IMUSensorModel
from .trajectory import JointTrajectory

__all__ = ["RobotRecording", "RobotCellConfig", "RobotCellSimulator"]

N_JOINTS = 7
CHANNELS_PER_JOINT = 11
N_POWER_CHANNELS = 8
N_TOTAL_CHANNELS = 1 + N_JOINTS * CHANNELS_PER_JOINT + N_POWER_CHANNELS  # 86


@dataclass
class RobotRecording:
    """A recorded multivariate stream with ground-truth anomaly labels."""

    data: np.ndarray                 # (T, 86)
    channel_names: Tuple[str, ...]
    labels: np.ndarray               # (T,) 0 = normal, 1 = anomalous
    sample_rate: float
    events: Tuple[CollisionEvent, ...] = ()
    action_sequence: Tuple[int, ...] = ()

    @property
    def n_samples(self) -> int:
        return int(self.data.shape[0])

    @property
    def n_channels(self) -> int:
        return int(self.data.shape[1])

    @property
    def duration_s(self) -> float:
        return self.n_samples / self.sample_rate

    @property
    def anomaly_fraction(self) -> float:
        return float(self.labels.mean()) if self.labels.size else 0.0

    def channel(self, name: str) -> np.ndarray:
        """Return one channel by its Table-1 name."""
        try:
            index = self.channel_names.index(name)
        except ValueError as error:
            raise KeyError(f"unknown channel {name!r}") from error
        return self.data[:, index]


@dataclass(frozen=True)
class RobotCellConfig:
    """Configuration of the simulated production cell."""

    sample_rate: float = 200.0
    num_actions: int = DEFAULT_NUM_ACTIONS
    action_seed: int = 7
    imu: IMUConfig = field(default_factory=IMUConfig)
    power: PowerMeterConfig = field(default_factory=PowerMeterConfig)
    collisions: CollisionConfig = field(default_factory=CollisionConfig)


class RobotCellSimulator:
    """Simulate the instrumented KUKA cell end to end."""

    def __init__(self, config: Optional[RobotCellConfig] = None,
                 seed: int = 0) -> None:
        self.config = config if config is not None else RobotCellConfig()
        self._rng = np.random.default_rng(seed)
        self.actions = ActionLibrary(
            num_actions=self.config.num_actions, seed=self.config.action_seed
        )
        self._imu_model = IMUSensorModel(config=self.config.imu, rng=self._rng)
        self._power_model = PowerMeterModel(config=self.config.power, rng=self._rng)
        self._collision_injector = CollisionInjector(
            config=self.config.collisions,
            sample_rate=self.config.sample_rate,
            rng=self._rng,
        )

    # ------------------------------------------------------------------ #
    # Channel naming (Table 1)
    # ------------------------------------------------------------------ #
    @staticmethod
    def channel_names() -> Tuple[str, ...]:
        """The 86 channel names in stream order, following Table 1."""
        names: List[str] = ["action_id"]
        per_joint = ("AccX", "AccY", "AccZ", "GyroX", "GyroY", "GyroZ",
                     "q1", "q2", "q3", "q4", "temp")
        for joint in range(N_JOINTS):
            for suffix in per_joint:
                names.append(f"sensor_id_{joint}_{suffix}")
        names.extend(["current", "frequency", "phase_angle", "power",
                      "power_factor", "reactive_power", "voltage", "import_energy"])
        return tuple(names)

    # ------------------------------------------------------------------ #
    # Trajectory assembly
    # ------------------------------------------------------------------ #
    def _assemble_trajectory(self, duration_s: float,
                             shuffle: bool) -> Tuple[JointTrajectory, np.ndarray, List[int]]:
        """Concatenate action trajectories until ``duration_s`` is covered.

        Returns the trajectory, a per-sample action-ID array, and the action
        sequence played.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        sample_rate = self.config.sample_rate
        schedule = self.actions.schedule(duration_s, rng=self._rng, shuffle=shuffle)

        pieces_pos: List[np.ndarray] = []
        pieces_vel: List[np.ndarray] = []
        pieces_acc: List[np.ndarray] = []
        action_ids: List[np.ndarray] = []
        total_samples_target = int(duration_s * sample_rate)
        total = 0
        played: List[int] = []
        for action_id in schedule:
            trajectory = self.actions[action_id].plan(sample_rate)
            pieces_pos.append(trajectory.positions)
            pieces_vel.append(trajectory.velocities)
            pieces_acc.append(trajectory.accelerations)
            action_ids.append(np.full(trajectory.n_samples, action_id, dtype=np.float64))
            played.append(action_id)
            total += trajectory.n_samples
            if total >= total_samples_target:
                break

        positions = np.concatenate(pieces_pos)[:total_samples_target]
        velocities = np.concatenate(pieces_vel)[:total_samples_target]
        accelerations = np.concatenate(pieces_acc)[:total_samples_target]
        ids = np.concatenate(action_ids)[:total_samples_target]
        times = np.arange(positions.shape[0]) / sample_rate
        trajectory = JointTrajectory(times=times, positions=positions,
                                     velocities=velocities, accelerations=accelerations)
        return trajectory, ids, played

    # ------------------------------------------------------------------ #
    # Recording modes
    # ------------------------------------------------------------------ #
    def record_normal(self, duration_s: float, shuffle: bool = False) -> RobotRecording:
        """Record normal (anomaly-free) operation for ``duration_s`` seconds."""
        trajectory, action_ids, played = self._assemble_trajectory(duration_s, shuffle)
        joint_channels = self._imu_model.measure_all(
            trajectory.positions, trajectory.velocities, trajectory.accelerations
        )
        power_channels = self._power_model.measure(
            trajectory.positions, trajectory.velocities, trajectory.accelerations
        )
        data = np.concatenate([action_ids[:, None], joint_channels, power_channels], axis=1)
        labels = np.zeros(data.shape[0], dtype=np.int64)
        return RobotRecording(
            data=data,
            channel_names=self.channel_names(),
            labels=labels,
            sample_rate=self.config.sample_rate,
            events=(),
            action_sequence=tuple(played),
        )

    def record_collision_experiment(self, duration_s: float,
                                    n_collisions: Optional[int] = None,
                                    shuffle: bool = True) -> RobotRecording:
        """Record a collision experiment: normal operation plus injected collisions."""
        trajectory, action_ids, played = self._assemble_trajectory(duration_s, shuffle)
        n_samples = trajectory.positions.shape[0]
        events = self._collision_injector.sample_events(
            n_samples, n_joints=N_JOINTS, n_collisions=n_collisions
        )

        joint_channels = self._imu_model.measure_all(
            trajectory.positions, trajectory.velocities, trajectory.accelerations
        )
        joint_channels = self._collision_injector.apply_to_joint_channels(
            joint_channels, events, n_joints=N_JOINTS, channels_per_joint=CHANNELS_PER_JOINT
        )
        surge = self._collision_injector.power_surge(n_samples, events)
        power_channels = self._power_model.measure(
            trajectory.positions, trajectory.velocities, trajectory.accelerations,
            extra_power=surge,
        )
        data = np.concatenate([action_ids[:, None], joint_channels, power_channels], axis=1)
        labels = self._collision_injector.labels(n_samples, events)
        return RobotRecording(
            data=data,
            channel_names=self.channel_names(),
            labels=labels,
            sample_rate=self.config.sample_rate,
            events=tuple(events),
            action_sequence=tuple(played),
        )
