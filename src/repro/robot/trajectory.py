"""Joint-space trajectory generation.

Pick-and-place actions are expressed as sequences of joint-space waypoints;
between waypoints the simulator interpolates with quintic polynomials
(zero velocity and acceleration at both ends), which is the smooth motion
profile industrial controllers generate.  Velocities and accelerations are
obtained analytically, so the simulated IMU signals are consistent with the
positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["QuinticSegment", "JointTrajectory", "plan_waypoint_trajectory"]


@dataclass(frozen=True)
class QuinticSegment:
    """A quintic polynomial segment between two joint configurations."""

    start: np.ndarray       # (n_joints,)
    end: np.ndarray         # (n_joints,)
    duration: float         # seconds

    def evaluate(self, t: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Position, velocity and acceleration at times ``t`` in [0, duration].

        Returns arrays of shape ``(len(t), n_joints)``.
        """
        t = np.asarray(t, dtype=np.float64)
        tau = np.clip(t / self.duration, 0.0, 1.0)
        # Quintic with zero boundary velocity/acceleration: s(tau)=10t^3-15t^4+6t^5
        s = 10.0 * tau ** 3 - 15.0 * tau ** 4 + 6.0 * tau ** 5
        s_dot = (30.0 * tau ** 2 - 60.0 * tau ** 3 + 30.0 * tau ** 4) / self.duration
        s_ddot = (60.0 * tau - 180.0 * tau ** 2 + 120.0 * tau ** 3) / self.duration ** 2
        delta = (self.end - self.start)[None, :]
        position = self.start[None, :] + s[:, None] * delta
        velocity = s_dot[:, None] * delta
        acceleration = s_ddot[:, None] * delta
        return position, velocity, acceleration


@dataclass
class JointTrajectory:
    """A sampled joint trajectory with analytic derivatives."""

    times: np.ndarray          # (T,)
    positions: np.ndarray      # (T, n_joints) [rad]
    velocities: np.ndarray     # (T, n_joints) [rad/s]
    accelerations: np.ndarray  # (T, n_joints) [rad/s^2]

    @property
    def duration(self) -> float:
        return float(self.times[-1] - self.times[0]) if self.times.size else 0.0

    @property
    def n_samples(self) -> int:
        return int(self.times.shape[0])

    @property
    def n_joints(self) -> int:
        return int(self.positions.shape[1])

    def concatenate(self, other: "JointTrajectory") -> "JointTrajectory":
        """Append ``other`` after this trajectory, shifting its time axis."""
        if self.positions.shape[1] != other.positions.shape[1]:
            raise ValueError("joint counts differ")
        offset = self.times[-1] + (self.times[1] - self.times[0]) if self.times.size > 1 else 0.0
        return JointTrajectory(
            times=np.concatenate([self.times, other.times + offset]),
            positions=np.concatenate([self.positions, other.positions]),
            velocities=np.concatenate([self.velocities, other.velocities]),
            accelerations=np.concatenate([self.accelerations, other.accelerations]),
        )


def plan_waypoint_trajectory(waypoints: Sequence[np.ndarray],
                             segment_durations: Sequence[float],
                             sample_rate: float) -> JointTrajectory:
    """Plan a trajectory through joint-space waypoints with quintic segments.

    Parameters
    ----------
    waypoints:
        Sequence of joint configurations, each of shape ``(n_joints,)``.
    segment_durations:
        Duration (seconds) of each of the ``len(waypoints) - 1`` segments.
    sample_rate:
        Output sampling rate in Hz (200 Hz for the paper's IMUs).
    """
    if len(waypoints) < 2:
        raise ValueError("need at least two waypoints")
    if len(segment_durations) != len(waypoints) - 1:
        raise ValueError("need exactly one duration per segment")
    if sample_rate <= 0:
        raise ValueError("sample_rate must be positive")

    dt = 1.0 / sample_rate
    pieces_pos: List[np.ndarray] = []
    pieces_vel: List[np.ndarray] = []
    pieces_acc: List[np.ndarray] = []
    pieces_time: List[np.ndarray] = []
    time_offset = 0.0

    for index, duration in enumerate(segment_durations):
        if duration <= 0:
            raise ValueError("segment durations must be positive")
        start = np.asarray(waypoints[index], dtype=np.float64)
        end = np.asarray(waypoints[index + 1], dtype=np.float64)
        if start.shape != end.shape:
            raise ValueError("all waypoints must have the same shape")
        segment = QuinticSegment(start=start, end=end, duration=float(duration))
        n_steps = max(int(round(duration * sample_rate)), 1)
        local_times = np.arange(n_steps) * dt
        position, velocity, acceleration = segment.evaluate(local_times)
        pieces_pos.append(position)
        pieces_vel.append(velocity)
        pieces_acc.append(acceleration)
        pieces_time.append(local_times + time_offset)
        time_offset += n_steps * dt

    return JointTrajectory(
        times=np.concatenate(pieces_time),
        positions=np.concatenate(pieces_pos),
        velocities=np.concatenate(pieces_vel),
        accelerations=np.concatenate(pieces_acc),
    )
