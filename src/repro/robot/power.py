"""Single-phase energy-meter model.

The paper instruments the robot cell with an Eastron SDM230 single-phase
meter (via Modbus and an ESP-32 bridge) exposing eight quantities: current,
frequency, phase angle, power, power factor, reactive power, voltage -- and,
with the import-energy counter, eight "Power Channels" in Table 1.

The model derives electrical power from a joint-torque proxy (gravity load +
inertial term + viscous friction), adds the constant draw of the controller
and industrial PC, and produces mutually consistent electrical quantities
with realistic mains noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["PowerMeterConfig", "PowerMeterModel", "POWER_CHANNEL_NAMES"]

POWER_CHANNEL_NAMES = (
    "current",
    "frequency",
    "phase_angle",
    "power",
    "power_factor",
    "reactive_power",
    "voltage",
    "import_energy",
)


@dataclass(frozen=True)
class PowerMeterConfig:
    """Electrical and noise parameters of the simulated meter."""

    sample_rate: float = 200.0
    nominal_voltage: float = 230.0       # V RMS
    nominal_frequency: float = 50.0      # Hz
    idle_power: float = 180.0            # W: controller + industrial PC baseline
    torque_power_gain: float = 35.0      # W per unit torque-speed product
    gravity_torque_gain: float = 20.0    # W per unit gravity-load torque
    friction_power_gain: float = 8.0     # W per unit squared joint speed
    base_power_factor: float = 0.93
    power_factor_load_droop: float = 0.08
    voltage_noise_std: float = 0.4       # V
    frequency_noise_std: float = 0.01    # Hz
    power_noise_std: float = 2.0         # W
    # Slow mains dynamics: without them the voltage and frequency channels are
    # constants plus sensor noise, and the per-channel min-max normalisation
    # would blow that noise up to full scale.
    voltage_drift_amplitude: float = 2.5     # V of slow mains drift
    voltage_drift_period_s: float = 210.0
    voltage_sag_ohm: float = 0.35            # line resistance causing load sag
    frequency_drift_amplitude: float = 0.045  # Hz of slow grid wander
    frequency_drift_period_s: float = 160.0


class PowerMeterModel:
    """Generate the eight power channels from a joint trajectory."""

    n_channels = len(POWER_CHANNEL_NAMES)

    # Rough per-joint gravity-load weights (proximal joints carry more mass).
    _GRAVITY_WEIGHTS = np.array([1.0, 1.6, 0.8, 1.1, 0.4, 0.3, 0.15])
    _INERTIA_WEIGHTS = np.array([1.2, 1.5, 0.9, 0.8, 0.35, 0.25, 0.1])

    def __init__(self, config: Optional[PowerMeterConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.config = config if config is not None else PowerMeterConfig()
        self._rng = rng if rng is not None else np.random.default_rng()

    def mechanical_power(self, positions: np.ndarray, velocities: np.ndarray,
                         accelerations: np.ndarray) -> np.ndarray:
        """Mechanical power proxy (W) drawn by the motors over the recording."""
        positions = np.asarray(positions, dtype=np.float64)
        velocities = np.asarray(velocities, dtype=np.float64)
        accelerations = np.asarray(accelerations, dtype=np.float64)
        if positions.shape != velocities.shape or positions.shape != accelerations.shape:
            raise ValueError("positions, velocities and accelerations must share a shape")
        cfg = self.config
        n_joints = positions.shape[1]
        gravity_weights = self._GRAVITY_WEIGHTS[:n_joints]
        inertia_weights = self._INERTIA_WEIGHTS[:n_joints]

        gravity_torque = np.abs(np.cos(positions)) * gravity_weights
        inertial_torque = np.abs(accelerations) * inertia_weights
        torque_speed = (gravity_torque + inertial_torque) * np.abs(velocities)
        friction = velocities ** 2

        power = (cfg.torque_power_gain * torque_speed.sum(axis=1)
                 + cfg.gravity_torque_gain * gravity_torque.sum(axis=1)
                 + cfg.friction_power_gain * friction.sum(axis=1))
        return power

    def measure(self, positions: np.ndarray, velocities: np.ndarray,
                accelerations: np.ndarray,
                extra_power: Optional[np.ndarray] = None) -> np.ndarray:
        """Generate the (T, 8) power-channel matrix.

        ``extra_power`` lets the anomaly injector superimpose collision-induced
        power spikes (motor current surge when the arm is obstructed).
        """
        cfg = self.config
        mechanical = self.mechanical_power(positions, velocities, accelerations)
        active_power = cfg.idle_power + mechanical
        if extra_power is not None:
            extra_power = np.asarray(extra_power, dtype=np.float64)
            if extra_power.shape != active_power.shape:
                raise ValueError("extra_power must match the trajectory length")
            active_power = active_power + extra_power
        n_samples = active_power.shape[0]

        active_power = active_power + self._rng.normal(0.0, cfg.power_noise_std, n_samples)
        active_power = np.maximum(active_power, 1.0)

        times = np.arange(n_samples) / cfg.sample_rate
        voltage_drift = cfg.voltage_drift_amplitude * np.sin(
            2.0 * np.pi * times / cfg.voltage_drift_period_s
            + self._rng.uniform(0.0, 2.0 * np.pi)
        )
        voltage_sag = cfg.voltage_sag_ohm * active_power / cfg.nominal_voltage
        voltage = cfg.nominal_voltage + voltage_drift - voltage_sag \
            + self._rng.normal(0.0, cfg.voltage_noise_std, n_samples)
        frequency_drift = cfg.frequency_drift_amplitude * np.sin(
            2.0 * np.pi * times / cfg.frequency_drift_period_s
            + self._rng.uniform(0.0, 2.0 * np.pi)
        )
        frequency = cfg.nominal_frequency + frequency_drift + self._rng.normal(
            0.0, cfg.frequency_noise_std, n_samples
        )

        # Power factor droops slightly with load (inverter drives behave this way).
        load_fraction = np.clip(mechanical / max(mechanical.max(), 1.0), 0.0, 1.0)
        power_factor = np.clip(
            cfg.base_power_factor - cfg.power_factor_load_droop * load_fraction, 0.5, 1.0
        )
        phase_angle = np.rad2deg(np.arccos(power_factor))
        apparent_power = active_power / power_factor
        reactive_power = np.sqrt(np.maximum(apparent_power ** 2 - active_power ** 2, 0.0))
        current = apparent_power / voltage
        # Import energy counter in kWh (cumulative).
        import_energy = np.cumsum(active_power) / cfg.sample_rate / 3.6e6

        return np.stack([
            current,
            frequency,
            phase_angle,
            active_power,
            power_factor,
            reactive_power,
            voltage,
            import_energy,
        ], axis=1)
