"""Library of robot actions (machine services).

The paper's KUKA robot exposes 30 unique actions (pick-and-place machine
services) activated through an OPC UA server; the training recording cycles
through all of them.  This module generates a deterministic library of 30
actions, each defined by joint-space waypoints and segment durations.  The
waypoints are derived from a seeded random generator so every action has a
distinct, repeatable motion signature -- which is what lets a detector learn
"normal behaviour" per action.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .kinematics import JOINT_LIMITS_RAD, KukaLBRIiwa
from .trajectory import JointTrajectory, plan_waypoint_trajectory

__all__ = ["RobotAction", "ActionLibrary", "DEFAULT_NUM_ACTIONS"]

DEFAULT_NUM_ACTIONS = 30

# The home (rest) configuration between actions, well inside the joint limits.
_HOME_CONFIGURATION = np.deg2rad(np.array([0.0, 30.0, 0.0, -60.0, 0.0, 45.0, 0.0]))


@dataclass(frozen=True)
class RobotAction:
    """One machine service: a named waypoint path with per-segment durations."""

    action_id: int
    name: str
    waypoints: Sequence[np.ndarray]
    segment_durations: Sequence[float]

    @property
    def duration(self) -> float:
        """Nominal duration of the action in seconds."""
        return float(sum(self.segment_durations))

    def plan(self, sample_rate: float) -> JointTrajectory:
        """Sample the action's joint trajectory at ``sample_rate`` Hz."""
        return plan_waypoint_trajectory(self.waypoints, self.segment_durations, sample_rate)


class ActionLibrary:
    """Deterministic library of pick-and-place actions for the simulator."""

    def __init__(self, num_actions: int = DEFAULT_NUM_ACTIONS, seed: int = 7,
                 min_waypoints: int = 3, max_waypoints: int = 6,
                 min_segment_duration: float = 0.8, max_segment_duration: float = 2.5,
                 amplitude_scale: float = 0.55) -> None:
        if num_actions < 1:
            raise ValueError("num_actions must be at least 1")
        if min_waypoints < 2 or max_waypoints < min_waypoints:
            raise ValueError("invalid waypoint count range")
        if min_segment_duration <= 0 or max_segment_duration < min_segment_duration:
            raise ValueError("invalid segment duration range")
        if not 0.0 < amplitude_scale <= 1.0:
            raise ValueError("amplitude_scale must be in (0, 1]")
        self.num_actions = num_actions
        self.seed = seed
        self._kinematics = KukaLBRIiwa()
        self._actions: Dict[int, RobotAction] = {}
        rng = np.random.default_rng(seed)
        for action_id in range(num_actions):
            self._actions[action_id] = self._build_action(
                action_id, rng, min_waypoints, max_waypoints,
                min_segment_duration, max_segment_duration, amplitude_scale,
            )

    def _build_action(self, action_id: int, rng: np.random.Generator,
                      min_waypoints: int, max_waypoints: int,
                      min_duration: float, max_duration: float,
                      amplitude_scale: float) -> RobotAction:
        n_waypoints = int(rng.integers(min_waypoints, max_waypoints + 1))
        waypoints: List[np.ndarray] = [_HOME_CONFIGURATION.copy()]
        for _ in range(n_waypoints - 2):
            target = rng.uniform(-amplitude_scale, amplitude_scale, size=7) * JOINT_LIMITS_RAD
            waypoints.append(self._kinematics.clamp_joints(target))
        waypoints.append(_HOME_CONFIGURATION.copy())
        durations = rng.uniform(min_duration, max_duration, size=len(waypoints) - 1)
        return RobotAction(
            action_id=action_id,
            name=f"pick_and_place_{action_id:02d}",
            waypoints=tuple(waypoints),
            segment_durations=tuple(float(d) for d in durations),
        )

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.num_actions

    def __getitem__(self, action_id: int) -> RobotAction:
        if action_id not in self._actions:
            raise KeyError(f"unknown action id {action_id}")
        return self._actions[action_id]

    def __iter__(self):
        return iter(self._actions.values())

    @property
    def action_ids(self) -> List[int]:
        return sorted(self._actions)

    def total_cycle_duration(self) -> float:
        """Duration of one full cycle through every action, in seconds."""
        return float(sum(action.duration for action in self))

    def schedule(self, total_duration: float,
                 rng: Optional[np.random.Generator] = None,
                 shuffle: bool = False) -> List[int]:
        """Sequence of action ids filling ``total_duration`` seconds.

        Actions are cycled uniformly (matching the paper's uniform
        distribution of actions over the recording); with ``shuffle`` the
        order within each cycle is permuted.
        """
        if total_duration <= 0:
            raise ValueError("total_duration must be positive")
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        sequence: List[int] = []
        elapsed = 0.0
        while elapsed < total_duration:
            cycle = list(self.action_ids)
            if shuffle:
                rng.shuffle(cycle)
            for action_id in cycle:
                sequence.append(action_id)
                elapsed += self[action_id].duration
                if elapsed >= total_duration:
                    break
        return sequence
