"""Consistent-hash ring placing stream ids onto worker names.

The ring must satisfy two properties the rest of the cluster leans on:

* **Cross-process determinism.**  The router, tests, and any external
  tooling must agree on placement.  Python's builtin ``hash`` is salted
  per process (``PYTHONHASHSEED``), so points are derived from
  ``blake2b`` digests instead -- the same ``(node, stream)`` pair maps
  identically everywhere, forever.
* **Minimal movement.**  Adding or removing one node only re-homes the
  streams whose arc it owned; everything else stays put.  Virtual nodes
  (``virtual_nodes`` points per worker) keep the arcs small and the
  load split even.

>>> ring = HashRing(["w0", "w1"])
>>> ring.owner("stream-7") in {"w0", "w1"}
True
>>> ring.owner("stream-7") == HashRing(["w1", "w0"]).owner("stream-7")
True
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

__all__ = ["HashRing"]

#: default virtual nodes per worker -- enough to keep the max/min load
#: ratio near 1 for small fleets without bloating the sorted point list
DEFAULT_VIRTUAL_NODES = 64


def _point(key: str) -> int:
    """A stable 64-bit ring coordinate for ``key`` (blake2b, unsalted)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Deterministic consistent-hash ring over named nodes.

    Nodes are worker names; keys are stream ids.  Placement depends only
    on the *set* of node names and ``virtual_nodes`` -- never on
    insertion order or the process computing it.
    """

    def __init__(self, nodes: Iterable[str] = (),
                 virtual_nodes: int = DEFAULT_VIRTUAL_NODES) -> None:
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be at least 1")
        self.virtual_nodes = virtual_nodes
        self._nodes: set = set()
        self._points: List[Tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    # -- membership --------------------------------------------------------- #
    @property
    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        if not node:
            raise ValueError("node name must be a non-empty string")
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for i in range(self.virtual_nodes):
            # Ties between distinct nodes at the same point are broken by
            # the (point, node) sort order -- still deterministic.
            bisect.insort(self._points, (_point(f"{node}#{i}"), node))

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]

    # -- placement ---------------------------------------------------------- #
    def owner(self, key: str) -> str:
        """The node owning ``key`` (first point clockwise from its hash)."""
        if not self._points:
            raise LookupError("the ring has no nodes")
        # (point, "") sorts before every (point, node) entry, so a key
        # hashing exactly onto a vnode point is owned by that vnode.
        index = bisect.bisect_left(self._points, (_point(key), ""))
        if index == len(self._points):
            index = 0   # wrap past twelve o'clock
        return self._points[index][1]

    def assignments(self, keys: Iterable[str]) -> Dict[str, str]:
        """Map every key to its owner in one pass."""
        return {key: self.owner(key) for key in keys}

    def moved_keys(self, keys: Iterable[str],
                   other: "HashRing") -> List[str]:
        """Keys whose owner differs between this ring and ``other``."""
        return [key for key in keys
                if self.owner(key) != other.owner(key)]
