"""Fleet-level read-outs: merge per-worker snapshots and metrics pages.

Workers answer the ``snapshot`` wire op with a JSON document containing
one :meth:`~repro.serve.ServiceStats.to_dict` blob per hosted tenant.
:class:`ClusterStats` folds a fleet of those back into exact aggregate
counters -- histograms merge bin-by-bin via
:meth:`~repro.edge.StreamingHistogram.merge`, so the fleet p99 is
computed from the *combined* distribution, not averaged from per-worker
p99s (which would be meaningless).

:func:`merge_metrics_pages` does the analogous job for the Prometheus
text exposition pages: counters, gauges and summary ``_sum``/``_count``
series sum across workers; summary *quantile* series take the
per-worker **max** -- the conservative fleet read (the true merged
quantile is unrecoverable from per-worker quantiles, and an alarm that
over-reports latency beats one that hides a slow shard).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from ..edge.monitor import StreamingHistogram
from ..serve.service import ServiceStats

__all__ = ["ClusterStats", "merge_metrics_pages"]


def _blank_stats() -> ServiceStats:
    """An all-zero ServiceStats (the merge identity for an empty fleet)."""
    return ServiceStats(
        sessions_opened=0, sessions_closed=0, live_sessions=0,
        samples_pushed=0, samples_scored=0, samples_dropped=0,
        flushes=0, scoring_time_s=0.0,
        queue_delay_histogram=StreamingHistogram.log_spaced(1e-6, 60.0),
        occupancy_histogram=StreamingHistogram.linear(0.5, 1.5, 1),
    )


def _copy(histogram: StreamingHistogram) -> StreamingHistogram:
    return StreamingHistogram.from_state(histogram.to_state())


def _merge_stats(parts: List[ServiceStats]) -> ServiceStats:
    if not parts:
        raise ValueError("cannot merge an empty list of stats")
    queue_delay = _copy(parts[0].queue_delay_histogram)
    occupancy = _copy(parts[0].occupancy_histogram)
    for other in parts[1:]:
        queue_delay.merge(other.queue_delay_histogram)
        occupancy.merge(other.occupancy_histogram)
    return ServiceStats(
        sessions_opened=sum(p.sessions_opened for p in parts),
        sessions_closed=sum(p.sessions_closed for p in parts),
        live_sessions=sum(p.live_sessions for p in parts),
        samples_pushed=sum(p.samples_pushed for p in parts),
        samples_scored=sum(p.samples_scored for p in parts),
        samples_dropped=sum(p.samples_dropped for p in parts),
        flushes=sum(p.flushes for p in parts),
        scoring_time_s=sum(p.scoring_time_s for p in parts),
        alarms_total=sum(p.alarms_total for p in parts),
        sessions_exported=sum(p.sessions_exported for p in parts),
        sessions_imported=sum(p.sessions_imported for p in parts),
        queue_delay_histogram=queue_delay,
        occupancy_histogram=occupancy,
    )


@dataclass
class ClusterStats:
    """Aggregated fleet telemetry built from per-worker snapshots."""

    #: number of worker snapshots merged
    workers: int
    #: exact fleet-wide aggregate (histograms merged bin-by-bin)
    total: ServiceStats
    #: per-tenant aggregates (each merged across every worker hosting it)
    tenants: Dict[str, ServiceStats] = field(default_factory=dict)
    #: per-worker totals, keyed by worker name (each merged across tenants)
    per_worker: Dict[str, ServiceStats] = field(default_factory=dict)

    @classmethod
    def from_snapshots(
            cls, snapshots: Mapping[str, Mapping]) -> "ClusterStats":
        """Merge ``{worker_name: snapshot}`` documents into fleet stats.

        Each snapshot is the reply body of the ``snapshot`` wire op:
        ``{"services": {tenant: {"fingerprint": ..., "stats": {...}}}}``.
        """
        tenant_parts: Dict[str, List[ServiceStats]] = {}
        worker_parts: Dict[str, List[ServiceStats]] = {}
        for worker, snapshot in snapshots.items():
            for tenant, entry in snapshot.get("services", {}).items():
                stats = ServiceStats.from_dict(entry["stats"])
                tenant_parts.setdefault(tenant, []).append(stats)
                worker_parts.setdefault(worker, []).append(stats)
        every = [s for parts in worker_parts.values() for s in parts]
        return cls(
            workers=len(snapshots),
            total=_merge_stats(every) if every else _blank_stats(),
            tenants={t: _merge_stats(p) for t, p in tenant_parts.items()},
            per_worker={w: _merge_stats(p) for w, p in worker_parts.items()},
        )


# --------------------------------------------------------------------------- #
# Prometheus text page merging
# --------------------------------------------------------------------------- #
_SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>\S+)\s*$")


def merge_metrics_pages(pages: List[str]) -> str:
    """Merge Prometheus text pages from several workers into one fleet page.

    Counters, gauges, and summary ``_sum``/``_count`` series are summed
    per ``(name, labels)``; summary *quantile* series report the
    per-worker **max** (conservative -- see the module docstring).
    ``HELP``/``TYPE`` comments come from the first page declaring each
    family; family and series order follows first appearance.
    """
    types: Dict[str, str] = {}
    headers: Dict[str, List[str]] = {}
    family_order: List[str] = []
    series_order: List[Tuple[str, str]] = []
    values: Dict[Tuple[str, str], float] = {}
    series_family: Dict[Tuple[str, str], str] = {}

    for page in pages:
        family = ""
        for line in page.splitlines():
            if not line.strip():
                continue
            if line.startswith("#"):
                parts = line.split(None, 3)
                if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                    family = parts[2]
                    if family not in headers:
                        headers[family] = []
                        family_order.append(family)
                    if parts[1] == "TYPE" and len(parts) == 4:
                        types.setdefault(family, parts[3].strip())
                    if line not in headers[family]:
                        headers[family].append(line)
                continue
            match = _SAMPLE_RE.match(line)
            if match is None:
                continue
            name = match.group("name")
            labels = match.group("labels") or ""
            try:
                value = float(match.group("value"))
            except ValueError:
                continue
            base = _family_of(name, types)
            key = (name, labels)
            if key not in values:
                series_order.append(key)
                series_family[key] = base
                values[key] = value
            elif _is_quantile(name, labels, base, types):
                values[key] = max(values[key], value)
            else:
                values[key] += value

    lines: List[str] = []
    emitted: set = set()
    for family in family_order:
        lines.extend(headers[family])
        for key in series_order:
            if series_family.get(key) == family and key not in emitted:
                emitted.add(key)
                lines.append(f"{key[0]}{key[1]} {_format(values[key])}")
    for key in series_order:    # series with no HELP/TYPE header
        if key not in emitted:
            emitted.add(key)
            lines.append(f"{key[0]}{key[1]} {_format(values[key])}")
    return "\n".join(lines) + "\n" if lines else ""


def _family_of(name: str, types: Dict[str, str]) -> str:
    """Strip summary/histogram suffixes back to the declared family name."""
    for suffix in ("_sum", "_count", "_bucket"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return name


def _is_quantile(name: str, labels: str, family: str,
                 types: Dict[str, str]) -> bool:
    if types.get(family) != "summary":
        return False
    return name == family and "quantile=" in labels


def _format(value: float) -> str:
    return repr(int(value)) if value == int(value) else repr(value)
