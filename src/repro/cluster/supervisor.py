"""Worker process lifecycle: spawn, handshake, health, restart.

The supervisor owns the OS processes of a worker fleet.  Each worker is
spawned as ``python -m repro.cluster.worker`` with an ephemeral port and
a per-worker *port file*; the worker writes its bound endpoint there
atomically (temp file + ``os.replace``) once listening, so the handshake
can never observe a half-written line.  The supervisor polls that file
-- bailing out early if the process dies first -- and hands the endpoint
to the router.

All methods are blocking (subprocess + file polling); the async router
calls them via ``asyncio.to_thread`` so the event loop never stalls on a
spawn.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from .worker import WorkerConfig

__all__ = ["WorkerHandle", "WorkerSupervisor"]

#: how long a freshly spawned worker may take to write its port file
SPAWN_TIMEOUT_S = 60.0


@dataclass
class WorkerHandle:
    """One supervised worker process and its bound endpoint."""

    name: str
    process: subprocess.Popen
    endpoint: str               #: "HOST:PORT" for tcp, socket path for uds
    transport: str              #: "tcp" | "uds"
    restarts: int = 0           #: times this named worker was respawned
    config: Optional[WorkerConfig] = field(default=None, repr=False)

    @property
    def pid(self) -> int:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.poll() is None


class WorkerSupervisor:
    """Spawn and babysit ``python -m repro.cluster.worker`` processes."""

    def __init__(self, run_dir: Optional[Path] = None,
                 spawn_timeout_s: float = SPAWN_TIMEOUT_S) -> None:
        if run_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            run_dir = Path(self._tempdir.name)
        else:
            self._tempdir = None
            run_dir.mkdir(parents=True, exist_ok=True)
        self.run_dir = run_dir
        self.spawn_timeout_s = spawn_timeout_s
        self.workers: Dict[str, WorkerHandle] = {}

    # -- spawning ------------------------------------------------------------ #
    def _command(self, config: WorkerConfig, port_file: Path) -> List[str]:
        command = [sys.executable, "-m", "repro.cluster.worker",
                   "--name", config.name,
                   "--transport", config.transport,
                   "--host", config.host,
                   "--port", str(config.port),
                   "--port-file", str(port_file)]
        for tenant, artifact in config.artifacts.items():
            command += ["--artifact", f"{tenant}={artifact}"]
        if config.default_tenant is not None:
            command += ["--default-tenant", config.default_tenant]
        if config.transport == "uds":
            uds_path = config.uds_path or \
                self.run_dir / f"{config.name}.sock"
            command += ["--uds-path", str(uds_path)]
        if config.max_batch is not None:
            command += ["--max-batch", str(config.max_batch)]
        if config.max_delay_ms is not None:
            command += ["--max-delay-ms", str(config.max_delay_ms)]
        if config.max_queue is not None:
            command += ["--max-queue", str(config.max_queue)]
        if config.backpressure is not None:
            command += ["--backpressure", config.backpressure]
        if config.incremental is False:
            command += ["--no-incremental"]
        return command

    def spawn(self, config: WorkerConfig) -> WorkerHandle:
        """Start one worker and block until its endpoint handshake lands."""
        if config.name in self.workers and self.workers[config.name].alive():
            raise ValueError(f"worker {config.name!r} is already running")
        port_file = self.run_dir / f"{config.name}.port"
        port_file.unlink(missing_ok=True)
        environment = dict(os.environ)
        src_root = str(Path(__file__).resolve().parent.parent.parent)
        existing = environment.get("PYTHONPATH")
        environment["PYTHONPATH"] = src_root if not existing \
            else os.pathsep.join([src_root, existing])
        process = subprocess.Popen(
            self._command(config, port_file), env=environment,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            endpoint = self._await_port_file(process, port_file, config.name)
        except Exception:
            process.kill()
            process.wait()
            raise
        restarts = 0
        previous = self.workers.get(config.name)
        if previous is not None:
            restarts = previous.restarts + 1
        handle = WorkerHandle(name=config.name, process=process,
                              endpoint=endpoint, transport=config.transport,
                              restarts=restarts, config=config)
        self.workers[config.name] = handle
        return handle

    def _await_port_file(self, process: subprocess.Popen,
                         port_file: Path, name: str) -> str:
        deadline = time.monotonic() + self.spawn_timeout_s
        while time.monotonic() < deadline:
            if process.poll() is not None:
                output = process.stdout.read() if process.stdout else ""
                raise RuntimeError(
                    f"worker {name!r} exited with code "
                    f"{process.returncode} before binding:\n{output}")
            if port_file.exists():
                text = port_file.read_text(encoding="utf-8").strip()
                if text:
                    return text
            time.sleep(0.02)
        raise RuntimeError(
            f"worker {name!r} did not write {port_file} within "
            f"{self.spawn_timeout_s}s")

    # -- lifecycle ----------------------------------------------------------- #
    def respawn(self, name: str) -> WorkerHandle:
        """Restart a (crashed) worker under its original config."""
        handle = self.workers.get(name)
        if handle is None or handle.config is None:
            raise ValueError(f"no spawn record for worker {name!r}")
        if handle.alive():
            raise ValueError(f"worker {name!r} is still alive")
        # surface the dead worker's last words (its stderr is piped here)
        # before the pipe is dropped -- the only post-mortem there is
        if handle.process.stdout is not None:
            output = handle.process.stdout.read()
            handle.process.stdout.close()
            if output.strip():
                print(f"worker {name!r} died (exit "
                      f"{handle.process.returncode}); last output:\n"
                      f"{output.rstrip()}", file=sys.stderr, flush=True)
        return self.spawn(handle.config)

    def alive(self, name: str) -> bool:
        handle = self.workers.get(name)
        return handle is not None and handle.alive()

    def stop(self, name: str, timeout_s: float = 10.0) -> None:
        """Terminate one worker (SIGTERM, then SIGKILL) and forget it."""
        handle = self.workers.pop(name, None)
        if handle is None:
            return
        if handle.alive():
            handle.process.terminate()
            try:
                handle.process.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:
                handle.process.kill()
                handle.process.wait()
        if handle.process.stdout is not None:
            handle.process.stdout.close()

    def stop_all(self, timeout_s: float = 10.0) -> None:
        for name in list(self.workers):
            self.stop(name, timeout_s=timeout_s)
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def __enter__(self) -> "WorkerSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop_all()
