"""A cluster worker: one wire server, one AnomalyService per tenant.

A worker is the unit the :class:`~repro.cluster.ShardRouter` shards
streams across.  It is a full :class:`~repro.serve.AnomalyWireServer`
(same binary/JSON wire protocol, same micro-batching service underneath)
with three cluster-specific traits:

* **Multi-tenant.**  It hosts one :class:`~repro.serve.AnomalyService`
  per packaged artifact, keyed by tenant name *and* by
  ``artifact_fingerprint`` -- an ``open`` frame's tenant key picks the
  detector the stream is scored with.
* **Handoff enabled.**  Workers are cluster-internal endpoints, so
  ``export_session``/``import_session`` are honoured (the rebalance
  primitive).  Never expose a worker port to untrusted clients --
  imported session blobs are pickles.
* **Supervised.**  ``python -m repro.cluster.worker`` prints a
  ``worker <name> pid <pid>`` line, writes its bound endpoint to the
  supervisor's port file (atomically), and serves until told to stop.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Optional

from ..serve.service import AnomalyService
from ..serve.tcp import PROTOCOLS, AnomalyWireServer
from ..serve.transport import Transport
from .stats import ClusterStats, merge_metrics_pages

__all__ = ["TenantWireServer", "WorkerConfig", "build_worker_server"]


@dataclass
class WorkerConfig:
    """Everything a worker process needs to build its server."""

    #: worker name (ring node name; must be unique in the fleet)
    name: str
    #: tenant name -> packaged artifact directory
    artifacts: Dict[str, Path] = field(default_factory=dict)
    #: tenant used when an ``open`` carries no tenant key
    default_tenant: Optional[str] = None
    transport: str = "tcp"
    host: str = "127.0.0.1"
    port: int = 0
    uds_path: Optional[Path] = None
    #: ServiceConfig overrides applied on top of each artifact's spec
    max_batch: Optional[int] = None
    max_delay_ms: Optional[float] = None
    max_queue: Optional[int] = None
    backpressure: Optional[str] = None
    incremental: Optional[bool] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("worker name must be non-empty")
        if not self.artifacts:
            raise ValueError("a worker needs at least one tenant artifact")
        if self.transport not in ("tcp", "uds"):
            raise ValueError(
                f"unknown worker transport {self.transport!r} "
                f"(expected 'tcp' or 'uds')")
        if self.default_tenant is None and len(self.artifacts) == 1:
            self.default_tenant = next(iter(self.artifacts))
        if self.default_tenant is not None \
                and self.default_tenant not in self.artifacts:
            raise ValueError(
                f"default tenant {self.default_tenant!r} has no artifact; "
                f"tenants: {sorted(self.artifacts)}")


class TenantWireServer(AnomalyWireServer):
    """A wire server fronting one service per tenant artifact.

    ``services`` maps tenant names to *un-started* services;
    :meth:`~repro.serve.AnomalyWireServer.serve_forever` starts and stops
    all of them.  Stream ops resolve their service through the tenant key
    on the ``open`` (or ``import_session``) frame -- by tenant name or by
    the artifact's content fingerprint -- and the stream-to-tenant map is
    maintained so closes, exports, and alarms stay with the right
    detector.  ``stats`` and ``metrics`` answer with fleet-style merges
    across the hosted tenants (histograms exactly, summary quantiles
    conservatively).
    """

    def __init__(self, services: Dict[str, AnomalyService],
                 transport: Transport, *,
                 fingerprints: Optional[Dict[str, str]] = None,
                 default_tenant: Optional[str] = None,
                 allow_shutdown: bool = True,
                 protocols: Iterable[str] = PROTOCOLS) -> None:
        if not services:
            raise ValueError("a tenant server needs at least one service")
        self._services = dict(services)
        #: tenant -> artifact fingerprint (also accepted as a tenant key)
        self._fingerprints = dict(fingerprints or {})
        unknown = set(self._fingerprints) - set(self._services)
        if unknown:
            raise ValueError(
                f"fingerprints for unknown tenants: {sorted(unknown)}")
        if default_tenant is None and len(self._services) == 1:
            default_tenant = next(iter(self._services))
        if default_tenant is not None and default_tenant not in self._services:
            raise ValueError(
                f"default tenant {default_tenant!r} is not hosted; "
                f"tenants: {sorted(self._services)}")
        self.default_tenant = default_tenant
        anchor = self._services[default_tenant] if default_tenant is not None \
            else next(iter(self._services.values()))
        super().__init__(anchor, transport, allow_shutdown=allow_shutdown,
                         allow_handoff=True, protocols=protocols)
        #: live stream id -> tenant name (closed/exported streams drop out)
        self._stream_tenants: Dict[str, str] = {}

    # -- tenant resolution --------------------------------------------------- #
    def _resolve_tenant(self, key: Optional[str]) -> str:
        if key is None or (key == "default" and key not in self._services):
            if self.default_tenant is None:
                raise ValueError(
                    f"this worker hosts {len(self._services)} tenants and "
                    f"has no default; the open must carry a tenant key "
                    f"(one of {sorted(self._services)})")
            return self.default_tenant
        if key in self._services:
            return key
        for tenant, fingerprint in self._fingerprints.items():
            if key == fingerprint:
                return tenant
        raise ValueError(
            f"unknown tenant {key!r}; this worker hosts "
            f"{sorted(self._services)}")

    # -- AnomalyWireServer hooks --------------------------------------------- #
    def _all_services(self):
        return tuple(self._services.values())

    def _named_services(self) -> Dict[str, AnomalyService]:
        return dict(self._services)

    def _service_for(self, message) -> AnomalyService:
        return self._services[self._resolve_tenant(message.get("tenant"))]

    def _tenant_for_stream(self, stream_id: str) -> str:
        tenant = self._stream_tenants.get(stream_id)
        if tenant is not None:
            return tenant
        return self._resolve_tenant(None)

    def _register_stream(self, stream_id: str, message) -> None:
        self._stream_tenants[stream_id] = \
            self._resolve_tenant(message.get("tenant"))

    def _forget_stream(self, stream_id: str) -> None:
        self._stream_tenants.pop(stream_id, None)

    def _merged_stats(self):
        snapshot = self._snapshot()
        return ClusterStats.from_snapshots({"self": snapshot}).total

    def _metrics_text(self) -> str:
        pages = [service.metrics_text()
                 for service in self._services.values()
                 if service.observability is not None]
        if not pages:
            return self.service.metrics_text()   # the standard rejection
        return pages[0] if len(pages) == 1 else merge_metrics_pages(pages)

    def _snapshot(self):
        return {"services": {
            tenant: {"fingerprint": self._fingerprints.get(tenant),
                     "stats": service.stats().to_dict()}
            for tenant, service in self._services.items()}}

    def _note_swap(self, service) -> None:
        # A promotion/rollback changed the service's artifact; re-key the
        # tenant's fingerprint so fingerprint-addressed opens keep working.
        for tenant, hosted in self._services.items():
            if hosted is service:
                if service.artifact_fingerprint is not None:
                    self._fingerprints[tenant] = service.artifact_fingerprint
                else:
                    self._fingerprints.pop(tenant, None)


def build_worker_server(config: WorkerConfig) -> TenantWireServer:
    """Load every tenant artifact and assemble the worker's wire server."""
    from ..pipeline import Pipeline
    from ..serialize import artifact_fingerprint
    from ..serve import ServiceConfig, make_transport

    services: Dict[str, AnomalyService] = {}
    fingerprints: Dict[str, str] = {}
    for tenant, artifact_dir in config.artifacts.items():
        pipeline = Pipeline.load(artifact_dir)
        overrides = {"observability": True}
        for name in ("max_batch", "max_delay_ms", "max_queue",
                     "backpressure", "incremental"):
            value = getattr(config, name)
            if value is not None:
                overrides[name] = value
        spec = pipeline.spec.service
        service_config = spec.config(**overrides) if spec is not None \
            else ServiceConfig(**overrides)
        services[tenant] = pipeline.deploy_service(config=service_config)
        fingerprints[tenant] = artifact_fingerprint(artifact_dir)
    transport = make_transport(config.transport, host=config.host,
                               port=config.port, uds_path=config.uds_path)
    return TenantWireServer(services, transport, fingerprints=fingerprints,
                            default_tenant=config.default_tenant)


# --------------------------------------------------------------------------- #
# ``python -m repro.cluster.worker`` entry point
# --------------------------------------------------------------------------- #
def _parse_artifact(text: str) -> tuple:
    """``tenant=dir`` or a bare ``dir`` (tenant ``default``)."""
    tenant, sep, path = text.partition("=")
    if not sep:
        return "default", Path(text)
    if not tenant or not path:
        raise ValueError(f"--artifact needs TENANT=DIR, got {text!r}")
    return tenant, Path(path)


def main(argv=None) -> int:
    import argparse
    import asyncio

    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="One shard of a repro serving cluster (supervised; "
                    "not a user-facing entry point -- use `repro serve "
                    "--workers N`).")
    parser.add_argument("--name", required=True, help="worker/ring name")
    parser.add_argument("--artifact", action="append", required=True,
                        metavar="TENANT=DIR",
                        help="tenant artifact (repeatable; bare DIR means "
                             "tenant 'default')")
    parser.add_argument("--default-tenant", default=None)
    parser.add_argument("--transport", choices=("tcp", "uds"), default="tcp")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--uds-path", type=Path, default=None)
    parser.add_argument("--port-file", type=Path, default=None,
                        help="endpoint handshake file (written atomically)")
    parser.add_argument("--max-batch", type=int, default=None)
    parser.add_argument("--max-delay-ms", type=float, default=None)
    parser.add_argument("--max-queue", type=int, default=None)
    parser.add_argument("--backpressure",
                        choices=("block", "drop_oldest", "error"),
                        default=None)
    parser.add_argument("--no-incremental", action="store_true")
    args = parser.parse_args(argv)

    artifacts: Dict[str, Path] = {}
    for item in args.artifact:
        tenant, path = _parse_artifact(item)
        if tenant in artifacts:
            parser.error(f"duplicate tenant {tenant!r}")
        artifacts[tenant] = path
    try:
        config = WorkerConfig(
            name=args.name, artifacts=artifacts,
            default_tenant=args.default_tenant,
            transport=args.transport, host=args.host, port=args.port,
            uds_path=args.uds_path,
            max_batch=args.max_batch, max_delay_ms=args.max_delay_ms,
            max_queue=args.max_queue, backpressure=args.backpressure,
            incremental=False if args.no_incremental else None)
        server = build_worker_server(config)
    except (ValueError, OSError) as error:
        parser.error(str(error))
    print(f"worker {args.name} pid {os.getpid()} tenants "
          f"{'/'.join(sorted(artifacts))}", flush=True)
    try:
        asyncio.run(server.serve_forever(port_file=args.port_file))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
