"""In-process cluster runner: supervisor + router on a background thread.

Tests, benchmarks, and embedding code need a whole cluster -- worker
subprocesses, the shard router, its event loop -- stood up and torn down
as one context manager from synchronous code:

```python
with ClusterHarness([worker_config("w0"), worker_config("w1")]) as cluster:
    with BinaryClient(port=cluster.port) as client:
        client.open("stream-1")
    cluster.add_worker(worker_config("w2"))     # live rebalance
```

The harness owns one thread running ``asyncio`` with the
:class:`~repro.cluster.ShardRouter`; fleet reshapes are submitted onto
that loop thread-safely.  Workers are real ``python -m
repro.cluster.worker`` subprocesses, so what the harness exercises is
exactly what ``repro serve --workers N`` deploys.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path
from typing import Coroutine, List, Optional

from ..serve.transport import TCPTransport
from .router import RouterConfig, ShardRouter
from .supervisor import WorkerSupervisor
from .worker import WorkerConfig

__all__ = ["ClusterHarness"]

#: generous bound on full-cluster startup (N worker spawns + router bind)
STARTUP_TIMEOUT_S = 120.0


class ClusterHarness:
    """Run a worker fleet + shard router from synchronous code."""

    def __init__(self, worker_configs: List[WorkerConfig], *,
                 router_config: Optional[RouterConfig] = None,
                 host: str = "127.0.0.1",
                 run_dir: Optional[Path] = None) -> None:
        if not worker_configs:
            raise ValueError("need at least one worker config")
        self.worker_configs = list(worker_configs)
        self.router_config = router_config or RouterConfig()
        self.host = host
        self.run_dir = run_dir
        self.supervisor: Optional[WorkerSupervisor] = None
        self.router: Optional[ShardRouter] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle ----------------------------------------------------------- #
    def start(self) -> "ClusterHarness":
        self._thread = threading.Thread(target=self._thread_main,
                                        name="cluster-harness", daemon=True)
        self._thread.start()
        if not self._ready.wait(STARTUP_TIMEOUT_S):
            self.stop()
            raise RuntimeError("cluster did not come up in time")
        if self._startup_error is not None:
            self.stop()
            raise RuntimeError(
                "cluster startup failed") from self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None and self.router is not None:
            try:
                self._loop.call_soon_threadsafe(self.router.request_stop)
            except RuntimeError:
                pass   # loop already closed
        if self._thread is not None:
            self._thread.join(STARTUP_TIMEOUT_S)
            self._thread = None

    def __enter__(self) -> "ClusterHarness":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- thread body --------------------------------------------------------- #
    def _thread_main(self) -> None:
        self.supervisor = WorkerSupervisor(run_dir=self.run_dir)
        try:
            for config in self.worker_configs:
                self.supervisor.spawn(config)
            asyncio.run(self._serve())
        except BaseException as error:   # surface to start()
            self._startup_error = error
        finally:
            self.supervisor.stop_all()
            self._ready.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.router = ShardRouter(self.supervisor,
                                  TCPTransport(self.host, 0),
                                  config=self.router_config)
        ready: asyncio.Event = asyncio.Event()
        task = asyncio.create_task(self.router.serve_forever(ready=ready))
        ready_task = asyncio.create_task(ready.wait())
        try:
            await asyncio.wait({task, ready_task},
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            ready_task.cancel()
        if task.done():
            await task      # propagate the bind/startup failure
            return
        self.port = self.router.bound_port
        self._ready.set()
        await task

    # -- thread-safe fleet control ------------------------------------------- #
    def submit(self, coroutine: Coroutine,
               timeout_s: float = STARTUP_TIMEOUT_S):
        """Run a coroutine on the router loop; return its result."""
        if self._loop is None:
            raise RuntimeError("the cluster is not running")
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout_s)

    def add_worker(self, config: WorkerConfig) -> None:
        """Live-join a worker (re-slices the ring, re-homes streams)."""
        self.submit(self.router.add_worker(config))

    def remove_worker(self, name: str) -> None:
        """Live-drain a worker off the ring and stop its process."""
        self.submit(self.router.remove_worker(name))

    def worker_pids(self) -> dict:
        return {name: handle.pid
                for name, handle in self.supervisor.workers.items()}
