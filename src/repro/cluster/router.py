"""The shard router: one front door, N workers, zero client changes.

Clients connect to the router exactly as they would to a single
:class:`~repro.serve.AnomalyWireServer` -- same TCP/UDS endpoint, same
binary/JSON negotiation, same ops.  The router consistent-hashes each
``stream_id`` onto a worker (:class:`~repro.cluster.HashRing`) and
proxies the conversation over a pooled *trunk* connection to that
worker.  Trunks are per ``(worker, protocol)``: a binary client's
float32 push blocks are re-encoded onto a binary trunk (byte-exact) and
a JSON client's float64 samples travel a JSON trunk, so sharding never
changes a score bit.

Fleet shape changes go through a read/write gate.  Stream ops hold the
read side; :meth:`ShardRouter.add_worker` / :meth:`remove_worker` take
the write side, re-slice the ring, and re-home exactly the streams whose
arc moved -- each is drained and exported on its old worker
(``export_session``) and imported on its new one (``import_session``)
before any client push can race it, preserving in-flight completion
order.

Worker crashes are detected by the health loop (and lazily, when a trunk
breaks mid-request).  The supervisor respawns the process; sessions that
lived there restart from an empty window (their scores resume once the
window re-fills -- crash loss is bounded by ``window`` samples), while
every other shard is untouched.

Fleet read-outs: ``stats`` and ``snapshot`` merge per-worker snapshots
through :class:`~repro.cluster.ClusterStats`; ``metrics`` merges the
workers' Prometheus pages (:func:`~repro.cluster.merge_metrics_pages`)
and appends the router's own ``repro_cluster_*`` families.
"""

from __future__ import annotations

import asyncio
import collections
import json
from contextlib import asynccontextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Set, Tuple, Union

from ..obs.metrics import MetricsRegistry
from ..serve import wire
from ..serve.tcp import (BinaryClient, _BinaryServerConnection,
                         _JSONServerConnection, _MalformedRequest,
                         _json_line, _stats_payload, write_endpoint_file)
from ..serve.transport import Transport
from .ring import DEFAULT_VIRTUAL_NODES, HashRing
from .stats import ClusterStats, merge_metrics_pages
from .supervisor import WorkerSupervisor
from .worker import WorkerConfig

__all__ = ["RouterConfig", "ShardRouter"]


@dataclass
class RouterConfig:
    """Knobs of the shard router (spec-level: ``ServiceSpec.cluster``)."""

    virtual_nodes: int = DEFAULT_VIRTUAL_NODES
    #: health-probe / fleet-metrics-refresh period
    health_interval_s: float = 2.0
    #: respawn crashed workers (off = fail their streams' requests)
    restart: bool = True
    #: upper bound on one crash-recovery attempt (respawn + handshake)
    recover_timeout_s: float = 30.0
    #: per-request timeout on worker trunks
    request_timeout_s: float = 30.0


class _AlarmSample:
    """Duck-typed stand-in for ScoredSample in codec ``write_event``."""

    __slots__ = ("stream_id", "index", "score", "threshold", "fingerprint")

    def __init__(self, stream_id: str, index: int, score: float,
                 threshold: float, fingerprint=None) -> None:
        self.stream_id = stream_id
        self.index = index
        self.score = score
        self.threshold = threshold
        self.fingerprint = fingerprint


class _RWGate:
    """Many concurrent stream ops XOR one exclusive rebalance."""

    def __init__(self) -> None:
        self._cond = asyncio.Condition()
        self._readers = 0
        self._writer = False

    @asynccontextmanager
    async def read_locked(self):
        async with self._cond:
            while self._writer:
                await self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            async with self._cond:
                self._readers -= 1
                self._cond.notify_all()

    @asynccontextmanager
    async def write_locked(self):
        async with self._cond:
            while self._writer or self._readers:
                await self._cond.wait()
            self._writer = True
        try:
            yield
        finally:
            async with self._cond:
                self._writer = False
                self._cond.notify_all()


class _Trunk:
    """One pooled connection to a worker, speaking one protocol.

    Requests are FIFO: the worker's dispatch loop answers in order, so a
    deque of futures pairs replies with callers.  Unsolicited alarm
    events are handed to the router for fan-out to the owning clients.
    """

    def __init__(self, router: "ShardRouter", worker: str, protocol: str,
                 reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.router = router
        self.worker = worker
        self.protocol = protocol
        self._reader = reader
        self._writer = writer
        self._send_lock = asyncio.Lock()
        self._pending: Deque[asyncio.Future] = collections.deque()
        self._closed = False
        self._task = asyncio.create_task(self._read_loop())

    @property
    def alive(self) -> bool:
        return not self._closed

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self._closed:
            raise ConnectionError(
                f"trunk to worker {self.worker!r} is down")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        async with self._send_lock:
            if self._closed:
                raise ConnectionError(
                    f"trunk to worker {self.worker!r} is down")
            self._pending.append(future)
            try:
                self._writer.write(self._encode(message))
                await self._writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError) as error:
                self._fail(ConnectionError(str(error)))
                raise ConnectionError(
                    f"trunk to worker {self.worker!r} broke mid-send"
                ) from error
        return await asyncio.wait_for(
            future, self.router.config.request_timeout_s)

    def _encode(self, message: Dict[str, Any]) -> bytes:
        if self.protocol == "binary":
            return wire.encode(BinaryClient._to_frame(message))
        return _json_line(message)

    async def _read_loop(self) -> None:
        try:
            if self.protocol == "binary":
                decoder = wire.FrameDecoder()
                while True:
                    chunk = await self._reader.read(1 << 16)
                    if not chunk:
                        break
                    decoder.feed(chunk)
                    for frame in decoder.frames():
                        await self._deliver(BinaryClient._from_frame(frame))
            else:
                while True:
                    line = await self._reader.readline()
                    if not line:
                        break
                    await self._deliver(json.loads(line.decode("utf-8")))
        except (ConnectionResetError, BrokenPipeError, OSError,
                wire.WireProtocolError, json.JSONDecodeError,
                UnicodeDecodeError) as error:
            self._fail(ConnectionError(str(error)))
            return
        finally:
            self._fail(ConnectionError(
                f"worker {self.worker!r} closed the trunk"))

    async def _deliver(self, message: Dict[str, Any]) -> None:
        if "event" in message:
            await self.router._on_worker_event(self.worker, message)
            return
        if self._pending:
            future = self._pending.popleft()
            if not future.done():
                future.set_result(message)

    def _fail(self, error: Exception) -> None:
        if self._closed:
            return
        self._closed = True
        while self._pending:
            future = self._pending.popleft()
            if not future.done():
                future.set_exception(error)
        self._writer.close()

    async def close(self) -> None:
        self._fail(ConnectionError("trunk closed"))
        self._task.cancel()
        try:
            await self._task
        except (asyncio.CancelledError, Exception):
            pass
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


@dataclass
class _StreamRoute:
    """Everything needed to re-open or re-home one routed stream."""

    stream_id: str
    #: the original open message (replayed after a worker crash)
    open_message: Dict[str, Any]
    #: protocol of the client that opened it (handoffs ride this trunk)
    protocol: str
    #: client connections that ever owned the stream (alarm fan-out)
    conns: Set["_ClientConn"] = field(default_factory=set)
    #: worker session state was lost (crash) -- re-open before next push
    lost: bool = False
    #: the stream was closed; the route lingers only so trailing alarm
    #: events (the worker's forwarder races the close ack) still fan out
    closed: bool = False


class _ClientConn:
    """One accepted client connection on the router's front door."""

    def __init__(self, codec, writer: asyncio.StreamWriter) -> None:
        self.codec = codec
        self.writer = writer
        self.protocol = codec.protocol
        self.owned: List[str] = []


class ShardRouter:
    """Protocol-aware shard proxy over a supervised worker fleet.

    ``supervisor`` must already hold the initial fleet (spawned
    :class:`~repro.cluster.WorkerHandle` per worker).  The router builds
    its hash ring from those names; :meth:`add_worker` /
    :meth:`remove_worker` reshape the fleet at runtime.
    """

    def __init__(self, supervisor: WorkerSupervisor, transport: Transport,
                 *, config: Optional[RouterConfig] = None,
                 allow_shutdown: bool = True) -> None:
        if not supervisor.workers:
            raise ValueError("the supervisor has no workers to route to")
        self.supervisor = supervisor
        self.transport = transport
        self.config = config or RouterConfig()
        self.allow_shutdown = allow_shutdown
        self.ring = HashRing(supervisor.workers,
                             virtual_nodes=self.config.virtual_nodes)
        self._gate = _RWGate()
        self._trunks: Dict[Tuple[str, str], _Trunk] = {}
        self._worker_locks: Dict[str, asyncio.Lock] = {}
        self._streams: Dict[str, _StreamRoute] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping: Optional[asyncio.Event] = None
        self._health_task: Optional[asyncio.Task] = None
        self._metrics_cache = ""
        self._rehomed_total = 0
        self._rebalances_total = 0
        self._alarms_forwarded = 0
        self._proxied: collections.Counter = collections.Counter()
        self.registry = MetricsRegistry()
        self._register_metrics()

    # -- metrics ------------------------------------------------------------- #
    def _live_route_count(self) -> int:
        # closed routes linger for trailing-alarm fan-out; don't count them
        return sum(1 for route in self._streams.values() if not route.closed)

    def _register_metrics(self) -> None:
        registry = self.registry
        registry.gauge(
            "repro_cluster_workers_live",
            "Workers currently alive (supervisor view).",
            fn=lambda: sum(1 for name in self.ring.nodes
                           if self.supervisor.alive(name)))
        registry.gauge(
            "repro_cluster_workers_total",
            "Workers on the hash ring.",
            fn=lambda: len(self.ring))
        registry.counter(
            "repro_cluster_worker_restarts_total",
            "Worker processes respawned after a crash.",
            fn=lambda: sum(handle.restarts for handle
                           in self.supervisor.workers.values()))
        registry.counter(
            "repro_cluster_sessions_rehomed_total",
            "Sessions moved between workers by rebalances.",
            fn=lambda: self._rehomed_total)
        registry.counter(
            "repro_cluster_rebalances_total",
            "Ring reshapes (worker joins + leaves).",
            fn=lambda: self._rebalances_total)
        registry.gauge(
            "repro_cluster_streams_routed",
            "Streams currently routed to a worker.",
            fn=self._live_route_count)
        registry.counter(
            "repro_cluster_alarm_events_forwarded_total",
            "Worker alarm events fanned out to clients.",
            fn=lambda: self._alarms_forwarded)
        self._requests_proxied = registry.counter(
            "repro_cluster_requests_proxied_total",
            "Stream ops forwarded to workers, by op.",
            labels=("op",))

    # -- lifecycle ----------------------------------------------------------- #
    async def serve_forever(self,
                            port_file: Optional[Union[str, Path]] = None,
                            ready: Optional[asyncio.Event] = None) -> None:
        """Listen on the front door until :meth:`request_stop`."""
        self._stopping = asyncio.Event()
        self._server = await self.transport.listen(self._handle_connection)
        self._health_task = asyncio.create_task(self._health_loop())
        try:
            # Seed the scrape cache so a /metrics poll before the first
            # health tick already sees every fleet family (at zero).
            try:
                await self._fleet_metrics()
            except (ConnectionError, asyncio.TimeoutError):
                pass
            if port_file is not None:
                write_endpoint_file(port_file, self.bound_address)
            if ready is not None:
                ready.set()
            await self._stopping.wait()
        finally:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            for trunk in list(self._trunks.values()):
                await trunk.close()
            self._trunks.clear()
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def request_stop(self) -> None:
        if self._stopping is not None:
            self._stopping.set()

    @property
    def bound_address(self) -> str:
        if self._server is None:
            raise RuntimeError("router is not running")
        return self.transport.address_text(self._server)

    @property
    def bound_port(self) -> int:
        from ..serve.tcp import bound_port
        if self._server is None:
            raise RuntimeError("router is not running")
        return bound_port(self._server)

    # -- trunk pool ---------------------------------------------------------- #
    def _worker_lock(self, worker: str) -> asyncio.Lock:
        lock = self._worker_locks.get(worker)
        if lock is None:
            lock = self._worker_locks[worker] = asyncio.Lock()
        return lock

    async def _trunk(self, worker: str, protocol: str) -> _Trunk:
        trunk = self._trunks.get((worker, protocol))
        if trunk is not None and trunk.alive:
            return trunk
        async with self._worker_lock(worker):
            trunk = self._trunks.get((worker, protocol))
            if trunk is not None and trunk.alive:
                return trunk
            handle = self.supervisor.workers.get(worker)
            if handle is None:
                raise ConnectionError(f"no such worker {worker!r}")
            if handle.transport == "uds":
                reader, writer = await asyncio.open_unix_connection(
                    handle.endpoint)
            else:
                host = handle.config.host if handle.config else "127.0.0.1"
                reader, writer = await asyncio.open_connection(
                    host, int(handle.endpoint))
            trunk = _Trunk(self, worker, protocol, reader, writer)
            self._trunks[(worker, protocol)] = trunk
            return trunk

    async def _drop_trunks(self, worker: str) -> None:
        for protocol in ("binary", "json"):
            trunk = self._trunks.pop((worker, protocol), None)
            if trunk is not None:
                await trunk.close()

    # -- crash recovery ------------------------------------------------------ #
    async def _ensure_worker(self, worker: str) -> None:
        """Respawn ``worker`` if its process died; mark its routes lost.

        A trunk error can race the process's actual death (the kernel
        delivers the RST before ``poll()`` observes the exit), so a
        worker that still *looks* alive only gets its dead trunks
        dropped plus a short back-off -- the retry loop in
        :meth:`_stream_op` comes back here until the crash becomes
        visible or the recovery deadline expires.
        """
        async with self._worker_lock(worker):
            if self.supervisor.alive(worker):
                for protocol in ("binary", "json"):
                    trunk = self._trunks.get((worker, protocol))
                    if trunk is not None and not trunk.alive:
                        self._trunks.pop((worker, protocol))
                await asyncio.sleep(0.05)
                return
            await self._mark_worker_lost(worker)
            if not self.config.restart:
                raise ConnectionError(
                    f"worker {worker!r} died and restart is disabled")
            await asyncio.wait_for(
                asyncio.to_thread(self.supervisor.respawn, worker),
                self.config.recover_timeout_s)

    async def _mark_worker_lost(self, worker: str) -> None:
        for protocol in ("binary", "json"):
            trunk = self._trunks.pop((worker, protocol), None)
            if trunk is not None:
                trunk._fail(ConnectionError(f"worker {worker!r} died"))
        for route in self._streams.values():
            if not route.closed \
                    and self.ring.owner(route.stream_id) == worker:
                route.lost = True

    async def _reopen(self, route: _StreamRoute, worker: str) -> None:
        """Replay a lost stream's open on its (respawned) worker."""
        trunk = await self._trunk(worker, route.protocol)
        reply = await trunk.request(route.open_message)
        if not reply.get("ok"):
            raise ConnectionError(
                f"could not re-open stream {route.stream_id!r} on "
                f"worker {worker!r}: {reply.get('error')}")
        route.lost = False

    # -- client connections -------------------------------------------------- #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn: Optional[_ClientConn] = None
        try:
            first = await reader.read(1)
            if first:
                if first[0] == wire.MAGIC[0]:
                    codec = _BinaryServerConnection(reader, writer, first)
                else:
                    codec = _JSONServerConnection(reader, writer, first)
                conn = _ClientConn(codec, writer)
                await self._connection_loop(conn)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if conn is not None:
                await self._cleanup_client(conn)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            except asyncio.CancelledError:
                # Loop teardown cancelled us mid-close; the transport is
                # going away with the loop, so a silent return is clean.
                return

    async def _connection_loop(self, conn: _ClientConn) -> None:
        while True:
            try:
                message = await conn.codec.read_request()
            except _MalformedRequest as error:
                conn.codec.write_error(error)
                try:
                    await conn.writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    return
                if error.fatal:
                    return
                continue
            if message is None:
                return
            reply = await self._dispatch(conn, message)
            conn.codec.write_reply(reply)
            await conn.writer.drain()
            if reply.get("op") == "shutdown" and reply.get("ok"):
                self.request_stop()
                return

    async def _cleanup_client(self, conn: _ClientConn) -> None:
        """A dropped producer must not leak its sessions on the workers."""
        for stream_id in conn.owned:
            route = self._streams.get(stream_id)
            if route is None:
                continue
            route.conns.discard(conn)
            try:
                async with self._gate.read_locked():
                    worker = self.ring.owner(stream_id)
                    trunk = await self._trunk(worker, conn.protocol)
                    await trunk.request({"op": "close", "stream": stream_id})
            except (ConnectionError, asyncio.TimeoutError, LookupError):
                pass
            except asyncio.CancelledError:
                # Router shutdown cancelled the connection callback;
                # the workers are going down with us -- stop cleaning.
                return
            self._streams.pop(stream_id, None)
        # Closed routes linger for alarm fan-out; reap the ones whose
        # last subscribed client just left.
        for stream_id, route in list(self._streams.items()):
            route.conns.discard(conn)
            if route.closed and not route.conns:
                self._streams.pop(stream_id, None)

    # -- dispatch ------------------------------------------------------------ #
    async def _dispatch(self, conn: _ClientConn,
                        message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        try:
            if op == "ping":
                return {"ok": True, "op": "ping"}
            if op in ("open", "push", "close"):
                return await self._stream_op(conn, op, message)
            if op == "stats":
                cluster = await self._cluster_stats()
                return dict(_stats_payload(cluster.total),
                            ok=True, op="stats")
            if op == "snapshot":
                return {"ok": True, "op": "snapshot",
                        "snapshot": await self._fleet_snapshot()}
            if op == "metrics":
                return {"ok": True, "op": "metrics",
                        "text": await self._fleet_metrics()}
            if op == "trace":
                raise ValueError(
                    "trace is per-worker on a cluster; scrape a worker "
                    "endpoint (or its observability port) directly")
            if op in ("export_session", "import_session"):
                raise ValueError(
                    "session handoff is disabled on this server")
            if op == "canary":
                return await self._fleet_canary(message)
            if op == "canary_status":
                return await self._fleet_canary_status(message)
            if op == "canary_stop":
                return await self._fleet_canary_stop(message)
            if op == "promote":
                return await self._fleet_promote(message)
            if op == "rollback":
                return await self._fleet_rollback(message)
            if op == "shutdown":
                if not self.allow_shutdown:
                    raise ValueError("shutdown is disabled on this server")
                return {"ok": True, "op": "shutdown"}
            raise ValueError(f"unknown op {op!r}")
        except asyncio.TimeoutError:
            return {"ok": False, "op": op if isinstance(op, str) else None,
                    "error": "worker did not answer within the trunk "
                             "timeout"}
        except (ValueError, TypeError, KeyError, RuntimeError,
                ConnectionError, LookupError) as error:
            return {"ok": False, "op": op if isinstance(op, str) else None,
                    "error": str(error)}

    async def _stream_op(self, conn: _ClientConn, op: str,
                         message: Dict[str, Any]) -> Dict[str, Any]:
        stream_id = message.get("stream")
        if not isinstance(stream_id, str) or not stream_id:
            raise ValueError(f"op {op!r} needs a 'stream' string")
        self._requests_proxied.labels(op=op).inc()
        async with self._gate.read_locked():
            worker = self.ring.owner(stream_id)
            route = self._streams.get(stream_id)
            # Lazy crash detection: on a trunk error, recover the worker
            # (respawn if dead, reconnect if not) and retry until the
            # recovery deadline -- one bounded stall per crash, never a
            # failed client request for a recoverable blip.
            deadline = asyncio.get_running_loop().time() \
                + self.config.recover_timeout_s
            while True:
                try:
                    if route is not None and route.lost:
                        await self._reopen(route, worker)
                    trunk = await self._trunk(worker, conn.protocol)
                    reply = await trunk.request(message)
                    break
                except ConnectionError:
                    if asyncio.get_running_loop().time() >= deadline:
                        raise
                    await self._ensure_worker(worker)
            self._track_stream(conn, op, message, reply)
            return reply

    def _track_stream(self, conn: _ClientConn, op: str,
                      message: Dict[str, Any],
                      reply: Dict[str, Any]) -> None:
        if not reply.get("ok"):
            return
        stream_id = message["stream"]
        if op in ("open", "push"):
            route = self._streams.get(stream_id)
            if route is None or route.closed:
                open_message = {"op": "open", "stream": stream_id}
                for key in ("max_samples", "tenant"):
                    if message.get(key) is not None:
                        open_message[key] = message[key]
                if route is None:
                    route = _StreamRoute(stream_id, open_message,
                                         conn.protocol)
                    self._streams[stream_id] = route
                else:               # the stream id was re-opened
                    route.open_message = open_message
                    route.protocol = conn.protocol
                    route.closed = False
                    route.lost = False
            route.conns.add(conn)
            if stream_id not in conn.owned:
                conn.owned.append(stream_id)
        elif op == "close":
            # Keep the route for alarm fan-out: the worker's event
            # forwarder may still be writing the close-drain alarms when
            # the close ack lands.  The route dies with its last client.
            route = self._streams.get(stream_id)
            if route is not None:
                route.closed = True
            if stream_id in conn.owned:
                conn.owned.remove(stream_id)

    # -- alarm fan-out ------------------------------------------------------- #
    async def _on_worker_event(self, worker: str,
                               message: Dict[str, Any]) -> None:
        route = self._streams.get(message.get("stream", ""))
        if route is None:
            return
        sample = _AlarmSample(message["stream"], message["index"],
                              message["score"], message["threshold"],
                              message.get("fingerprint"))
        for conn in list(route.conns):
            try:
                conn.codec.write_event(sample)
                await conn.writer.drain()
                self._alarms_forwarded += 1
            except (ConnectionResetError, BrokenPipeError, OSError):
                route.conns.discard(conn)

    # -- fleet reshapes ------------------------------------------------------ #
    async def add_worker(self, config: WorkerConfig) -> None:
        """Spawn a worker, re-slice the ring, re-home the moved streams."""
        if config.name in self.ring:
            raise ValueError(f"worker {config.name!r} is already on the ring")
        async with self._gate.write_locked():
            await asyncio.wait_for(
                asyncio.to_thread(self.supervisor.spawn, config),
                self.config.recover_timeout_s)
            new_ring = HashRing(self.ring.nodes | {config.name},
                                virtual_nodes=self.ring.virtual_nodes)
            await self._rehome_moved(new_ring)
            self.ring = new_ring
            self._rebalances_total += 1

    async def remove_worker(self, name: str) -> None:
        """Drain a worker's streams onto the rest of the ring, then stop it."""
        if name not in self.ring:
            raise ValueError(f"worker {name!r} is not on the ring")
        if len(self.ring) == 1:
            raise ValueError("cannot remove the last worker")
        async with self._gate.write_locked():
            new_ring = HashRing(self.ring.nodes - {name},
                                virtual_nodes=self.ring.virtual_nodes)
            await self._rehome_moved(new_ring)
            self.ring = new_ring
            self._rebalances_total += 1
            await self._drop_trunks(name)
            await asyncio.to_thread(self.supervisor.stop, name)

    async def _rehome_moved(self, new_ring: HashRing) -> None:
        """Export/import every routed stream whose owner changes.

        Runs under the exclusive gate: no stream op is in flight, and the
        worker-side export drains the micro-batcher first, so in-flight
        samples complete on the old worker before the session moves.
        """
        for stream_id, route in self._streams.items():
            if route.closed:
                continue   # session already ended; nothing to move
            old = self.ring.owner(stream_id)
            new = new_ring.owner(stream_id)
            if old == new:
                continue
            if route.lost:
                continue   # nothing to export; re-opens lazily on `new`
            source = await self._trunk(old, route.protocol)
            exported = await source.request(
                {"op": "export_session", "stream": stream_id})
            if not exported.get("ok"):
                raise RuntimeError(
                    f"worker {old!r} refused to export stream "
                    f"{stream_id!r}: {exported.get('error')}")
            target = await self._trunk(new, route.protocol)
            imported = await target.request(
                {"op": "import_session", "tenant": exported["tenant"],
                 "state": exported["state"]})
            if not imported.get("ok"):
                raise RuntimeError(
                    f"worker {new!r} refused to import stream "
                    f"{stream_id!r}: {imported.get('error')}")
            self._rehomed_total += 1

    # -- model lifecycle fan-out --------------------------------------------- #
    async def _fleet_canary(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Attach the canary on every ring worker, all-or-nothing.

        Workers load the candidate artifact from their own filesystem (the
        op carries a path); a mid-fleet failure detaches the canaries that
        did attach, so the fleet never shadow-scores half a candidate.
        """
        async with self._gate.read_locked():
            attached = []
            workers: Dict[str, Any] = {}
            for worker in sorted(self.ring.nodes):
                reply = await self._worker_request(worker, dict(message))
                if not reply.get("ok"):
                    for done in attached:
                        try:
                            await self._worker_request(
                                done, {"op": "canary_stop",
                                       "tenant": message.get("tenant")})
                        except (ConnectionError, asyncio.TimeoutError):
                            pass
                    raise RuntimeError(
                        f"worker {worker!r} rejected the canary: "
                        f"{reply.get('error')}")
                attached.append(worker)
                workers[worker] = {"fingerprint": reply.get("fingerprint")}
            fingerprint = next(iter(workers.values()))["fingerprint"] \
                if workers else None
            return {"ok": True, "op": "canary", "fingerprint": fingerprint,
                    "workers": workers}

    async def _fleet_canary_status(self,
                                   message: Dict[str, Any]) -> Dict[str, Any]:
        """Per-worker canary reports plus the fleet verdict.

        The fleet promotes only when *every* worker's gates pass: each
        worker judges its own live traffic slice, and a promotion must be
        unanimous or the fleet's models diverge.
        """
        async with self._gate.read_locked():
            reports: Dict[str, Any] = {}
            for worker in sorted(self.ring.nodes):
                reply = await self._worker_request(worker, dict(message))
                if not reply.get("ok"):
                    raise RuntimeError(
                        f"worker {worker!r}: {reply.get('error')}")
                reports[worker] = reply["report"]
            verdicts = {report["verdict"] for report in reports.values()}
            if verdicts == {"promote"}:
                verdict = "promote"
            elif "reject" in verdicts:
                verdict = "reject"
            else:
                verdict = "undecided"
            return {"ok": True, "op": "canary_status", "verdict": verdict,
                    "workers": reports}

    async def _fleet_canary_stop(self,
                                 message: Dict[str, Any]) -> Dict[str, Any]:
        """Detach the canary fleet-wide (tolerates workers without one)."""
        async with self._gate.read_locked():
            reports: Dict[str, Any] = {}
            for worker in sorted(self.ring.nodes):
                reply = await self._worker_request(worker, dict(message))
                reports[worker] = reply.get("report") if reply.get("ok")                     else {"error": reply.get("error")}
            return {"ok": True, "op": "canary_stop", "workers": reports}

    async def _fleet_promote(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Promote on every worker under the exclusive gate, all-or-nothing.

        The write gate blocks every stream op, so the whole fleet swaps at
        one consistent cut.  If any worker fails its gates (each judges
        its own traffic slice) or errors, the workers that already swapped
        are rolled back -- a fleet serving two models is worse than a
        delayed promotion.
        """
        async with self._gate.write_locked():
            workers: Dict[str, Any] = {}
            promoted = []
            failure: Optional[str] = None
            for worker in sorted(self.ring.nodes):
                try:
                    reply = await self._worker_request(worker, dict(message))
                except (ConnectionError, asyncio.TimeoutError) as error:
                    failure = f"worker {worker!r}: {error}"
                    break
                workers[worker] = {key: value for key, value in reply.items()
                                   if key not in ("ok", "op")}
                if not reply.get("ok"):
                    failure = f"worker {worker!r}: {reply.get('error')}"
                    break
                if reply.get("promoted"):
                    promoted.append(worker)
            unanimous = not failure and len(promoted) == len(self.ring.nodes)
            if promoted and not unanimous:
                for done in promoted:
                    try:
                        await self._worker_request(
                            done, {"op": "rollback",
                                   "reason": "cluster:partial-promotion",
                                   "tenant": message.get("tenant")})
                    except (ConnectionError, asyncio.TimeoutError):
                        pass
            if failure:
                return {"ok": False, "op": "promote",
                        "error": failure + ("; partial promotion rolled back"
                                            if promoted else ""),
                        "workers": workers}
            return {"ok": True, "op": "promote", "promoted": unanimous,
                    "workers": workers}

    async def _fleet_rollback(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Roll every worker back to its pinned previous artifact."""
        async with self._gate.write_locked():
            workers: Dict[str, Any] = {}
            failures = []
            for worker in sorted(self.ring.nodes):
                try:
                    reply = await self._worker_request(worker, dict(message))
                except (ConnectionError, asyncio.TimeoutError) as error:
                    failures.append(f"worker {worker!r}: {error}")
                    continue
                workers[worker] = {key: value for key, value in reply.items()
                                   if key not in ("ok", "op")}
                if not reply.get("ok"):
                    failures.append(
                        f"worker {worker!r}: {reply.get('error')}")
            if failures:
                return {"ok": False, "op": "rollback",
                        "error": "; ".join(failures), "workers": workers}
            return {"ok": True, "op": "rollback", "rolled_back": True,
                    "workers": workers}

    # -- fleet read-outs ----------------------------------------------------- #
    async def _worker_request(self, worker: str,
                              message: Dict[str, Any]) -> Dict[str, Any]:
        trunk = await self._trunk(worker, "json")
        return await trunk.request(message)

    async def _gather_fleet(self,
                            message: Dict[str, Any]) -> Dict[str, Any]:
        """One reply per live ring worker; crashed workers are skipped."""
        replies: Dict[str, Dict[str, Any]] = {}
        for worker in sorted(self.ring.nodes):
            try:
                reply = await self._worker_request(worker, dict(message))
            except (ConnectionError, asyncio.TimeoutError):
                continue
            if reply.get("ok"):
                replies[worker] = reply
        return replies

    async def _cluster_stats(self) -> ClusterStats:
        replies = await self._gather_fleet({"op": "snapshot"})
        return ClusterStats.from_snapshots(
            {worker: reply["snapshot"] for worker, reply in replies.items()})

    async def _fleet_snapshot(self) -> Dict[str, Any]:
        replies = await self._gather_fleet({"op": "snapshot"})
        return {
            "workers": {worker: reply["snapshot"]
                        for worker, reply in replies.items()},
            "cluster": {
                "workers": sorted(self.ring.nodes),
                "workers_live": sum(1 for name in self.ring.nodes
                                    if self.supervisor.alive(name)),
                "worker_restarts": sum(
                    handle.restarts
                    for handle in self.supervisor.workers.values()),
                "sessions_rehomed": self._rehomed_total,
                "rebalances": self._rebalances_total,
                "streams_routed": self._live_route_count(),
            },
        }

    async def _fleet_metrics(self) -> str:
        replies = await self._gather_fleet({"op": "metrics"})
        pages = [reply["text"] for reply in replies.values()]
        merged = merge_metrics_pages(pages) if pages else ""
        page = merged + self.registry.render()
        self._metrics_cache = page
        return page

    def metrics_text(self) -> str:
        """The last fleet metrics page (sync; for the HTTP scrape server).

        Refreshed by the health loop every ``health_interval_s`` and by
        every ``metrics`` wire op, so a scrape is at most one interval
        stale without ever blocking the scrape thread on worker I/O.
        """
        return self._metrics_cache or self.registry.render()

    # -- health loop --------------------------------------------------------- #
    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval_s)
            for worker in sorted(self.ring.nodes):
                if not self.supervisor.alive(worker):
                    try:
                        await self._ensure_worker(worker)
                    except (ConnectionError, asyncio.TimeoutError,
                            RuntimeError):
                        continue
                else:
                    try:
                        await self._worker_request(worker, {"op": "ping"})
                    except (ConnectionError, asyncio.TimeoutError):
                        continue
            try:
                await self._fleet_metrics()
            except (ConnectionError, asyncio.TimeoutError):
                pass
