"""Sharded multi-worker serving: shard router, worker fleet, rebalance.

``repro.cluster`` turns the single-process serving stack of
:mod:`repro.serve` into a horizontally sharded fleet while keeping the
client contract byte-for-byte identical:

* :class:`HashRing` -- deterministic consistent-hash placement of
  ``stream_id`` onto worker names (blake2b, virtual nodes).
* :class:`TenantWireServer` / ``python -m repro.cluster.worker`` -- a
  wire server fronting one :class:`~repro.serve.AnomalyService` per
  tenant artifact, with session handoff enabled.
* :class:`WorkerSupervisor` -- subprocess lifecycle: spawn with a
  port-file handshake, health probes, restart on crash.
* :class:`ShardRouter` -- the single front door clients connect to; a
  protocol-aware proxy that forwards frames to the owning worker and
  re-homes sessions when the fleet changes shape.
* :class:`ClusterStats` -- fleet-level read-outs merged from per-worker
  snapshots (histograms merged exactly, quantiles conservatively).

Placement never uses Python's builtin ``hash`` -- it is salted per
process (``PYTHONHASHSEED``), which would scatter a stream to different
workers depending on who computes the hash.
"""

from .ring import HashRing
from .stats import ClusterStats, merge_metrics_pages
from .worker import TenantWireServer, WorkerConfig
from .supervisor import WorkerHandle, WorkerSupervisor
from .router import RouterConfig, ShardRouter
from .harness import ClusterHarness

__all__ = [
    "HashRing",
    "ClusterStats",
    "merge_metrics_pages",
    "TenantWireServer",
    "WorkerConfig",
    "WorkerHandle",
    "WorkerSupervisor",
    "RouterConfig",
    "ShardRouter",
    "ClusterHarness",
]
