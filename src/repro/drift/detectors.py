"""Score-stream drift detectors.

A deployed detector's anomaly-score distribution is the cheapest observable
proxy for input distribution shift: the threshold was calibrated against the
score distribution on normal data, so when the *score* distribution moves,
the calibration is stale regardless of what moved in the input.  Both
detectors here therefore watch the scalar score stream, not the raw
channels, which keeps the per-sample cost O(1)-ish and detector-agnostic.

Two complementary tests are provided:

* :class:`PageHinkley` -- the classic sequential change-point test on the
  running mean.  Cheap (a handful of scalar updates per sample), sensitive
  to sustained mean shifts, and direction-aware.  Increments are normalised
  by a running standard deviation so one ``threshold`` setting works across
  detectors whose score scales differ by orders of magnitude.
* :class:`TwoWindowDrift` -- a rolling two-sample test comparing a *reference*
  window of older scores against the most recent *current* window, with
  either the Kolmogorov-Smirnov statistic or a robust quantile-shift
  statistic.  Slower (it sorts the windows every ``check_every`` samples)
  but catches variance/shape changes a mean test misses.

Both implement the tiny :class:`DriftDetector` contract consumed by
:class:`repro.drift.AdaptationPolicy`: ``update(value) -> bool`` per sample,
``reset()`` after the policy has acted on a detection.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Deque, Literal

import numpy as np

__all__ = ["DriftDetector", "PageHinkley", "TwoWindowDrift"]


class DriftDetector(abc.ABC):
    """Sequential change detector over a scalar stream."""

    #: short identifier recorded in :class:`repro.drift.AdaptationEvent`.
    name: str = "drift"

    @abc.abstractmethod
    def update(self, value: float) -> bool:
        """Consume one observation; return ``True`` when drift is detected."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all state, e.g. after the consumer recalibrated."""

    @abc.abstractmethod
    def clone(self) -> "DriftDetector":
        """A fresh detector with the same configuration and no state.

        The adaptation policy clones its prototype detector once per stream,
        so one policy object can serve a whole fleet without the streams
        sharing change-point state.
        """


class PageHinkley(DriftDetector):
    """Page-Hinkley sequential test for a shift of the running mean.

    The test accumulates ``m_t = sum_i (x_i - mean_i - delta)`` and flags
    drift when ``m_t`` rises more than ``threshold`` above its running
    minimum (upward shift) or falls more than ``threshold`` below its running
    maximum (downward shift).  ``delta`` is the magnitude of mean change
    considered negligible and ``threshold`` trades detection delay against
    false alarms; both are expressed in running-standard-deviation units
    when ``normalize`` is on (the default), which makes one configuration
    portable across anomaly-score scales.

    Non-finite inputs (the NaN prefix of a scored stream) are ignored.
    """

    name = "page-hinkley"

    def __init__(self, delta: float = 0.15, threshold: float = 30.0,
                 min_samples: int = 30,
                 direction: Literal["up", "down", "both"] = "both",
                 normalize: bool = True) -> None:
        if delta < 0:
            raise ValueError("delta must be non-negative")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_samples < 2:
            raise ValueError("min_samples must be at least 2")
        if direction not in ("up", "down", "both"):
            raise ValueError("direction must be 'up', 'down' or 'both'")
        self.delta = delta
        self.threshold = threshold
        self.min_samples = min_samples
        self.direction = direction
        self.normalize = normalize
        self.reset()

    def clone(self) -> "PageHinkley":
        return PageHinkley(delta=self.delta, threshold=self.threshold,
                           min_samples=self.min_samples,
                           direction=self.direction, normalize=self.normalize)

    def reset(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0          # Welford accumulator for the running variance
        self._cum_up = 0.0
        self._min_up = 0.0
        self._cum_down = 0.0
        self._max_down = 0.0

    @property
    def statistic(self) -> float:
        """Current test statistic (max over the enabled directions)."""
        up = self._cum_up - self._min_up
        down = self._max_down - self._cum_down
        if self.direction == "up":
            return up
        if self.direction == "down":
            return down
        return max(up, down)

    def update(self, value: float) -> bool:
        value = float(value)
        if not np.isfinite(value):
            return False
        self._count += 1
        delta_mean = value - self._mean
        self._mean += delta_mean / self._count
        self._m2 += delta_mean * (value - self._mean)
        if self._count < self.min_samples:
            return False

        if self.normalize:
            std = np.sqrt(self._m2 / (self._count - 1))
            scale = std if std > 0 else 1.0
        else:
            scale = 1.0
        deviation = (value - self._mean) / scale

        detected = False
        if self.direction in ("up", "both"):
            self._cum_up += deviation - self.delta
            self._min_up = min(self._min_up, self._cum_up)
            detected |= (self._cum_up - self._min_up) > self.threshold
        if self.direction in ("down", "both"):
            self._cum_down += deviation + self.delta
            self._max_down = max(self._max_down, self._cum_down)
            detected |= (self._max_down - self._cum_down) > self.threshold
        return detected


class TwoWindowDrift(DriftDetector):
    """Rolling two-window distribution-shift test.

    Keeps the last ``reference_size + current_size`` finite observations in
    a deque; the older ``reference_size`` form the reference sample, the
    newest ``current_size`` the current sample.  Every ``check_every``
    updates the two samples are compared with either

    * ``statistic="ks"`` -- the two-sample Kolmogorov-Smirnov statistic
      (max vertical distance between the empirical CDFs, in [0, 1]); or
    * ``statistic="quantile"`` -- a robust quantile-shift statistic: the
      distance between the two samples' ``quantile`` points divided by the
      reference interquartile range, so it is scale-free like the KS mode.

    Drift is flagged when the statistic exceeds ``threshold``.
    """

    name = "two-window"

    def __init__(self, reference_size: int = 200, current_size: int = 50,
                 statistic: Literal["ks", "quantile"] = "ks",
                 threshold: float = 0.6, quantile: float = 0.5,
                 check_every: int = 10) -> None:
        if reference_size < 10:
            raise ValueError("reference_size must be at least 10")
        if current_size < 5:
            raise ValueError("current_size must be at least 5")
        if statistic not in ("ks", "quantile"):
            raise ValueError("statistic must be 'ks' or 'quantile'")
        if not 0.0 < threshold:
            raise ValueError("threshold must be positive")
        if statistic == "ks" and threshold >= 1.0:
            raise ValueError("a KS threshold must lie in (0, 1)")
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if check_every < 1:
            raise ValueError("check_every must be at least 1")
        self.reference_size = reference_size
        self.current_size = current_size
        self.statistic_kind = statistic
        self.threshold = threshold
        self.quantile = quantile
        self.check_every = check_every
        self._buffer: Deque[float] = deque(maxlen=reference_size + current_size)
        self._since_check = 0

    def clone(self) -> "TwoWindowDrift":
        return TwoWindowDrift(reference_size=self.reference_size,
                              current_size=self.current_size,
                              statistic=self.statistic_kind,
                              threshold=self.threshold,
                              quantile=self.quantile,
                              check_every=self.check_every)

    def reset(self) -> None:
        self._buffer.clear()
        self._since_check = 0

    @staticmethod
    def ks_statistic(reference: np.ndarray, current: np.ndarray) -> float:
        """Two-sample KS statistic: sup |ECDF_ref - ECDF_cur|."""
        reference = np.sort(np.asarray(reference, dtype=np.float64))
        current = np.sort(np.asarray(current, dtype=np.float64))
        grid = np.concatenate([reference, current])
        cdf_ref = np.searchsorted(reference, grid, side="right") / reference.size
        cdf_cur = np.searchsorted(current, grid, side="right") / current.size
        return float(np.abs(cdf_ref - cdf_cur).max())

    def _quantile_shift(self, reference: np.ndarray, current: np.ndarray) -> float:
        q_ref = float(np.quantile(reference, self.quantile))
        q_cur = float(np.quantile(current, self.quantile))
        iqr = float(np.quantile(reference, 0.75) - np.quantile(reference, 0.25))
        return abs(q_cur - q_ref) / max(iqr, 1e-12)

    @property
    def is_primed(self) -> bool:
        """Whether the buffer holds enough history to run the test."""
        return len(self._buffer) == self.reference_size + self.current_size

    def current_statistic(self) -> float:
        """Compute the configured statistic on the buffered windows."""
        if not self.is_primed:
            return 0.0
        values = np.asarray(self._buffer, dtype=np.float64)
        reference = values[: self.reference_size]
        current = values[self.reference_size:]
        if self.statistic_kind == "ks":
            return self.ks_statistic(reference, current)
        return self._quantile_shift(reference, current)

    def update(self, value: float) -> bool:
        value = float(value)
        if not np.isfinite(value):
            return False
        self._buffer.append(value)
        if not self.is_primed:
            return False
        self._since_check += 1
        if self._since_check < self.check_every:
            return False
        self._since_check = 0
        return self.current_statistic() > self.threshold
