"""Adaptive recalibration policy driven by score-stream drift detection.

The streaming runtimes freeze the calibrated threshold at deploy time; under
concept drift (a recalibrated sensor, a slow mechanical wear trend, a gain
change) the whole score distribution moves and the frozen threshold either
goes blind or alarms on everything.  :class:`AdaptationPolicy` closes the
loop: a :class:`~repro.drift.detectors.DriftDetector` watches the anomaly
scores, and once a detection is *confirmed* the decision threshold is
re-derived from recent scores with the same calibrator that produced the
original threshold (:meth:`repro.core.calibration.ThresholdCalibrator.matching`).

Anomaly bursts are the failure mode to defend against: a genuine anomaly
also raises the scores, and recalibrating on it would raise the threshold
until the anomaly is invisible -- self-blinding.  Three guards prevent that:

* **confirmation (hysteresis)** -- a drift flag opens a *pending* window of
  ``confirm_samples`` further scores; the shift must still be visible in the
  *second half* of that window (its median leaves the pre-drift reservoir's
  Tukey band, quartiles +/- ``confirm_iqr`` x IQR) before anything is
  recalibrated.  Quartiles keep the band robust to the anomaly fraction --
  a tail quantile would be set by the very anomalies the detector exists to
  flag.  A transient burst has ended by the time the tail of the window
  arrives, so it is rejected; a burst longer than half the confirmation
  window is, by construction, indistinguishable from drift.
* **cooldown + refinement** -- after a recalibration, further flags are
  ignored for ``cooldown`` samples, so one distribution change cannot
  trigger a chain of recalibrations while the detectors re-converge.  When
  the cooldown expires the threshold is *refined* once from the reservoir
  accumulated since the adaptation: the emergency threshold had to be
  derived from the few dozen scores of the confirmation tail, while the
  refinement sees several hundred post-drift samples (covering full signal
  periods), which de-biases the calibration quantile.
* **presumed-normal reservoir** -- scores more than ``reservoir_guard``
  times the current threshold are kept out of the baseline reservoir, so
  flagged-anomaly-sized scores never contaminate the band or a refinement.
* **robust recalibration** -- the new threshold is derived from the tail of
  the confirmation window (the scores that proved the shift persisted) with
  the original (quantile/MAD) calibrator, after trimming the calibration
  sample to its own Tukey fence: an anomaly burst that happens to sit
  inside the confirmation window would otherwise land directly in the
  calibration quantile and lift the new threshold above the anomalies
  themselves.

One policy object is a *configuration*; :meth:`AdaptationPolicy.start`
mints an independent :class:`AdaptationState` per stream (the fleet runtime
keeps one per lane), so no change-point state is shared across streams.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

import numpy as np

from ..core.calibration import CalibratedThreshold, ThresholdCalibrator
from ..data.normalization import MinMaxScaler
from .detectors import DriftDetector, PageHinkley

__all__ = ["AdaptationEvent", "AdaptationPolicy", "AdaptationState"]


@dataclass(frozen=True)
class AdaptationEvent:
    """One confirmed drift detection and the recalibration it triggered."""

    flagged_at: int            # sample index of the confirmed drift flag
    adapted_at: int            # sample index from which the new threshold applies
    trigger: str               # name of the drift detector that fired
    old_threshold: float
    new_threshold: float
    n_calibration_scores: int  # scores the new threshold was derived from
    #: ``"recalibration"`` for the drift-triggered emergency threshold,
    #: ``"refinement"`` for the cooldown-end re-derivation from a full
    #: post-drift reservoir.
    kind: str = "recalibration"
    scaler_refreshed: bool = False
    #: refreshed input scaler (when the policy was asked to refit one);
    #: deployment code may adopt it for its pre-scoring normalisation.
    scaler: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def confirmation_delay(self) -> int:
        """Samples spent confirming the flag before adapting."""
        return self.adapted_at - self.flagged_at


class AdaptationPolicy:
    """Configuration for online threshold adaptation on a score stream.

    Parameters
    ----------
    drift_detector:
        Prototype change detector; cloned (fresh state) per stream.  Defaults
        to a normalised :class:`~repro.drift.detectors.PageHinkley`.
    calibrator:
        Calibrator used to re-derive the threshold from recent scores.
        ``None`` (default) rebuilds one matching the stream's initial
        threshold, so online recalibration follows the same quantile/MAD
        rule as the offline deployment calibration.
    reservoir_size:
        How many recent finite scores form the pre-drift baseline reservoir.
    min_reservoir:
        Drift flags are ignored until the reservoir holds this many scores
        (no adaptation during the very first samples of a stream).
    confirm_samples:
        Length of the pending confirmation window opened by a drift flag.
        The second half of the window is the decision sample: it confirms
        the drift and calibrates the new threshold, so it must be long
        enough for the calibrator's statistic (about 50 samples for a 0.99
        quantile is workable; more is smoother).
    confirm_iqr:
        Half-width of the confirmation band in reservoir IQRs: the median
        of the pending window's second half must leave
        ``[q25 - confirm_iqr * IQR, q75 + confirm_iqr * IQR]`` (computed on
        a lagged reservoir snapshot) for the drift to be confirmed.
    trim_iqr:
        Upper Tukey fence (``q75 + trim_iqr * IQR`` of the calibration
        sample itself) applied before a threshold is calibrated, so an
        anomaly burst inside the sample cannot lift the new threshold above
        the anomalies.  Wider than the confirmation band on purpose: the
        trim must spare the skewed upper tail of the *normal* score
        distribution that the calibration quantile exists to measure.
    cooldown:
        Samples after a recalibration during which new flags are ignored,
        so one distribution change cannot trigger a recalibration chain.
        Refinement (``"refinement"`` events) re-derives the threshold from
        the reservoir accumulated since the adaptation, once when the
        cooldown expires (a quick correction of the emergency threshold)
        and once more when a full reservoir of post-drift scores exists --
        at which point the calibration sample is as large as an offline
        calibration's.
    reservoir_guard:
        Scores above ``guard x current threshold`` are treated as presumed
        anomalies and kept out of the baseline reservoir (``None``
        disables the guard; it is also inactive while the threshold is
        non-positive, where the multiple is meaningless).  The confirmation
        window is deliberately *not* guarded -- it has to see the shift.
    refresh_scaler:
        When true, a confirmed drift also refits an input scaler
        (``scaler_factory()``) on recent raw samples handed to
        :meth:`AdaptationState.observe`, and publishes it on the event and
        on :attr:`AdaptationState.scaler`.  Raw rows get the same
        presumed-normal admission as scores (anomaly-burst rows are kept
        out), the raw window is cut back to the confirmation window's rows
        at the recalibration (so the fit describes the drifted
        distribution, not a pre/post blend), and each refinement republishes
        a scaler fitted on the accumulated post-drift rows.  The runtimes
        never apply it -- scoring consumes the stream as given, exactly
        like ``fit`` did -- but deployment preprocessors can adopt it.
    """

    def __init__(self, drift_detector: Optional[DriftDetector] = None,
                 calibrator: Optional[ThresholdCalibrator] = None,
                 reservoir_size: int = 1024, min_reservoir: int = 100,
                 confirm_samples: int = 96, confirm_iqr: float = 2.0,
                 trim_iqr: float = 4.0,
                 cooldown: int = 400, reservoir_guard: Optional[float] = 2.5,
                 refresh_scaler: bool = False,
                 scaler_factory: Callable[[], object] = MinMaxScaler) -> None:
        if reservoir_size < 32:
            raise ValueError("reservoir_size must be at least 32")
        if not 1 <= min_reservoir <= reservoir_size:
            raise ValueError("min_reservoir must be in [1, reservoir_size]")
        if confirm_samples < 8:
            raise ValueError("confirm_samples must be at least 8")
        if confirm_iqr <= 0:
            raise ValueError("confirm_iqr must be positive")
        if trim_iqr <= 0:
            raise ValueError("trim_iqr must be positive")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if reservoir_guard is not None and reservoir_guard <= 1.0:
            raise ValueError("reservoir_guard must exceed 1 (or be None)")
        self.drift_detector = drift_detector if drift_detector is not None \
            else PageHinkley()
        self.calibrator = calibrator
        self.reservoir_size = reservoir_size
        self.min_reservoir = min_reservoir
        self.confirm_samples = confirm_samples
        self.confirm_iqr = confirm_iqr
        self.trim_iqr = trim_iqr
        self.cooldown = cooldown
        self.reservoir_guard = reservoir_guard
        self.refresh_scaler = refresh_scaler
        self.scaler_factory = scaler_factory

    def start(self, threshold: CalibratedThreshold) -> "AdaptationState":
        """Mint an independent per-stream adaptation state."""
        if threshold is None:
            raise ValueError(
                "adaptation needs an initial CalibratedThreshold to adapt; "
                "calibrate the detector (calibrate_threshold) or pass an "
                "explicit threshold to the runtime"
            )
        calibrator = self.calibrator if self.calibrator is not None \
            else ThresholdCalibrator.matching(threshold)
        return AdaptationState(policy=self, threshold=threshold,
                               calibrator=calibrator,
                               detector=self.drift_detector.clone())


class AdaptationState:
    """Per-stream drift/recalibration state machine.

    Created by :meth:`AdaptationPolicy.start`; the runtimes call
    :meth:`observe` once per scored sample *after* the sample's alarm has
    been decided, so an adaptation takes effect from the next sample on.
    """

    def __init__(self, policy: AdaptationPolicy, threshold: CalibratedThreshold,
                 calibrator: ThresholdCalibrator, detector: DriftDetector) -> None:
        self.policy = policy
        self.threshold = threshold
        self.calibrator = calibrator
        self.detector = detector
        self.events: List[AdaptationEvent] = []
        #: most recently refreshed input scaler, if any.
        self.scaler: Optional[object] = None
        self._reservoir: Deque[float] = deque(maxlen=policy.reservoir_size)
        self._raw: Deque[np.ndarray] = deque(maxlen=policy.reservoir_size)
        self._pending_raw: List[np.ndarray] = []
        self._pending: Optional[List[float]] = None
        self._flagged_at = -1
        self._cooldown_left = 0
        self._since_adapt = 0
        self._refine_schedule: List[int] = []

    # -- introspection --------------------------------------------------- #
    @property
    def is_pending(self) -> bool:
        """Whether a drift flag is currently awaiting confirmation."""
        return self._pending is not None

    @property
    def reservoir_scores(self) -> np.ndarray:
        """Snapshot of the baseline reservoir (oldest first)."""
        return np.asarray(self._reservoir, dtype=np.float64)

    # -- the per-sample hook --------------------------------------------- #
    def observe(self, index: int, score: float,
                raw: Optional[np.ndarray] = None) -> Optional[AdaptationEvent]:
        """Feed one scored sample; return the event if this sample adapted.

        ``index`` is the stream sample index (used only for bookkeeping in
        the emitted events), ``score`` the anomaly score just produced and
        ``raw`` optionally the raw sample values (consumed by the scaler
        refresh).  Non-finite scores (the NaN warm-up prefix) are ignored.
        """
        score = float(score)
        if not np.isfinite(score):
            return None
        if raw is not None and self.policy.refresh_scaler \
                and self._passes_guard(score):
            # Raw samples get the same presumed-normal admission as scores:
            # a scaler fitted over an anomaly burst's raw rows would stretch
            # its range to the burst, not the normal signal.
            row = np.asarray(raw, dtype=np.float64).copy()
            self._raw.append(row)
            if self._pending is not None:
                # Side-collect the confirmation window's rows: if the drift
                # confirms, these are the only raws known to be post-drift.
                self._pending_raw.append(row)

        if self._pending is not None:
            self._pending.append(score)
            if len(self._pending) >= self.policy.confirm_samples:
                return self._close_pending(index)
            return None

        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            self._admit(score)
            self.detector.update(score)
            return self._maybe_refine(index)

        flagged = self.detector.update(score)
        if flagged and len(self._reservoir) >= self.policy.min_reservoir:
            # Open the confirmation window; the flagging sample is its first
            # member so a step change contributes from sample one.
            self._pending = [score]
            self._flagged_at = index
            return None
        self._admit(score)
        return self._maybe_refine(index)

    # -- internals ------------------------------------------------------- #
    def _passes_guard(self, score: float) -> bool:
        """Whether a score is presumed normal under the reservoir guard.

        The guard treats scores far above the current threshold as presumed
        anomalies; the current threshold is the best available notion of
        "anomalous" at admission time.
        """
        guard = self.policy.reservoir_guard
        current = self.threshold.threshold
        return guard is None or current <= 0 or score <= guard * current

    def _admit(self, score: float) -> None:
        """Add a score to the baseline reservoir unless the guard rejects it."""
        if self._passes_guard(score):
            self._reservoir.append(score)

    def _presumed_normal(self, scores: np.ndarray) -> np.ndarray:
        """Trim a calibration sample to its own upper Tukey fence.

        Anomalies are high scores by the repo's convention, so only the
        upper tail is trimmed; the remainder is the "presumed normal"
        sample the threshold is calibrated on.  With nothing to trim the
        sample is returned unchanged.
        """
        q25, q75 = np.quantile(scores, (0.25, 0.75))
        fence = q75 + self.policy.trim_iqr * max(q75 - q25, 1e-12)
        trimmed = scores[scores <= fence]
        return trimmed if trimmed.size else scores

    def _maybe_refine(self, index: int) -> Optional[AdaptationEvent]:
        """Run a scheduled refinement when enough post-adaptation data exists."""
        if not self._refine_schedule:
            return None
        self._since_adapt += 1
        if self._since_adapt < self._refine_schedule[0]:
            return None
        if len(self._reservoir) < self.policy.confirm_samples:
            # Not enough data to calibrate yet (e.g. a cooldown shorter than
            # the confirmation window): keep the schedule entry and retry on
            # the next sample instead of silently dropping the refinement.
            return None
        self._refine_schedule.pop(0)
        return self._refine(index)

    def _refresh_scaler(self) -> Optional[object]:
        """Refit the input scaler on the guarded raw window, if asked to."""
        if not self.policy.refresh_scaler or len(self._raw) == 0:
            return None
        scaler = self.policy.scaler_factory()
        scaler.fit(np.stack(list(self._raw)))
        self.scaler = scaler
        return scaler

    def _refine(self, index: int) -> Optional[AdaptationEvent]:
        """Re-derive the threshold from the reservoir built since adapting."""
        scores = self.reservoir_scores
        old = self.threshold
        scores = self._presumed_normal(scores)
        self.threshold = self.calibrator.calibrate(scores)
        # A refinement sees a raw window dominated by post-drift samples,
        # so it also refreshes the published scaler.
        scaler = self._refresh_scaler()
        event = AdaptationEvent(
            flagged_at=index,
            adapted_at=index,
            trigger=self.detector.name,
            old_threshold=old.threshold,
            new_threshold=self.threshold.threshold,
            n_calibration_scores=int(scores.size),
            kind="refinement",
            scaler_refreshed=scaler is not None,
            scaler=scaler,
        )
        self.events.append(event)
        return event

    def _close_pending(self, index: int) -> Optional[AdaptationEvent]:
        pending = np.asarray(self._pending, dtype=np.float64)
        self._pending = None
        flagged_at = self._flagged_at
        self._flagged_at = -1

        # The decision sample is the *second half* of the confirmation
        # window: a flag can lead the actual shift (or trail a burst), but
        # if the scores are still displaced by the time the tail arrives the
        # shift is sustained.  The tail is also what the new threshold is
        # calibrated on -- it is the cleanest sample of the post-drift
        # distribution available.
        tail = pending[pending.size // 2:]
        reservoir = self.reservoir_scores
        # The newest reservoir entries are exactly where not-yet-flagged
        # drift accumulates (the change detector has a detection delay), so
        # the band is computed on a lagged snapshot when enough older
        # history exists -- otherwise early drift samples widen the band
        # until the drift confirms against itself.
        lag = self.policy.confirm_samples
        if reservoir.size - lag >= self.policy.min_reservoir:
            reservoir = reservoir[:-lag]
        q25 = float(np.quantile(reservoir, 0.25))
        q75 = float(np.quantile(reservoir, 0.75))
        fence = self.policy.confirm_iqr * max(q75 - q25, 1e-12)
        band_low = q25 - fence
        band_high = q75 + fence
        tail_median = float(np.median(tail))
        confirmed = not band_low <= tail_median <= band_high
        if not confirmed:
            # Hysteresis: the shift did not survive to the end of the
            # confirmation window (an anomaly burst, a spurious flag).
            # Fold the window back into the baseline through the guarded
            # admission path: flags systematically open on high-score
            # episodes, so silently discarding rejected windows would
            # censor the reservoir's upper tail and bias every later
            # calibration low.  The change detector's statistics are then
            # rebuilt from the reservoir: a bare reset would adopt whatever
            # comes next as the new baseline, blinding it to a sustained
            # shift it just failed to confirm.
            for value in pending:
                self._admit(value)
            self._pending_raw = []
            self.detector.reset()
            for value in self._reservoir:
                self.detector.update(value)
            # Short rejection cooldown: the replayed statistics often sit
            # just under the flag threshold, and an immediate re-flag would
            # chain pending windows back to back, starving the refinement
            # schedule and the baseline reservoir of fresh samples.
            self._cooldown_left = max(self._cooldown_left,
                                      self.policy.confirm_samples)
            return None

        old = self.threshold
        calibration = self._presumed_normal(tail)
        self.threshold = self.calibrator.calibrate(calibration)
        # The raw window is mostly *pre*-drift at confirmation time; keep
        # only the confirmation window's admitted rows (the post-drift
        # region) so the refreshed scaler -- now and at later refinements --
        # describes the drifted distribution, not a pre/post blend.
        if self.policy.refresh_scaler:
            self._raw.clear()
            self._raw.extend(self._pending_raw)
        self._pending_raw = []
        scaler = self._refresh_scaler()
        # The post-drift distribution is the new baseline (anomalous-sized
        # scores trimmed, like every other reservoir admission).
        self._reservoir.clear()
        self._reservoir.extend(calibration.tolist())
        self.detector.reset()
        self._cooldown_left = self.policy.cooldown
        self._since_adapt = 0
        self._refine_schedule = sorted({count for count in
                                        (self.policy.cooldown,
                                         self.policy.reservoir_size)
                                        if count > 0})
        event = AdaptationEvent(
            flagged_at=flagged_at,
            adapted_at=index,
            trigger=self.detector.name,
            old_threshold=old.threshold,
            new_threshold=self.threshold.threshold,
            n_calibration_scores=int(calibration.size),
            scaler_refreshed=scaler is not None,
            scaler=scaler,
        )
        self.events.append(event)
        return event
