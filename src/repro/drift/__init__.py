"""Online drift detection and adaptive threshold recalibration.

VARADE's deployment story is unsupervised anomaly detection that keeps
working on the edge without a labelled retrain loop -- but a threshold and
scaler frozen at deploy time silently rot under concept drift (sensor
recalibration, gain changes, mechanical wear).  This package watches the
*anomaly-score stream* for distribution shift and recalibrates the decision
threshold online, with hysteresis so genuine anomaly bursts do not trigger
self-blinding recalibration.

* :mod:`repro.drift.detectors` -- sequential change detectors on the score
  stream: :class:`PageHinkley` (running-mean shift, std-normalised) and
  :class:`TwoWindowDrift` (rolling two-window KS / quantile-shift test).
* :mod:`repro.drift.policy` -- :class:`AdaptationPolicy`, the
  confirm-then-recalibrate state machine, minting one independent
  :class:`AdaptationState` per stream.

Both streaming runtimes take the policy directly::

    from repro.drift import AdaptationPolicy
    from repro.edge import StreamingRuntime, MultiStreamRuntime

    detector.calibrate_threshold(train)            # initial deployment state
    runtime = StreamingRuntime(detector, adaptation=AdaptationPolicy())
    result = runtime.run(reader)
    result.adaptation_events                       # confirmed drifts, if any

With no drift in the stream the adaptive path is bit-identical to the
frozen-threshold path; drift scenarios to exercise it live in
:mod:`repro.data.drift` and :mod:`repro.robot.drift`, the recovery metrics
in :mod:`repro.eval.adaptation`, and the end-to-end demonstration in
``benchmarks/bench_drift_adaptation.py``.
"""

from .detectors import DriftDetector, PageHinkley, TwoWindowDrift
from .policy import AdaptationEvent, AdaptationPolicy, AdaptationState

__all__ = [
    "DriftDetector",
    "PageHinkley",
    "TwoWindowDrift",
    "AdaptationEvent",
    "AdaptationPolicy",
    "AdaptationState",
]
