"""Module entry point: ``python -m repro`` runs the deployment pipeline CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
