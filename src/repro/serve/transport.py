"""Pluggable connection transports for the serving front door.

The dispatch core in :mod:`repro.serve.tcp` is transport-agnostic: it
speaks to an ``asyncio`` stream pair on the server side and a connected
``socket`` on the client side.  A :class:`Transport` supplies both halves
for one address family:

* :class:`TCPTransport` -- the default; reachable from other hosts, one
  listener per ``(host, port)``.
* :class:`UnixSocketTransport` -- a Unix-domain socket for co-located
  producers (the robot cell's own data logger pushing into the detector on
  the same board).  No TCP/IP stack in the path, no port allocation, and
  filesystem permissions gate who may connect.  Unavailable on platforms
  without ``AF_UNIX`` (construction raises).

Transport choice is orthogonal to protocol choice: every connection still
negotiates JSON vs binary from its first byte (see :mod:`repro.serve.wire`).
Pick UDS + binary for the high-rate co-located ingest path, TCP + JSON for
remote debugging with ``nc``.

Example -- :func:`make_transport` resolves spec/CLI knobs to a transport:

>>> transport = make_transport("tcp", host="127.0.0.1", port=7007)
>>> transport.kind, transport.describe()
('tcp', '127.0.0.1:7007')
>>> make_transport("carrier-pigeon")
Traceback (most recent call last):
    ...
ValueError: unknown transport 'carrier-pigeon' (choose 'tcp' or 'uds')
"""

from __future__ import annotations

import asyncio
import os
import socket
from pathlib import Path
from typing import Optional, Union

__all__ = ["HAS_UNIX_SOCKETS", "Transport", "TCPTransport",
           "UnixSocketTransport", "make_transport"]

#: Whether this platform offers ``AF_UNIX`` sockets at all.
HAS_UNIX_SOCKETS = hasattr(socket, "AF_UNIX")


class Transport:
    """One address family's listener + connector pair.

    Subclasses implement :meth:`listen` (server side, returns the asyncio
    server object) and :meth:`connect` (client side, returns a connected
    blocking socket with its timeout already applied).
    """

    #: short name used in specs/CLI flags (``"tcp"`` / ``"uds"``)
    kind: str = ""

    async def listen(self, client_connected_cb) -> asyncio.AbstractServer:
        raise NotImplementedError

    def connect(self, timeout_s: Optional[float]) -> socket.socket:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable endpoint (log lines, error messages)."""
        raise NotImplementedError

    def address_text(self, server: asyncio.AbstractServer) -> str:
        """The text a ``--port-file`` handshake should carry once bound."""
        raise NotImplementedError


class TCPTransport(Transport):
    """TCP listener/connector on ``(host, port)``; port 0 binds ephemeral."""

    kind = "tcp"

    def __init__(self, host: str = "127.0.0.1", port: int = 7007) -> None:
        self.host = host
        self.port = port

    async def listen(self, client_connected_cb) -> asyncio.AbstractServer:
        return await asyncio.start_server(client_connected_cb,
                                          self.host, self.port)

    def connect(self, timeout_s: Optional[float]) -> socket.socket:
        # create_connection applies the timeout to the connect itself and
        # leaves it installed on the returned socket, so reads inherit it.
        return socket.create_connection((self.host, self.port),
                                        timeout=timeout_s)

    def describe(self) -> str:
        return f"{self.host}:{self.port}"

    def address_text(self, server: asyncio.AbstractServer) -> str:
        return str(bound_port(server))


class UnixSocketTransport(Transport):
    """Unix-domain-socket listener/connector at a filesystem path."""

    kind = "uds"

    def __init__(self, path: Union[str, Path]) -> None:
        if not HAS_UNIX_SOCKETS:
            raise RuntimeError(
                "Unix-domain sockets are not available on this platform; "
                "use the TCP transport"
            )
        self.path = str(path)

    async def listen(self, client_connected_cb) -> asyncio.AbstractServer:
        # A previous server that crashed leaves its socket file behind;
        # rebinding over a *live* listener is refused by checking it first.
        if os.path.exists(self.path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.settimeout(0.25)
                probe.connect(self.path)
            except OSError:
                os.unlink(self.path)     # stale leftover: safe to reclaim
            else:
                probe.close()
                raise OSError(
                    f"another server is already listening on {self.path}"
                )
            finally:
                probe.close()
        return await asyncio.start_unix_server(client_connected_cb, self.path)

    def connect(self, timeout_s: Optional[float]) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout_s)
        try:
            sock.connect(self.path)
        except OSError:
            sock.close()
            raise
        return sock

    def describe(self) -> str:
        return f"uds:{self.path}"

    def address_text(self, server: asyncio.AbstractServer) -> str:
        return self.path


def bound_port(server: asyncio.AbstractServer) -> int:
    """The actual TCP port of a running listener (ephemeral binds)."""
    return server.sockets[0].getsockname()[1]


def make_transport(kind: str, *, host: str = "127.0.0.1", port: int = 7007,
                   uds_path: Optional[Union[str, Path]] = None) -> Transport:
    """Build a transport from spec/CLI-level knobs."""
    if kind == "tcp":
        return TCPTransport(host, port)
    if kind == "uds":
        if uds_path is None:
            raise ValueError("the 'uds' transport needs a socket path "
                             "(--uds-path / service.uds_path)")
        return UnixSocketTransport(uds_path)
    raise ValueError(f"unknown transport {kind!r} (choose 'tcp' or 'uds')")
