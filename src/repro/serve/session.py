"""Per-stream scoring sessions: the push-based unit of the serving API.

A :class:`ScoringSession` owns everything one stream needs to be scored and
alarmed on -- its rolling context window, its (optionally scaler-normalised)
input path, its resolved decision threshold and its independent
drift-adaptation lane -- but deliberately not the scoring schedule.  The
session is a deterministic state machine with two halves:

* :meth:`ScoringSession.submit` ingests one sample and, once the context
  window is full (and the ``max_samples`` budget allows), emits a
  :class:`WindowRequest` -- a materialised ``(window, target)`` pair ready
  to be scored by anyone;
* :meth:`ScoringSession.complete` consumes the score for a previously
  submitted request, applies the threshold in effect *before* the sample
  was observed (classify, then learn -- the same semantics as
  :class:`repro.edge.StreamingRuntime`), feeds the adaptation lane, and
  returns the :class:`ScoredSample`.

The split is what lets a :class:`~repro.serve.batcher.MicroBatcher` coalesce
requests from many sessions into one
:meth:`~repro.core.detector.AnomalyDetector.score_windows_batch` call while
every session keeps bit-identical scores, alarms and adaptation events to
the sequential single-stream path.  For callers that do not batch,
:meth:`ScoringSession.push` is the inline spelling: submit, score a
one-row batch immediately, complete -- one shared code path either way.

Requests must be completed in submission order per session (enforced), so
threshold adaptation always observes scores in stream order regardless of
how the scheduler interleaves sessions.

Sessions additionally carry an *incremental lane*: when the detector offers
an O(1)-per-sample incremental scorer
(:meth:`~repro.core.detector.AnomalyDetector.incremental_scorer` -- VARADE,
float and int8), :meth:`ScoringSession.submit` scores each sample eagerly as
it arrives and stashes the result on the emitted
:class:`WindowRequest.score`.  Schedulers (the inline :meth:`push` and the
micro-batcher alike) complete such requests without re-scoring them.
Incremental scores are bit-identical to ``score_windows_batch`` by the
:mod:`repro.nn.fastpath` parity contract, so the lane changes the serving
hot path's cost, never its results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from ..core.calibration import CalibratedThreshold
from ..core.detector import AnomalyDetector
from ..drift.policy import AdaptationPolicy, AdaptationState

__all__ = ["Alarm", "ScoredSample", "WindowRequest", "ScoringSession",
           "SessionClosedError"]


class SessionClosedError(RuntimeError):
    """A sample was pushed into (or completed against) a closed session."""


@dataclass(frozen=True)
class ScoredSample:
    """One scored sample of one stream, with the decision applied to it."""

    stream_id: str
    index: int                     #: sample index within the stream
    score: float
    threshold: Optional[float]     #: threshold in effect (None = no alarms)
    alarm: bool
    #: this sample's share of the scoring call's wall clock (batch time / rows)
    latency_s: float = 0.0
    #: enqueue-to-score wall clock when a batcher scheduled the request
    #: (``None`` on the inline path)
    queue_delay_s: Optional[float] = None
    #: fingerprint of the artifact that scored this sample (stamped on
    #: alarms by services that know theirs, so post-swap alarms stay
    #: attributable to the model that raised them)
    fingerprint: Optional[str] = None


#: A :class:`ScoredSample` whose ``alarm`` flag is set -- the type
#: :meth:`ScoringSession.push` and :meth:`repro.serve.AnomalyService.alarms`
#: deliver.  Kept as an alias: an alarm *is* a scored sample, just one that
#: crossed the threshold.
Alarm = ScoredSample


@dataclass
class WindowRequest:
    """One scorable unit: a materialised context window plus its target.

    Emitted by :meth:`ScoringSession.submit`; scored by whoever schedules it
    (inline, micro-batcher, ...) and handed back to
    :meth:`ScoringSession.complete`.  ``seq`` numbers a session's requests
    in submission order; completion must follow that order.
    """

    session: "ScoringSession"
    seq: int                 #: per-session submission sequence number
    index: int               #: sample index within the stream
    context: np.ndarray      #: (window, channels), oldest first
    target: np.ndarray       #: (channels,) -- the sample being scored
    enqueued_at: float = 0.0  #: batcher clock stamp (0 until enqueued)
    #: score already computed by the session's incremental scorer (bit-
    #: identical to the batch path); schedulers must not re-score it.
    score: Optional[float] = None
    #: wall clock the incremental scorer spent on this sample's push
    score_latency_s: float = 0.0

    @property
    def stream_id(self) -> str:
        return self.session.stream_id


class ScoringSession:
    """Push-based scoring handle for one stream.

    Parameters
    ----------
    detector:
        The fitted detector serving this session.  Sessions sharing a
        :class:`~repro.serve.batcher.MicroBatcher` must share its detector.
    stream_id:
        Name used in emitted :class:`ScoredSample` events.
    threshold:
        Explicit decision threshold; ``None`` defers to the detector's own
        calibrated threshold (resolved once, at session creation), and no
        threshold at all means scores are produced but nothing alarms.
    adaptation:
        Optional :class:`~repro.drift.AdaptationPolicy`; the session mints
        its own independent :class:`~repro.drift.AdaptationState` lane, so
        drift confirmed in this stream recalibrates only this stream.
    scaler:
        Optional input scaler with a ``transform`` method, applied to every
        pushed sample before it enters the context window.  ``None`` (the
        default) scores the stream as given, exactly like the runtimes.
    max_samples:
        Budget of scored samples, matching the runtimes' ``max_samples``.
    record:
        Keep per-sample scores/alarms/latencies so :meth:`result` can build
        a :class:`~repro.edge.StreamingResult`.  Long-running services turn
        this off and rely on the event stream + histograms instead.
    incremental:
        Score each sample with the detector's O(1)-per-sample incremental
        scorer (:meth:`~repro.core.detector.AnomalyDetector.
        incremental_scorer`) at submit time, stashing the result on the
        emitted :class:`WindowRequest` so schedulers skip the batched
        call for it.  Incremental scores are bit-identical to the batch
        path, so this changes latency, never results.  Silently falls back
        to batch scoring when the detector has no incremental path (most
        baselines) or its first push rejects the stream's shape.
    tracer:
        Optional :class:`repro.obs.TraceRecorder`.  When set, the session
        records incremental-lane engagement (an ``"incremental_lane"``
        instant at open, ``"incremental_lane_disabled"`` if the lane falls
        back) and one ``"adaptation"`` instant per drift-adaptation event,
        all on the stream's own track.  ``None`` (the default) records
        nothing; scores, alarms and adaptation are bit-identical either
        way.
    """

    def __init__(self, detector: AnomalyDetector, stream_id: str = "stream-0",
                 *, threshold: Optional[CalibratedThreshold] = None,
                 adaptation: Optional[AdaptationPolicy] = None,
                 scaler: Optional[object] = None,
                 max_samples: Optional[int] = None,
                 record: bool = True,
                 incremental: bool = True,
                 tracer=None) -> None:
        from ..edge.runtime import resolve_threshold

        if max_samples is not None and max_samples < 1:
            raise ValueError("max_samples must be at least 1 (or None)")
        self.detector = detector
        self.stream_id = str(stream_id)
        self.scaler = scaler
        self.max_samples = max_samples
        self.record = record
        # Preallocated ring buffer (lazily sized on the first push); a plain
        # ndarray ring keeps per-sample cost in C, which matters because at
        # micro-batched scoring rates the window bookkeeping -- not the
        # model -- is the marginal cost.
        self._ring: Optional[np.ndarray] = None      # (window, n_channels)
        self._cursor = 0                             # next write slot
        self._filled = 0                             # total samples written
        self._resolved = resolve_threshold(threshold, detector)
        # Incremental hot path: window-state detectors with a causal conv
        # stack score each sample in O(layers) as it arrives; everything
        # else keeps batch scoring (incremental_scorer() returns None).
        self._scorer = None
        self._tracer = tracer
        if incremental and detector.scores_current_sample:
            self._scorer = detector.incremental_scorer()
        if self._tracer is not None and self._scorer is not None:
            self._tracer.instant("incremental_lane", self.stream_id,
                                 engaged=True)
        self._adapter: Optional[AdaptationState] = None
        if adaptation is not None:
            self._adapter = adaptation.start(self._resolved)
        self._closed = False
        self._pushed = 0           # samples ingested
        self._submitted = 0        # requests emitted (== budget consumed)
        self._next_complete = 0    # seq the next complete() must carry
        self._completed = 0
        self._dropped = 0
        self._discarded: set = set()   # dropped seqs awaiting skip-over
        # Recording state (index-aligned, NaN until scored).
        self._scores: List[float] = []
        self._alarms: List[int] = []
        self._trace: List[float] = []
        self._latencies: List[float] = []

    # -- introspection ---------------------------------------------------- #
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def samples_pushed(self) -> int:
        return self._pushed

    @property
    def samples_scored(self) -> int:
        return self._completed

    @property
    def samples_dropped(self) -> int:
        """Requests discarded unscored (drop-oldest backpressure)."""
        return self._dropped

    @property
    def outstanding(self) -> int:
        """Submitted requests not yet completed or discarded."""
        return self._submitted - self._completed - self._dropped

    @property
    def threshold(self) -> Optional[CalibratedThreshold]:
        """The threshold currently in effect (adaptive lanes move it)."""
        if self._adapter is not None:
            return self._adapter.threshold
        return self._resolved

    @property
    def adaptation_events(self) -> list:
        return self._adapter.events if self._adapter is not None else []

    @property
    def adaptation_state(self) -> Optional[AdaptationState]:
        return self._adapter

    @property
    def incremental_active(self) -> bool:
        """Whether the O(1)-per-sample incremental lane scores this stream."""
        return self._scorer is not None

    # -- the submit/complete state machine -------------------------------- #
    def submit(self, values: Union[np.ndarray, list]) -> Optional[WindowRequest]:
        """Ingest one sample; return a scorable request once the window fills.

        Returns ``None`` during the warm-up prefix (and once the
        ``max_samples`` budget is spent) -- exactly the samples the
        sequential runtime leaves NaN.
        """
        if self._closed:
            raise SessionClosedError(
                f"session {self.stream_id!r} is closed"
            )
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            values = values.ravel()
        if self.scaler is not None:
            values = np.asarray(
                self.scaler.transform(values[None, :]), dtype=np.float64
            ).ravel()
        if self._ring is None:
            if values.shape[0] < 1:
                raise ValueError("samples must carry at least one channel")
            self._ring = np.empty((self.detector.window, values.shape[0]))
        elif values.shape[0] != self._ring.shape[1]:
            raise ValueError(
                f"expected {self._ring.shape[1]} channels, "
                f"got {values.shape[0]}"
            )
        index = self._pushed
        self._pushed += 1
        if self.record:
            self._scores.append(float("nan"))
            self._alarms.append(0)
            self._trace.append(float("nan"))

        scores_current = self.detector.scores_current_sample
        if scores_current:
            # Window-state detectors (VARADE, AE) include the newest sample
            # in the context they score.
            self._push_ring(values)
        score: Optional[float] = None
        score_latency = 0.0
        if self._scorer is not None:
            # The incremental scorer sees every sample (it mirrors the ring's
            # state), whether or not a request is emitted for it.
            start = time.perf_counter()
            try:
                score = self._scorer.push(values)
            except ValueError:
                # A shape the plan cannot ingest: disable the incremental
                # lane and let the batch path report the problem on its own
                # terms (identical behaviour to a non-incremental session).
                self._scorer = None
                score = None
                if self._tracer is not None:
                    self._tracer.instant("incremental_lane_disabled",
                                         self.stream_id, index=index)
            else:
                score_latency = time.perf_counter() - start
        request = None
        if self._filled >= self._ring.shape[0] and \
                (self.max_samples is None
                 or self._submitted < self.max_samples):
            request = WindowRequest(
                session=self,
                seq=self._submitted,
                index=index,
                context=self._window_array(),
                target=values,
            )
            if score is not None:
                request.score = float(score)
                request.score_latency_s = score_latency
            self._submitted += 1
        if not scores_current:
            self._push_ring(values)
        return request

    def _push_ring(self, values: np.ndarray) -> None:
        self._ring[self._cursor] = values
        self._cursor += 1
        if self._cursor == self._ring.shape[0]:
            self._cursor = 0
        self._filled += 1

    def _window_array(self) -> np.ndarray:
        """Materialise the full context window, oldest sample first."""
        if self._cursor == 0:
            return self._ring.copy()
        return np.concatenate((self._ring[self._cursor:],
                               self._ring[:self._cursor]))

    def complete(self, request: WindowRequest, score: float, *,
                 latency_s: float = 0.0,
                 queue_delay_s: Optional[float] = None) -> ScoredSample:
        """Apply threshold + adaptation to a scored request, in order."""
        if request.session is not self:
            raise ValueError("request belongs to a different session")
        if request.seq != self._next_complete:
            raise ValueError(
                f"session {self.stream_id!r}: completions must follow "
                f"submission order (expected seq {self._next_complete}, "
                f"got {request.seq})"
            )
        self._next_complete += 1
        self._skip_discarded()
        self._completed += 1
        score = float(score)
        threshold_value: Optional[float] = None
        alarm = False
        if self._adapter is not None:
            threshold_value = self._adapter.threshold.threshold
            alarm = score > threshold_value
            if self._tracer is not None:
                known = len(self._adapter.events)
                self._adapter.observe(request.index, score,
                                      raw=request.target)
                for event in self._adapter.events[known:]:
                    self._tracer.instant(
                        "adaptation", self.stream_id,
                        index=request.index, kind=event.kind,
                        trigger=event.trigger,
                        old_threshold=event.old_threshold,
                        new_threshold=event.new_threshold)
            else:
                self._adapter.observe(request.index, score,
                                      raw=request.target)
        elif self._resolved is not None:
            threshold_value = self._resolved.threshold
            alarm = score > threshold_value
        if self.record:
            self._scores[request.index] = score
            if threshold_value is not None:
                self._alarms[request.index] = int(alarm)
                self._trace[request.index] = threshold_value
            self._latencies.append(latency_s)
        return ScoredSample(
            stream_id=self.stream_id,
            index=request.index,
            score=score,
            threshold=threshold_value,
            alarm=alarm,
            latency_s=latency_s,
            queue_delay_s=queue_delay_s,
        )

    def discard(self, request: WindowRequest) -> None:
        """Drop a submitted request unscored (backpressure shedding).

        The sample keeps its NaN score (its push already advanced the
        context window, so later windows stay contiguous); completion
        bookkeeping skips the dropped sequence number so the remaining
        completions still arrive in submission order.  Both backpressure
        sheds route here: ``drop_oldest`` discards the session's stalest
        pending request, ``reject`` the refused newest one.
        """
        if request.session is not self:
            raise ValueError("request belongs to a different session")
        if request.seq < self._next_complete or request.seq in self._discarded:
            raise ValueError(
                f"session {self.stream_id!r}: request seq {request.seq} was "
                f"already completed or discarded"
            )
        self._dropped += 1
        self._discarded.add(request.seq)
        self._skip_discarded()

    def _skip_discarded(self) -> None:
        while self._next_complete in self._discarded:
            self._discarded.remove(self._next_complete)
            self._next_complete += 1

    # -- inline scoring ---------------------------------------------------- #
    def push(self, values: Union[np.ndarray, list]) -> Optional[Alarm]:
        """Ingest and score one sample inline; return the alarm it raised.

        When the session's incremental scorer already scored the sample at
        submit time, that score is used directly (it is bit-identical to
        the batch path); otherwise the inline path scores a one-row batch
        through the same ``score_windows_batch`` contract the micro-batcher
        uses, so inline and batched serving are bit-identical either way.
        Returns the :class:`Alarm` (a :class:`ScoredSample` with
        ``alarm=True``) when this sample crossed the threshold, ``None``
        otherwise -- including the warm-up prefix and thresholdless
        sessions.
        """
        request = self.submit(values)
        if request is None:
            return None
        if request.score is not None:
            sample = self.complete(request, request.score,
                                   latency_s=request.score_latency_s)
            return sample if sample.alarm else None
        start = time.perf_counter()
        score = self.detector.score_windows_batch(
            request.context[None, ...], request.target[None, :]
        )[0]
        latency = time.perf_counter() - start
        sample = self.complete(request, float(score), latency_s=latency)
        return sample if sample.alarm else None

    # -- lifecycle / results ----------------------------------------------- #
    def close(self) -> None:
        """Refuse further pushes.  Outstanding requests may still complete."""
        self._closed = True

    def adopt_threshold(self,
                        threshold: Optional[CalibratedThreshold]) -> None:
        """Adopt the threshold of a newly promoted detector.

        Called by :meth:`repro.serve.AnomalyService.swap_detector` after
        migrating the session onto a new detector: a session alarming on
        the *old* artifact's calibration would judge the new model by the
        wrong yardstick.  Sessions with a live drift-adaptation lane keep
        it untouched -- their threshold is learned per-stream state, not
        artifact calibration, and the lane already tracks the scores the
        new detector produces.
        """
        if self._adapter is not None:
            return
        self._resolved = threshold

    # -- handoff (cluster session re-homing) -------------------------------- #
    def export_state(self) -> dict:
        """Snapshot everything but the detector, for re-homing the session.

        The snapshot carries the ring buffer, the resolved threshold, the
        live adaptation lane and all counters/recording state -- enough for
        :meth:`from_state` on another process (sharing the same artifact)
        to continue the stream with bit-identical scores, alarms and
        adaptation events.  The scheduler must have drained the session
        first: requests in flight hold a reference to this object and
        cannot travel.
        """
        if self.outstanding:
            raise RuntimeError(
                f"session {self.stream_id!r} still has {self.outstanding} "
                f"outstanding requests; drain before exporting"
            )
        return {
            "version": 1,
            "stream_id": self.stream_id,
            "scaler": self.scaler,
            "max_samples": self.max_samples,
            "record": self.record,
            "ring": None if self._ring is None else self._ring.copy(),
            "cursor": self._cursor,
            "filled": self._filled,
            "resolved": self._resolved,
            "incremental": self._scorer is not None,
            "adapter": self._adapter,
            "closed": self._closed,
            "pushed": self._pushed,
            "submitted": self._submitted,
            "next_complete": self._next_complete,
            "completed": self._completed,
            "dropped": self._dropped,
            "discarded": set(self._discarded),
            "scores": list(self._scores),
            "alarms": list(self._alarms),
            "trace": list(self._trace),
            "latencies": list(self._latencies),
        }

    @classmethod
    def from_state(cls, detector: AnomalyDetector, state: dict,
                   *, tracer=None) -> "ScoringSession":
        """Rebuild a session from :meth:`export_state` on this ``detector``.

        The detector must be the same artifact the session was scored by so
        far (same weights -- the cluster keys workers by artifact
        fingerprint to guarantee it).  The incremental lane is re-warmed by
        replaying the ring contents: scores depend only on the last
        ``window`` samples (the fastpath parity contract equates them with
        batch scores over exactly that context), so the replayed scorer
        continues bit-identically.
        """
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported session state version {state.get('version')!r}")
        session = cls.__new__(cls)
        session.detector = detector
        session.stream_id = state["stream_id"]
        session.scaler = state["scaler"]
        session.max_samples = state["max_samples"]
        session.record = state["record"]
        ring = state["ring"]
        session._ring = None if ring is None \
            else np.array(ring, dtype=np.float64)
        session._cursor = state["cursor"]
        session._filled = state["filled"]
        session._resolved = state["resolved"]
        session._tracer = tracer
        session._adapter = state["adapter"]
        session._closed = state["closed"]
        session._pushed = state["pushed"]
        session._submitted = state["submitted"]
        session._next_complete = state["next_complete"]
        session._completed = state["completed"]
        session._dropped = state["dropped"]
        session._discarded = set(state["discarded"])
        session._scores = list(state["scores"])
        session._alarms = list(state["alarms"])
        session._trace = list(state["trace"])
        session._latencies = list(state["latencies"])
        session._scorer = None
        if state["incremental"] and detector.scores_current_sample:
            session._scorer = session._rewarm_scorer()
        if tracer is not None:
            tracer.instant("session_import", session.stream_id,
                           pushed=session._pushed,
                           incremental=session._scorer is not None)
        return session

    def _rewarm_scorer(self):
        """Recreate the incremental scorer by replaying the ring history."""
        scorer = self.detector.incremental_scorer()
        if scorer is None:
            return None
        try:
            for row in self._ring_history():
                scorer.push(row)
        except ValueError:
            # Mirrors the submit()-time fallback: a shape the incremental
            # plan rejects keeps the session on the (bit-identical) batch
            # path instead of failing the import.
            return None
        return scorer

    def _ring_history(self) -> np.ndarray:
        """The retained samples in push order (at most ``window`` of them)."""
        if self._ring is None or self._filled == 0:
            return np.empty((0, 0))
        if self._filled < self._ring.shape[0]:
            # Never wrapped: rows [0, filled) are already in push order.
            return self._ring[:self._filled]
        return self._window_array()

    def result(self, labels: Optional[np.ndarray] = None):
        """Build the :class:`~repro.edge.StreamingResult` of this session.

        Only available on recording sessions (``record=True``); the arrays
        cover every pushed sample, NaN where nothing was scored -- the same
        layout the sequential runtime produces.
        """
        from ..edge.runtime import StreamingResult

        if not self.record:
            raise RuntimeError(
                f"session {self.stream_id!r} was created with record=False; "
                f"consume its ScoredSample events instead"
            )
        if labels is None:
            labels = np.zeros(self._pushed, dtype=np.int64)
        else:
            labels = np.asarray(labels).copy()
            if labels.shape[0] != self._pushed:
                raise ValueError(
                    f"labels must have one entry per pushed sample "
                    f"({self._pushed}), got {labels.shape[0]}"
                )
        has_threshold = self._resolved is not None
        return StreamingResult(
            detector=self.detector.name,
            scores=np.asarray(self._scores, dtype=np.float64),
            labels=labels,
            alarms=np.asarray(self._alarms, dtype=np.int64),
            latencies_s=np.asarray(self._latencies, dtype=np.float64),
            samples_scored=self._completed,
            adaptation_events=self.adaptation_events,
            threshold_trace=np.asarray(self._trace, dtype=np.float64)
            if has_threshold else None,
        )
