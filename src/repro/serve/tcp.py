"""Networked front door for :class:`AnomalyService`: one dispatch core,
pluggable protocols and transports.

Every connection speaks one of two *protocols*, decided by its first byte
(no handshake round trip):

* **line-delimited JSON** -- first byte is anything but ``0xAB``.  Every
  line is one JSON object, UTF-8, ``\\n``-terminated; any producer -- a
  shell script, ``nc``, a robot cell's data logger -- can use it, which is
  exactly why it stays the debuggability path.
* **binary** -- first byte ``0xAB`` (the :data:`repro.serve.wire.MAGIC`
  prefix).  Struct-packed frames with float32 sample blocks, many samples
  per PUSH frame; the compact ingest path for high sample rates (see
  :mod:`repro.serve.wire` for the frame layout).

JSON requests (client -> server)::

    {"op": "open",  "stream": "cell-7"}            optional: "max_samples",
                                                   "tenant" (cluster workers)
    {"op": "push",  "stream": "cell-7", "values": [0.1, 0.2, ...]}
    {"op": "close", "stream": "cell-7"}
    {"op": "stats"}
    {"op": "ping"}
    {"op": "metrics"}                              Prometheus text snapshot
    {"op": "trace"}                                Chrome trace JSON snapshot
    {"op": "snapshot"}                             rich JSON state (always on)
    {"op": "shutdown"}                             stops the whole server

(``metrics`` and ``trace`` answer only when the service was built with
``ServiceConfig(observability=True)``; otherwise they get a structured
error reply, like any other rejected op.  ``snapshot`` answers always --
it reads counters the hot path maintains anyway -- and is what
:mod:`repro.cluster` aggregates into fleet stats.)

Two further control-plane ops exist for the cluster's session re-homing,
``export_session`` and ``import_session``; they are refused unless the
server was built with ``allow_handoff=True`` (cluster workers only --
imported blobs are pickles and must never be accepted from untrusted
clients).

Every request gets exactly one reply, in request order::

    {"ok": true, "op": "push", "accepted": 1}      (+ op-specific fields)
    {"ok": false, "op": "push", "error": "..."}

Between replies the server interleaves unsolicited *event* lines (JSON: a
line with an ``"event"`` key; binary: an ALARM_EVENT frame) for every alarm
raised by any stream of this connection::

    {"event": "alarm", "stream": "cell-7", "index": 412,
     "score": 3.1, "threshold": 1.9}

The binary protocol mirrors the same six ops frame-for-frame; its PUSH
frames batch ``(n_samples, n_channels)`` float32 blocks and are acked once
per frame.  Malformed JSON gets an error *reply* and the connection
continues; malformed binary framing gets an ERROR frame and the connection
closes (a corrupted byte stream cannot be resynchronised).  Either way the
service itself never crashes and the connection's sessions are cleaned up.

``close`` replies with the session summary (samples pushed/scored/dropped,
adaptation event count), so a producer gets its end-of-stream accounting
without a second channel.  Backpressure under the ``"reject"`` policy
surfaces as an error reply; under ``"block"`` the reply is simply delayed
-- the transport's own flow control propagates the slowdown.

*Transports* are pluggable too (:mod:`repro.serve.transport`):
:class:`AnomalyWireServer` serves over any :class:`~repro.serve.transport.
Transport`; :class:`AnomalyTCPServer` is the TCP spelling, and a
:class:`~repro.serve.transport.UnixSocketTransport` serves co-located
producers with no TCP/IP stack in the path.  Clients mirror the split:
:class:`TCPClient` (JSON) and :class:`BinaryClient` share one blocking
request core and both accept ``uds_path=`` to connect over a Unix socket.
Streams opened by a connection are closed (and drained) when that
connection drops, so a crashed producer cannot leak sessions.
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
import socket
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

import numpy as np

from . import wire
from .service import AnomalyService
from .session import ScoredSample
from .transport import (TCPTransport, Transport, UnixSocketTransport,
                        bound_port)

__all__ = ["AnomalyWireServer", "AnomalyTCPServer", "TCPClient",
           "BinaryClient", "ServerTimeoutError", "PROTOCOLS",
           "write_endpoint_file"]

#: The protocols a server may accept; ``AnomalyWireServer(protocols=...)``
#: restricts them (e.g. binary-only for a production ingest socket).
PROTOCOLS = ("json", "binary")

_OP_CODES = {"open": wire.OP_OPEN, "push": wire.OP_PUSH,
             "close": wire.OP_CLOSE, "stats": wire.OP_STATS,
             "ping": wire.OP_PING, "shutdown": wire.OP_SHUTDOWN,
             "metrics": wire.OP_METRICS, "trace": wire.OP_TRACE,
             "snapshot": wire.OP_SNAPSHOT,
             "export_session": wire.OP_EXPORT_SESSION,
             "import_session": wire.OP_IMPORT_SESSION}
_OP_NAMES = {code: name for name, code in _OP_CODES.items()}


def write_endpoint_file(path: Union[str, Path], text: str) -> None:
    """Atomically publish an endpoint line: write a temp file, then rename.

    Pollers race the writer by design (the port-file handshake), so the
    visible file must never hold a partial line.  ``os.replace`` of a file
    written in the same directory is atomic on POSIX and Windows alike.
    """
    path = Path(path)
    temp = path.with_name(path.name + ".tmp")
    temp.write_text(text + "\n", encoding="utf-8")
    os.replace(temp, path)


class ServerTimeoutError(ConnectionError):
    """No reply arrived within the client's timeout (stalled/half-closed)."""


class _MalformedRequest(Exception):
    """A request the codec could not parse.

    ``fatal`` distinguishes recoverable malformations (a bad JSON line --
    the framing is still line-synchronised, reply and continue) from
    unrecoverable ones (corrupt binary framing -- reply once, then close).
    """

    def __init__(self, message: str, *, request_op: Optional[str] = None,
                 fatal: bool = False) -> None:
        super().__init__(message)
        self.message = message
        self.request_op = request_op
        self.fatal = fatal


def _event_payload(sample: ScoredSample) -> Dict[str, Any]:
    payload = {
        "event": "alarm",
        "stream": sample.stream_id,
        "index": sample.index,
        "score": sample.score,
        "threshold": sample.threshold,
    }
    # Optional so fingerprint-less events keep the pre-lifecycle shape.
    if sample.fingerprint is not None:
        payload["fingerprint"] = sample.fingerprint
    return payload


def _json_line(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload) + "\n").encode("utf-8")


# --------------------------------------------------------------------------- #
# Server-side protocol codecs
# --------------------------------------------------------------------------- #
class _JSONServerConnection:
    """Line-delimited JSON framing for one server connection."""

    protocol = "json"

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, first_byte: bytes) -> None:
        self._reader = reader
        self._writer = writer
        self._first = first_byte

    async def read_request(self) -> Optional[Dict[str, Any]]:
        line = await self._reader.readline()
        if self._first:
            line, self._first = self._first + line, b""
        if not line:
            return None
        try:
            message = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _MalformedRequest(f"bad JSON line: {error}") from error
        if not isinstance(message, dict) or "op" not in message:
            raise _MalformedRequest(
                "each line must be an object with an 'op' key")
        return message

    def write_reply(self, reply: Dict[str, Any]) -> None:
        self._writer.write(_json_line(reply))

    def write_error(self, error: _MalformedRequest) -> None:
        self.write_reply({"ok": False, "op": error.request_op,
                          "error": error.message})

    def write_event(self, sample: ScoredSample) -> None:
        self._writer.write(_json_line(_event_payload(sample)))


class _BinaryServerConnection:
    """Binary wire framing for one server connection."""

    protocol = "binary"

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, first_byte: bytes) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = wire.FrameDecoder()
        self._decoder.feed(first_byte)
        self._pending: List[wire.Frame] = []

    async def read_request(self) -> Optional[Dict[str, Any]]:
        while not self._pending:
            try:
                self._pending.extend(self._decoder.frames())
            except wire.WireProtocolError as error:
                raise _MalformedRequest(str(error), fatal=True) from error
            if self._pending:
                break
            chunk = await self._reader.read(1 << 16)
            if not chunk:
                if self._decoder.pending_bytes:
                    # EOF mid-frame: nothing to reply to; the connection
                    # handler's cleanup path closes the sessions.
                    raise _MalformedRequest(
                        "connection dropped mid-frame", fatal=True)
                return None
            self._decoder.feed(chunk)
        return self._to_message(self._pending.pop(0))

    @staticmethod
    def _to_message(frame: wire.Frame) -> Dict[str, Any]:
        if isinstance(frame, wire.Open):
            message: Dict[str, Any] = {"op": "open", "stream": frame.stream}
            if frame.max_samples is not None:
                message["max_samples"] = frame.max_samples
            if frame.tenant is not None:
                message["tenant"] = frame.tenant
            return message
        if isinstance(frame, wire.Push):
            return {"op": "push", "stream": frame.stream,
                    "values": np.asarray(frame.samples, dtype=np.float64)}
        if isinstance(frame, wire.Close):
            return {"op": "close", "stream": frame.stream}
        if isinstance(frame, wire.ExportSession):
            return {"op": "export_session", "stream": frame.stream}
        if isinstance(frame, wire.ImportSession):
            return {"op": "import_session", "tenant": frame.tenant,
                    "state": frame.state}
        for frame_type, op in ((wire.Stats, "stats"), (wire.Ping, "ping"),
                               (wire.Shutdown, "shutdown"),
                               (wire.Metrics, "metrics"),
                               (wire.Trace, "trace"),
                               (wire.Snapshot, "snapshot")):
            if isinstance(frame, frame_type):
                return {"op": op}
        # A structurally valid frame that is not a request (a client echoing
        # server reply ops): framing is still synchronised, so answer with a
        # structured error and keep the connection.
        raise _MalformedRequest(
            f"frame op 0x{frame.op:02X} is not a request op")

    def write_reply(self, reply: Dict[str, Any]) -> None:
        self._writer.write(wire.encode(self._to_frame(reply)))

    def write_error(self, error: _MalformedRequest) -> None:
        request_op = _OP_CODES.get(error.request_op, 0)
        self._writer.write(wire.encode(
            wire.ErrorReply(request_op=request_op, message=error.message)))

    def write_event(self, sample: ScoredSample) -> None:
        self._writer.write(wire.encode(wire.AlarmEvent(
            stream=sample.stream_id, index=sample.index,
            score=sample.score, threshold=sample.threshold,
            fingerprint=sample.fingerprint)))

    @staticmethod
    def _to_frame(reply: Dict[str, Any]) -> wire.Frame:
        op = reply.get("op")
        if not reply.get("ok"):
            return wire.ErrorReply(request_op=_OP_CODES.get(op, 0),
                                   message=str(reply.get("error")))
        if op == "open":
            return wire.OpenAck(stream=reply["stream"],
                                window=reply["window"],
                                incremental=reply["incremental"],
                                threshold=reply["threshold"])
        if op == "push":
            return wire.PushAck(accepted=reply["accepted"])
        if op == "close":
            return wire.CloseAck(
                stream=reply["stream"],
                samples_pushed=reply["samples_pushed"],
                samples_scored=reply["samples_scored"],
                samples_dropped=reply["samples_dropped"],
                adaptation_events=reply["adaptation_events"])
        if op == "stats":
            p99 = reply["queue_delay_p99_s"]
            return wire.StatsAck(
                live_sessions=reply["live_sessions"],
                samples_pushed=reply["samples_pushed"],
                samples_scored=reply["samples_scored"],
                samples_dropped=reply["samples_dropped"],
                flushes=reply["flushes"],
                mean_batch_size=reply["mean_batch_size"],
                queue_delay_p99_s=float("nan") if p99 is None else p99)
        if op == "ping":
            return wire.PingAck()
        if op == "shutdown":
            return wire.ShutdownAck()
        if op == "metrics":
            return wire.MetricsAck(text=reply["text"])
        if op == "trace":
            return wire.TraceAck(json_text=json.dumps(
                reply["trace"], allow_nan=False, separators=(",", ":")))
        if op == "snapshot":
            return wire.SnapshotAck(json_text=json.dumps(
                reply["snapshot"], allow_nan=False, separators=(",", ":")))
        if op == "export_session":
            return wire.ExportSessionAck(stream=reply["stream"],
                                         tenant=reply["tenant"],
                                         state=reply["state"])
        if op == "import_session":
            return wire.ImportSessionAck(stream=reply["stream"])
        raise RuntimeError(f"no binary encoding for reply op {op!r}")


class AnomalyWireServer:
    """Serve an :class:`AnomalyService` over a pluggable transport.

    One dispatch core handles every connection; each connection's first
    byte selects its protocol codec (``0xAB`` = binary, else line JSON).
    ``protocols`` restricts what this listener accepts -- a connection
    speaking a disabled protocol gets one structured error and is closed.
    """

    def __init__(self, service: AnomalyService, transport: Transport, *,
                 allow_shutdown: bool = True,
                 allow_handoff: bool = False,
                 protocols: Iterable[str] = PROTOCOLS) -> None:
        self.service = service
        self.transport = transport
        #: honour the ``shutdown`` op (the smoke flow's clean-exit path);
        #: disable for servers that must only stop from their own host.
        self.allow_shutdown = allow_shutdown
        #: honour ``export_session``/``import_session``.  Off by default:
        #: imports deserialise pickled session state, so only
        #: cluster-internal worker endpoints may enable this.
        self.allow_handoff = allow_handoff
        self.protocols = tuple(protocols)
        unknown = set(self.protocols) - set(PROTOCOLS)
        if unknown or not self.protocols:
            raise ValueError(
                f"protocols must be a non-empty subset of {PROTOCOLS}, "
                f"got {tuple(protocols)!r}"
            )
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping: Optional[asyncio.Event] = None
        # Wire-level metric families, registered into the service's
        # registry when observability is on (None family = no-op).
        self._connections_total = None
        self._requests_total = None
        self._wire_errors_total = None
        self._alarm_events_total = None
        if service.observability is not None:
            registry = service.observability.registry
            self._connections_total = registry.counter(
                "repro_wire_connections_total",
                "Connections accepted, by negotiated protocol.",
                labels=("protocol",))
            self._requests_total = registry.counter(
                "repro_wire_requests_total",
                "Requests dispatched, by protocol and op.",
                labels=("protocol", "op"))
            self._wire_errors_total = registry.counter(
                "repro_wire_errors_total",
                "Error replies sent (malformed frames + rejected ops).",
                labels=("protocol",))
            self._alarm_events_total = registry.counter(
                "repro_wire_alarm_events_total",
                "Unsolicited alarm events forwarded to clients.",
                labels=("protocol",))

    @property
    def bound_port(self) -> int:
        """The actual TCP port (useful with ``port=0`` ephemeral binding)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        if not isinstance(self.transport, TCPTransport):
            raise RuntimeError(
                f"the {self.transport.kind!r} transport has no TCP port"
            )
        return bound_port(self._server)

    @property
    def bound_address(self) -> str:
        """Endpoint text once listening (port number for TCP, path for UDS)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self.transport.address_text(self._server)

    async def serve_forever(self,
                            port_file: Optional[Union[str, Path]] = None,
                            ready: Optional[asyncio.Event] = None) -> None:
        """Run service + listener until ``shutdown`` (or cancellation).

        ``port_file``, when given, receives the bound endpoint as text once
        the listener is up (the TCP port number, or the UDS path) -- a
        race-free handshake for scripted clients.  ``ready`` is set at the
        same moment (for in-process callers).
        """
        self._stopping = asyncio.Event()
        started: List[AnomalyService] = []
        try:
            for service in self._all_services():
                await service.start()
                started.append(service)
            self._server = await self.transport.listen(self._handle_connection)
            try:
                if port_file is not None:
                    # Atomic write-then-rename: a poller racing this
                    # handshake must never read a partial endpoint line.
                    write_endpoint_file(port_file, self.bound_address)
                if ready is not None:
                    ready.set()
                await self._stopping.wait()
            finally:
                self._server.close()
                await self._server.wait_closed()
                self._server = None
        finally:
            for service in reversed(started):
                await service.stop()

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to wind down (idempotent)."""
        if self._stopping is not None:
            self._stopping.set()

    # -- the served services (overridable: multi-tenant cluster workers) ---- #
    def _all_services(self) -> Iterable[AnomalyService]:
        """Every service this server fronts (one, unless multi-tenant)."""
        return (self.service,)

    def _named_services(self) -> Dict[str, AnomalyService]:
        """Tenant-name view of :meth:`_all_services` (snapshot schema)."""
        return {"default": self.service}

    def _service_for(self, message: Dict[str, Any]) -> AnomalyService:
        """Resolve the service a stream op addresses (tenant routing hook)."""
        if message.get("tenant") not in (None, "default"):
            raise ValueError(
                "this server hosts a single artifact; tenant keys are only "
                "meaningful on a multi-tenant cluster worker")
        return self.service

    def _tenant_for_stream(self, stream_id: str) -> str:
        """The tenant key a session belongs to (export replies carry it)."""
        return "default"

    def _register_stream(self, stream_id: str,
                         message: Dict[str, Any]) -> None:
        """Hook: a stream was opened/imported (tenant bookkeeping)."""

    def _forget_stream(self, stream_id: str) -> None:
        """Hook: a stream was closed/exported."""

    def _session_service(self, stream_id: str) -> Optional[AnomalyService]:
        for service in self._all_services():
            if stream_id in service.sessions:
                return service
        return None

    def _merged_stats(self):
        return self.service.stats()

    def _metrics_text(self) -> str:
        return self.service.metrics_text()

    def _snapshot(self) -> Dict[str, Any]:
        """Machine-readable state of every hosted service (cluster probes)."""
        return {"services": {
            name: {"fingerprint": service.artifact_fingerprint,
                   "stats": service.stats().to_dict()}
            for name, service in self._named_services().items()}}

    def _note_swap(self, service: AnomalyService) -> None:
        """Hook: ``service`` just hot-swapped its detector (promote or
        rollback); multi-tenant servers re-key their fingerprint maps."""

    # -- per-connection handling ------------------------------------------- #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        owned: List[str] = []
        # The forwarder filters on every stream this connection EVER owned,
        # not the live set: a close drains pending windows whose alarms are
        # broadcast before the close handler prunes `owned`, and those
        # end-of-stream alarms must still reach the client.  (Consequence:
        # do not reuse a closed stream id from a different connection.)
        ever_owned: set = set()
        alarm_tasks: List[asyncio.Task] = []
        try:
            first = await reader.read(1)
            if first:
                codec = self._negotiate(reader, writer, first)
                alarm_tasks = [
                    asyncio.create_task(
                        self._forward_alarms(service, codec, writer,
                                             ever_owned))
                    for service in self._all_services()]
                await self._connection_loop(codec, writer, owned, ever_owned)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            for alarm_task in alarm_tasks:
                alarm_task.cancel()
            for alarm_task in alarm_tasks:
                try:
                    await alarm_task
                except asyncio.CancelledError:
                    pass
            # A dropped producer must not leak its sessions.
            for stream_id in owned:
                service = self._session_service(stream_id)
                if service is not None:
                    try:
                        await service.close_session(stream_id)
                    except RuntimeError:
                        pass   # service already stopped
                    self._forget_stream(stream_id)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _negotiate(self, reader: asyncio.StreamReader,
                   writer: asyncio.StreamWriter, first: bytes):
        """First byte decides the protocol: 0xAB = binary, else line JSON."""
        if first == wire.MAGIC[:1]:
            codec = _BinaryServerConnection(reader, writer, first)
        else:
            codec = _JSONServerConnection(reader, writer, first)
        return codec

    async def _connection_loop(self, codec, writer: asyncio.StreamWriter,
                               owned: List[str], ever_owned: set) -> None:
        if codec.protocol not in self.protocols:
            codec.write_error(_MalformedRequest(
                f"the {codec.protocol} protocol is disabled on this server "
                f"(accepted: {', '.join(self.protocols)})", fatal=True))
            await writer.drain()
            return
        if self._connections_total is not None:
            self._connections_total.labels(protocol=codec.protocol).inc()
        while True:
            try:
                message = await codec.read_request()
            except _MalformedRequest as error:
                if self._wire_errors_total is not None:
                    self._wire_errors_total.labels(
                        protocol=codec.protocol).inc()
                codec.write_error(error)
                try:
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    return
                if error.fatal:
                    return
                continue
            if message is None:
                return
            if self._requests_total is not None:
                op = message.get("op")
                self._requests_total.labels(
                    protocol=codec.protocol,
                    op=op if op in _OP_CODES else "unknown").inc()
            reply = await self._dispatch(message, owned, ever_owned)
            if not reply.get("ok") and self._wire_errors_total is not None:
                self._wire_errors_total.labels(protocol=codec.protocol).inc()
            codec.write_reply(reply)
            await writer.drain()
            if reply.get("op") == "shutdown" and reply.get("ok"):
                return

    async def _forward_alarms(self, service: AnomalyService, codec,
                              writer: asyncio.StreamWriter,
                              ever_owned: set) -> None:
        async for alarm in service.alarms():
            if alarm.stream_id not in ever_owned:
                continue
            try:
                codec.write_event(alarm)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                return
            if self._alarm_events_total is not None:
                self._alarm_events_total.labels(
                    protocol=codec.protocol).inc()

    async def _dispatch(self, message: Dict[str, Any], owned: List[str],
                        ever_owned: set) -> Dict[str, Any]:
        op = message["op"]
        try:
            if op == "ping":
                return {"ok": True, "op": "ping"}
            if op == "stats":
                return dict(_stats_payload(self._merged_stats()),
                            ok=True, op="stats")
            if op == "snapshot":
                return {"ok": True, "op": "snapshot",
                        "snapshot": self._snapshot()}
            if op == "open":
                stream_id = _required_stream(message)
                service = self._service_for(message)
                session = await service.open_session(
                    stream_id, max_samples=message.get("max_samples"))
                self._register_stream(stream_id, message)
                owned.append(stream_id)
                ever_owned.add(stream_id)
                threshold = session.threshold
                return {"ok": True, "op": "open", "stream": stream_id,
                        "window": service.detector.window,
                        "incremental": session.incremental_active,
                        "threshold": None if threshold is None
                        else threshold.threshold}
            if op == "push":
                stream_id = _required_stream(message)
                block = _push_block(message)
                service = self._session_service(stream_id)
                if service is None:
                    service = self._service_for(message)  # auto-open path
                    self._register_stream(stream_id, message)
                    owned.append(stream_id)
                    ever_owned.add(stream_id)
                for row in block:
                    await service.push(stream_id, row)
                return {"ok": True, "op": "push",
                        "accepted": int(block.shape[0])}
            if op == "close":
                stream_id = _required_stream(message)
                service = self._session_service(stream_id)
                if service is None:
                    raise ValueError(f"unknown stream {stream_id!r}")
                session = await service.close_session(stream_id)
                self._forget_stream(stream_id)
                if stream_id in owned:
                    owned.remove(stream_id)
                return {"ok": True, "op": "close", "stream": stream_id,
                        "samples_pushed": session.samples_pushed,
                        "samples_scored": session.samples_scored,
                        "samples_dropped": session.samples_dropped,
                        "adaptation_events": len(session.adaptation_events)}
            if op == "export_session":
                if not self.allow_handoff:
                    raise ValueError(
                        "session handoff is disabled on this server")
                stream_id = _required_stream(message)
                service = self._session_service(stream_id)
                if service is None:
                    raise ValueError(f"unknown stream {stream_id!r}")
                tenant = self._tenant_for_stream(stream_id)
                blob = await service.export_session(stream_id)
                self._forget_stream(stream_id)
                if stream_id in owned:
                    owned.remove(stream_id)
                return {"ok": True, "op": "export_session",
                        "stream": stream_id, "tenant": tenant,
                        "state": base64.b64encode(blob).decode("ascii")}
            if op == "import_session":
                if not self.allow_handoff:
                    raise ValueError(
                        "session handoff is disabled on this server")
                service = self._service_for(message)
                state = message.get("state")
                if not isinstance(state, str) or not state:
                    raise ValueError("import_session needs a 'state' string")
                session = await service.import_session(
                    base64.b64decode(state.encode("ascii")))
                self._register_stream(session.stream_id, message)
                owned.append(session.stream_id)
                ever_owned.add(session.stream_id)
                return {"ok": True, "op": "import_session",
                        "stream": session.stream_id}
            if op == "metrics":
                return {"ok": True, "op": "metrics",
                        "text": self._metrics_text()}
            if op == "trace":
                return {"ok": True, "op": "trace",
                        "trace": self.service.trace_export()}
            if op == "canary":
                service = self._service_for(message)
                controller = _build_canary(message)
                service.attach_canary(controller)
                watch = message.get("watch")
                if watch is not None and watch is not False:
                    from ..lifecycle import MetaWatcher, WatchPolicy
                    policy = WatchPolicy(**watch) \
                        if isinstance(watch, dict) else WatchPolicy()
                    service.attach_watcher(MetaWatcher(policy))
                return {"ok": True, "op": "canary",
                        "fingerprint": controller.fingerprint,
                        "fraction": controller.fraction,
                        "gates": controller.gates.to_dict()}
            if op == "canary_status":
                service = self._service_for(message)
                controller = service.canary
                if controller is None:
                    raise ValueError("no canary is attached")
                return {"ok": True, "op": "canary_status",
                        "report": controller.evaluate().to_dict()}
            if op == "canary_stop":
                service = self._service_for(message)
                controller = service.stop_canary()
                return {"ok": True, "op": "canary_stop",
                        "report": controller.evaluate().to_dict()}
            if op == "promote":
                service = self._service_for(message)
                result = await service.promote(
                    force=bool(message.get("force", False)))
                if result["promoted"]:
                    self._note_swap(service)
                return dict(result, ok=True, op="promote")
            if op == "rollback":
                service = self._service_for(message)
                result = await service.rollback(
                    reason=str(message.get("reason", "manual")))
                self._note_swap(service)
                return dict(result, ok=True, op="rollback")
            if op == "shutdown":
                if not self.allow_shutdown:
                    raise ValueError("shutdown is disabled on this server")
                self.request_stop()
                return {"ok": True, "op": "shutdown"}
            raise ValueError(f"unknown op {op!r}")
        except (ValueError, TypeError, KeyError, RuntimeError) as error:
            # TypeError covers malformed client payloads (e.g. a string
            # max_samples) -- one error reply, never a dropped connection.
            return {"ok": False, "op": op if isinstance(op, str) else None,
                    "error": str(error)}


class AnomalyTCPServer(AnomalyWireServer):
    """The TCP spelling of :class:`AnomalyWireServer` (the default)."""

    def __init__(self, service: AnomalyService, host: str = "127.0.0.1",
                 port: int = 7007, *, allow_shutdown: bool = True,
                 protocols: Iterable[str] = PROTOCOLS) -> None:
        super().__init__(service, TCPTransport(host, port),
                         allow_shutdown=allow_shutdown, protocols=protocols)
        self.host = host
        self.port = port


def _build_canary(message: Dict[str, Any]):
    """Build a CanaryController from a ``canary`` op's JSON payload.

    The candidate artifact (and its golden baseline sidecar) is loaded
    from the *server's* filesystem -- the op carries a path, not the
    artifact bytes.
    """
    from ..lifecycle import CanaryController, CanaryGates, load_baseline
    from ..serialize import artifact_fingerprint, load_detector

    artifact = message.get("artifact")
    if not isinstance(artifact, str) or not artifact:
        raise ValueError("op 'canary' needs an 'artifact' path string")
    candidate = load_detector(artifact)
    baseline = load_baseline(artifact)
    gates_spec = message.get("gates")
    if gates_spec is not None and not isinstance(gates_spec, dict):
        raise ValueError("'gates' must be a mapping of gate limits")
    gates = CanaryGates(**gates_spec) if gates_spec else None
    return CanaryController(
        candidate, baseline=baseline, gates=gates,
        fraction=float(message.get("fraction", 0.25)),
        fingerprint=artifact_fingerprint(artifact))


def _required_stream(message: Dict[str, Any]) -> str:
    stream = message.get("stream")
    if not isinstance(stream, str) or not stream:
        raise ValueError(f"op {message['op']!r} needs a 'stream' string")
    return stream


def _push_block(message: Dict[str, Any]) -> np.ndarray:
    """Normalise a push payload to a ``(n_samples, n_channels)`` block.

    JSON pushes carry one sample as a flat ``values`` list; binary pushes
    arrive as an already-decoded 2-D float64 array (many samples).
    """
    values = message.get("values")
    if isinstance(values, np.ndarray):
        if values.ndim != 2 or values.size == 0:
            raise ValueError("push needs a non-empty sample block")
        return values
    if not isinstance(values, list) or not values:
        raise ValueError("push needs a non-empty 'values' array")
    return np.asarray(values, dtype=np.float64)[None, :]


def _json_float(value: float) -> Optional[float]:
    """NaN is not valid JSON; report it as null."""
    return float(value) if np.isfinite(value) else None


def _stats_payload(stats) -> Dict[str, Any]:
    """The JSON body of a ``stats`` reply for a (possibly merged) stats."""
    return {
        "live_sessions": stats.live_sessions,
        "samples_pushed": stats.samples_pushed,
        "samples_scored": stats.samples_scored,
        "samples_dropped": stats.samples_dropped,
        "flushes": stats.flushes,
        "mean_batch_size": stats.mean_batch_size,
        "queue_delay_p99_s": _json_float(stats.queue_delay_p99_s),
    }


# --------------------------------------------------------------------------- #
# Blocking clients
# --------------------------------------------------------------------------- #
class _ClientCore:
    """Shared blocking request core of :class:`TCPClient`/:class:`BinaryClient`.

    Replies are matched to requests in order; unsolicited alarm events that
    arrive in between are collected on :attr:`alarms` (as JSON-shaped
    dicts, whichever protocol carried them).  Reads respect ``timeout_s``:
    a stalled or half-closed server raises :class:`ServerTimeoutError`
    instead of hanging forever.  Subclasses provide the wire framing via
    ``_send`` / ``_read_message``.
    """

    protocol = ""

    def __init__(self, host: str = "127.0.0.1", port: int = 7007,
                 timeout_s: Optional[float] = 30.0, *,
                 uds_path: Optional[Union[str, Path]] = None) -> None:
        transport: Transport = TCPTransport(host, port) if uds_path is None \
            else UnixSocketTransport(uds_path)
        self.timeout_s = timeout_s
        self.endpoint = transport.describe()
        try:
            self._socket = transport.connect(timeout_s)
        except socket.timeout as error:
            raise ServerTimeoutError(
                f"could not connect to {self.endpoint} within "
                f"{timeout_s}s"
            ) from error
        #: alarm event payloads received so far (dicts, in arrival order)
        self.alarms: List[Dict[str, Any]] = []

    # -- plumbing ----------------------------------------------------------- #
    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request; absorb events until its reply arrives."""
        self._send(payload)
        while True:
            try:
                message = self._read_message()
            except socket.timeout as error:
                raise ServerTimeoutError(
                    f"no reply to op {payload.get('op')!r} from the server "
                    f"at {self.endpoint} within {self.timeout_s}s; the "
                    f"server may be stalled or the connection half-closed"
                ) from error
            if message is None:
                raise ConnectionError("server closed the connection")
            if "event" in message:
                self.alarms.append(message)
                continue
            return message

    def _send(self, payload: Dict[str, Any]) -> None:
        raise NotImplementedError

    def _read_message(self) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def _checked(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        reply = self.request(payload)
        if not reply.get("ok"):
            raise RuntimeError(
                f"server rejected {payload.get('op')!r}: {reply.get('error')}"
            )
        return reply

    # -- the protocol, one method per op ------------------------------------ #
    def ping(self) -> Dict[str, Any]:
        return self._checked({"op": "ping"})

    def open(self, stream_id: str, max_samples: Optional[int] = None,
             tenant: Optional[str] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "open", "stream": stream_id}
        if max_samples is not None:
            payload["max_samples"] = max_samples
        if tenant is not None:
            payload["tenant"] = tenant
        return self._checked(payload)

    def push(self, stream_id: str, values) -> Dict[str, Any]:
        return self._checked({
            "op": "push", "stream": stream_id,
            "values": [float(v) for v in np.asarray(values).ravel()],
        })

    def push_stream(self, stream_id: str, stream) -> int:
        """Push a whole ``(T, channels)`` recording; returns rows pushed."""
        stream = np.asarray(stream, dtype=np.float64)
        for row in stream:
            self.push(stream_id, row)
        return int(stream.shape[0])

    def close_stream(self, stream_id: str) -> Dict[str, Any]:
        return self._checked({"op": "close", "stream": stream_id})

    def stats(self) -> Dict[str, Any]:
        return self._checked({"op": "stats"})

    def snapshot(self) -> Dict[str, Any]:
        """Fetch the server's machine-readable state (per-service stats)."""
        return self._checked({"op": "snapshot"})["snapshot"]

    def export_session(self, stream_id: str) -> Dict[str, Any]:
        """Drain and export a live session as an opaque handoff blob.

        Only honoured by servers started with ``allow_handoff=True``
        (cluster-internal worker endpoints).  The reply carries the
        stream id, its tenant key, and a base64 ``state`` string to feed
        to :meth:`import_session` on another worker.
        """
        return self._checked({"op": "export_session", "stream": stream_id})

    def import_session(self, tenant: Optional[str],
                       state: str) -> Dict[str, Any]:
        """Re-home a previously exported session onto this server."""
        payload: Dict[str, Any] = {"op": "import_session", "state": state}
        if tenant is not None:
            payload["tenant"] = tenant
        return self._checked(payload)

    def metrics(self) -> str:
        """Scrape the server's Prometheus text exposition page.

        Requires the served service to run with
        ``ServiceConfig(observability=True)``; otherwise the server
        rejects the op and this raises ``RuntimeError``.
        """
        return self._checked({"op": "metrics"})["text"]

    def trace(self) -> Dict[str, Any]:
        """Fetch the server's Chrome trace snapshot (as the parsed object).

        Save it with ``json.dump`` to a ``.json`` file and open it at
        https://ui.perfetto.dev.  Requires observability *and* tracing
        (``trace_events > 0``) on the served service.
        """
        return self._checked({"op": "trace"})["trace"]

    def canary(self, artifact: str, *, fraction: float = 0.25,
               gates: Optional[Dict[str, Any]] = None,
               watch: Any = None,
               tenant: Optional[str] = None) -> Dict[str, Any]:
        """Attach a canary for the artifact at ``artifact`` (a server-side
        path); optionally attach a meta-watcher (``watch=True`` or a
        WatchPolicy mapping) to be armed by the eventual promotion."""
        payload: Dict[str, Any] = {"op": "canary", "artifact": artifact,
                                   "fraction": fraction}
        if gates is not None:
            payload["gates"] = gates
        if watch is not None:
            payload["watch"] = watch
        if tenant is not None:
            payload["tenant"] = tenant
        return self._checked(payload)

    def canary_status(self, tenant: Optional[str] = None) -> Dict[str, Any]:
        """Evaluate the attached canary; returns the report dict.

        Against a cluster router the reply is the fleet shape instead:
        ``{"verdict": ..., "workers": {name: report}}``."""
        payload: Dict[str, Any] = {"op": "canary_status"}
        if tenant is not None:
            payload["tenant"] = tenant
        reply = self._checked(payload)
        return reply.get("report", reply)

    def canary_stop(self, tenant: Optional[str] = None) -> Dict[str, Any]:
        """Detach the canary without promoting; returns its final report."""
        payload: Dict[str, Any] = {"op": "canary_stop"}
        if tenant is not None:
            payload["tenant"] = tenant
        return self._checked(payload)

    def promote(self, *, force: bool = False,
                tenant: Optional[str] = None) -> Dict[str, Any]:
        """Promote the attached canary's candidate (gated unless forced)."""
        payload: Dict[str, Any] = {"op": "promote", "force": force}
        if tenant is not None:
            payload["tenant"] = tenant
        return self._checked(payload)

    def rollback(self, *, reason: str = "manual",
                 tenant: Optional[str] = None) -> Dict[str, Any]:
        """Hot-swap back to the pinned previous artifact."""
        payload: Dict[str, Any] = {"op": "rollback", "reason": reason}
        if tenant is not None:
            payload["tenant"] = tenant
        return self._checked(payload)

    def shutdown(self) -> Dict[str, Any]:
        return self._checked({"op": "shutdown"})

    def close(self) -> None:
        self._socket.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TCPClient(_ClientCore):
    """Blocking line-JSON client for :class:`AnomalyWireServer`.

    The CLI/smoke-flow producer -- it favours debuggability over
    throughput (one text round trip per sample).  For high-rate ingestion
    use :class:`BinaryClient` (batched float32 frames) or
    :class:`~repro.serve.AnomalyService` in process.  Despite the name it
    also connects over a Unix socket via ``uds_path=``.
    """

    protocol = "json"

    def __init__(self, host: str = "127.0.0.1", port: int = 7007,
                 timeout_s: Optional[float] = 30.0, *,
                 uds_path: Optional[Union[str, Path]] = None) -> None:
        super().__init__(host, port, timeout_s, uds_path=uds_path)
        self._file = self._socket.makefile("rwb")

    def _send(self, payload: Dict[str, Any]) -> None:
        self._file.write(_json_line(payload))
        self._file.flush()

    def _read_message(self) -> Optional[Dict[str, Any]]:
        line = self._file.readline()
        if not line:
            return None
        return json.loads(line.decode("utf-8"))

    def close(self) -> None:
        try:
            self._file.close()
        except (OSError, ValueError):
            pass
        finally:
            self._socket.close()


class BinaryClient(_ClientCore):
    """Blocking binary-protocol client (the compact ingest path).

    Speaks :mod:`repro.serve.wire` frames: samples travel as float32
    blocks, and :meth:`push_stream` batches ``chunk`` samples per PUSH
    frame -- one syscall and one ack per burst instead of per sample.
    Replies and alarm events are surfaced as the same dicts
    :class:`TCPClient` produces, so the two clients are drop-in
    interchangeable above the wire.
    """

    protocol = "binary"

    def __init__(self, host: str = "127.0.0.1", port: int = 7007,
                 timeout_s: Optional[float] = 30.0, *,
                 uds_path: Optional[Union[str, Path]] = None,
                 chunk: int = 64) -> None:
        if chunk < 1:
            raise ValueError("chunk must be at least 1")
        super().__init__(host, port, timeout_s, uds_path=uds_path)
        self.chunk = chunk
        self._decoder = wire.FrameDecoder()
        self._frames: List[wire.Frame] = []

    # -- framing ------------------------------------------------------------ #
    def _send(self, payload: Dict[str, Any]) -> None:
        self._socket.sendall(wire.encode(self._to_frame(payload)))

    @staticmethod
    def _to_frame(payload: Dict[str, Any]) -> wire.Frame:
        op = payload["op"]
        if op == "open":
            return wire.Open(payload["stream"], payload.get("max_samples"),
                             payload.get("tenant"))
        if op == "push":
            return wire.Push(payload["stream"], payload["values"])
        if op == "close":
            return wire.Close(payload["stream"])
        if op == "stats":
            return wire.Stats()
        if op == "snapshot":
            return wire.Snapshot()
        if op == "export_session":
            return wire.ExportSession(payload["stream"])
        if op == "import_session":
            # The wire frame always carries a tenant key; a single-artifact
            # server answers to the implicit "default" tenant.
            return wire.ImportSession(payload.get("tenant") or "default",
                                      payload["state"])
        if op == "ping":
            return wire.Ping()
        if op == "metrics":
            return wire.Metrics()
        if op == "trace":
            return wire.Trace()
        if op == "shutdown":
            return wire.Shutdown()
        if op in ("canary", "canary_status", "canary_stop",
                  "promote", "rollback"):
            raise ValueError(
                f"lifecycle op {op!r} is JSON-only; use the JSON protocol")
        raise ValueError(f"unknown op {op!r}")

    def _read_message(self) -> Optional[Dict[str, Any]]:
        while not self._frames:
            self._frames.extend(self._decoder.frames())
            if self._frames:
                break
            chunk = self._socket.recv(1 << 16)
            if not chunk:
                return None
            self._decoder.feed(chunk)
        return self._from_frame(self._frames.pop(0))

    @staticmethod
    def _from_frame(frame: wire.Frame) -> Dict[str, Any]:
        """Normalise a reply/event frame to its JSON-protocol dict shape."""
        if isinstance(frame, wire.AlarmEvent):
            event = {"event": "alarm", "stream": frame.stream,
                     "index": frame.index, "score": frame.score,
                     "threshold": frame.threshold}
            if frame.fingerprint is not None:
                event["fingerprint"] = frame.fingerprint
            return event
        if isinstance(frame, wire.OpenAck):
            return {"ok": True, "op": "open", "stream": frame.stream,
                    "window": frame.window, "incremental": frame.incremental,
                    "threshold": frame.threshold}
        if isinstance(frame, wire.PushAck):
            return {"ok": True, "op": "push", "accepted": frame.accepted}
        if isinstance(frame, wire.CloseAck):
            return {"ok": True, "op": "close", "stream": frame.stream,
                    "samples_pushed": frame.samples_pushed,
                    "samples_scored": frame.samples_scored,
                    "samples_dropped": frame.samples_dropped,
                    "adaptation_events": frame.adaptation_events}
        if isinstance(frame, wire.StatsAck):
            p99 = frame.queue_delay_p99_s
            return {"ok": True, "op": "stats",
                    "live_sessions": frame.live_sessions,
                    "samples_pushed": frame.samples_pushed,
                    "samples_scored": frame.samples_scored,
                    "samples_dropped": frame.samples_dropped,
                    "flushes": frame.flushes,
                    "mean_batch_size": frame.mean_batch_size,
                    "queue_delay_p99_s": None if np.isnan(p99) else p99}
        if isinstance(frame, wire.SnapshotAck):
            return {"ok": True, "op": "snapshot",
                    "snapshot": json.loads(frame.json_text)}
        if isinstance(frame, wire.ExportSessionAck):
            return {"ok": True, "op": "export_session",
                    "stream": frame.stream, "tenant": frame.tenant,
                    "state": frame.state}
        if isinstance(frame, wire.ImportSessionAck):
            return {"ok": True, "op": "import_session",
                    "stream": frame.stream}
        if isinstance(frame, wire.PingAck):
            return {"ok": True, "op": "ping"}
        if isinstance(frame, wire.ShutdownAck):
            return {"ok": True, "op": "shutdown"}
        if isinstance(frame, wire.MetricsAck):
            return {"ok": True, "op": "metrics", "text": frame.text}
        if isinstance(frame, wire.TraceAck):
            return {"ok": True, "op": "trace",
                    "trace": json.loads(frame.json_text)}
        if isinstance(frame, wire.ErrorReply):
            return {"ok": False,
                    "op": _OP_NAMES.get(frame.request_op),
                    "error": frame.message}
        raise ConnectionError(
            f"unexpected frame op 0x{frame.op:02X} from the server")

    # -- ops whose wire shape differs from JSON ----------------------------- #
    def push(self, stream_id: str, values) -> Dict[str, Any]:
        """Push one sample (or a ready-made ``(n, channels)`` block)."""
        block = np.asarray(values, dtype=np.float64)
        if block.ndim == 1:
            block = block[None, :]
        return self._checked({"op": "push", "stream": stream_id,
                              "values": block})

    def push_stream(self, stream_id: str, stream) -> int:
        """Push a whole recording, ``chunk`` samples per binary frame."""
        stream = np.asarray(stream, dtype=np.float64)
        if stream.ndim == 1:
            stream = stream[:, None]
        for start in range(0, stream.shape[0], self.chunk):
            self.push(stream_id, stream[start:start + self.chunk])
        return int(stream.shape[0])
