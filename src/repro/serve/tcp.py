"""Line-delimited JSON TCP transport for :class:`AnomalyService`.

A deliberately small wire protocol so any producer -- a robot cell's data
logger, a shell script, ``nc`` -- can stream samples into a running
service.  Every line is one JSON object, UTF-8, ``\\n``-terminated.

Requests (client -> server)::

    {"op": "open",  "stream": "cell-7"}            optional: "max_samples"
    {"op": "push",  "stream": "cell-7", "values": [0.1, 0.2, ...]}
    {"op": "close", "stream": "cell-7"}
    {"op": "stats"}
    {"op": "ping"}
    {"op": "shutdown"}                             stops the whole server

Every request gets exactly one reply, in request order::

    {"ok": true, "op": "push"}                     (+ op-specific fields)
    {"ok": false, "op": "push", "error": "..."}

Between replies the server interleaves unsolicited *event* lines for every
alarm raised by any stream of this connection (a line is an event iff it
carries an ``"event"`` key)::

    {"event": "alarm", "stream": "cell-7", "index": 412,
     "score": 3.1, "threshold": 1.9}

``close`` replies with the session summary (samples pushed/scored/dropped,
adaptation event count), so a producer gets its end-of-stream accounting
without a second channel.  Backpressure under the ``"reject"`` policy
surfaces as an ``ok: false`` push reply with ``"error": "queue full ..."``;
under ``"block"`` the reply is simply delayed -- TCP's own flow control
propagates the slowdown to the producer.

The server is :class:`AnomalyTCPServer` (asyncio, one task per connection);
:class:`TCPClient` is the blocking client used by the CLI smoke flow and
the tests.  Streams opened by a connection are closed (and drained) when
that connection drops, so a crashed producer cannot leak sessions.
"""

from __future__ import annotations

import asyncio
import json
import socket
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from .service import AnomalyService
from .session import ScoredSample

__all__ = ["AnomalyTCPServer", "TCPClient"]


def _event_line(sample: ScoredSample) -> bytes:
    payload = {
        "event": "alarm",
        "stream": sample.stream_id,
        "index": sample.index,
        "score": sample.score,
        "threshold": sample.threshold,
    }
    return (json.dumps(payload) + "\n").encode("utf-8")


class AnomalyTCPServer:
    """Serve an :class:`AnomalyService` over line-delimited JSON TCP."""

    def __init__(self, service: AnomalyService, host: str = "127.0.0.1",
                 port: int = 7007, *, allow_shutdown: bool = True) -> None:
        self.service = service
        self.host = host
        self.port = port
        #: honour the ``shutdown`` op (the smoke flow's clean-exit path);
        #: disable for servers that must only stop from their own host.
        self.allow_shutdown = allow_shutdown
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopping: Optional[asyncio.Event] = None

    @property
    def bound_port(self) -> int:
        """The actual port (useful with ``port=0`` ephemeral binding)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self,
                            port_file: Optional[Union[str, Path]] = None,
                            ready: Optional[asyncio.Event] = None) -> None:
        """Run service + listener until ``shutdown`` (or cancellation).

        ``port_file``, when given, receives the bound port as text once
        the listener is up -- a race-free handshake for scripted clients.
        ``ready`` is set at the same moment (for in-process callers).
        """
        self._stopping = asyncio.Event()
        await self.service.start()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port)
            try:
                if port_file is not None:
                    Path(port_file).write_text(str(self.bound_port) + "\n",
                                               encoding="utf-8")
                if ready is not None:
                    ready.set()
                await self._stopping.wait()
            finally:
                self._server.close()
                await self._server.wait_closed()
                self._server = None
        finally:
            await self.service.stop()

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to wind down (idempotent)."""
        if self._stopping is not None:
            self._stopping.set()

    # -- per-connection handling ------------------------------------------- #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        owned: List[str] = []
        # The forwarder filters on every stream this connection EVER owned,
        # not the live set: a close drains pending windows whose alarms are
        # broadcast before the close handler prunes `owned`, and those
        # end-of-stream alarms must still reach the client.  (Consequence:
        # do not reuse a closed stream id from a different connection.)
        ever_owned: set = set()
        alarm_task = asyncio.create_task(
            self._forward_alarms(writer, ever_owned))
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                reply = await self._dispatch(line, owned, ever_owned)
                writer.write((json.dumps(reply) + "\n").encode("utf-8"))
                await writer.drain()
                if reply.get("op") == "shutdown" and reply.get("ok"):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            alarm_task.cancel()
            try:
                await alarm_task
            except asyncio.CancelledError:
                pass
            # A dropped producer must not leak its sessions.
            for stream_id in owned:
                if stream_id in self.service.sessions:
                    try:
                        await self.service.close_session(stream_id)
                    except RuntimeError:
                        pass   # service already stopped
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _forward_alarms(self, writer: asyncio.StreamWriter,
                              ever_owned: set) -> None:
        async for alarm in self.service.alarms():
            if alarm.stream_id not in ever_owned:
                continue
            try:
                writer.write(_event_line(alarm))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                return

    async def _dispatch(self, line: bytes, owned: List[str],
                        ever_owned: set) -> Dict[str, Any]:
        try:
            message = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return {"ok": False, "op": None, "error": f"bad JSON line: {error}"}
        if not isinstance(message, dict) or "op" not in message:
            return {"ok": False, "op": None,
                    "error": "each line must be an object with an 'op' key"}
        op = message["op"]
        try:
            if op == "ping":
                return {"ok": True, "op": "ping"}
            if op == "stats":
                stats = self.service.stats()
                return {
                    "ok": True, "op": "stats",
                    "live_sessions": stats.live_sessions,
                    "samples_pushed": stats.samples_pushed,
                    "samples_scored": stats.samples_scored,
                    "samples_dropped": stats.samples_dropped,
                    "flushes": stats.flushes,
                    "mean_batch_size": stats.mean_batch_size,
                    "queue_delay_p99_s": _json_float(stats.queue_delay_p99_s),
                }
            if op == "open":
                stream_id = _required_stream(message)
                session = await self.service.open_session(
                    stream_id, max_samples=message.get("max_samples"))
                owned.append(stream_id)
                ever_owned.add(stream_id)
                threshold = session.threshold
                return {"ok": True, "op": "open", "stream": stream_id,
                        "window": self.service.detector.window,
                        "incremental": session.incremental_active,
                        "threshold": None if threshold is None
                        else threshold.threshold}
            if op == "push":
                stream_id = _required_stream(message)
                values = message.get("values")
                if not isinstance(values, list) or not values:
                    raise ValueError("push needs a non-empty 'values' array")
                if stream_id not in self.service.sessions:
                    owned.append(stream_id)   # auto-open path
                    ever_owned.add(stream_id)
                await self.service.push(stream_id, np.asarray(values,
                                                              dtype=np.float64))
                return {"ok": True, "op": "push"}
            if op == "close":
                stream_id = _required_stream(message)
                session = await self.service.close_session(stream_id)
                if stream_id in owned:
                    owned.remove(stream_id)
                return {"ok": True, "op": "close", "stream": stream_id,
                        "samples_pushed": session.samples_pushed,
                        "samples_scored": session.samples_scored,
                        "samples_dropped": session.samples_dropped,
                        "adaptation_events": len(session.adaptation_events)}
            if op == "shutdown":
                if not self.allow_shutdown:
                    raise ValueError("shutdown is disabled on this server")
                self.request_stop()
                return {"ok": True, "op": "shutdown"}
            raise ValueError(f"unknown op {op!r}")
        except (ValueError, TypeError, KeyError, RuntimeError) as error:
            # TypeError covers malformed client payloads (e.g. a string
            # max_samples) -- one error reply, never a dropped connection.
            return {"ok": False, "op": op, "error": str(error)}


def _required_stream(message: Dict[str, Any]) -> str:
    stream = message.get("stream")
    if not isinstance(stream, str) or not stream:
        raise ValueError(f"op {message['op']!r} needs a 'stream' string")
    return stream


def _json_float(value: float) -> Optional[float]:
    """NaN is not valid JSON; report it as null."""
    return float(value) if np.isfinite(value) else None


class TCPClient:
    """Blocking line-JSON client for :class:`AnomalyTCPServer`.

    Replies are matched to requests in order; unsolicited alarm events that
    arrive in between are collected on :attr:`alarms`.  The client is the
    CLI/smoke-flow producer -- it favours simplicity over throughput (one
    round trip per push; for high-rate ingestion use
    :class:`~repro.serve.AnomalyService` in process).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7007,
                 timeout_s: float = 30.0) -> None:
        self._socket = socket.create_connection((host, port),
                                                timeout=timeout_s)
        self._file = self._socket.makefile("rwb")
        #: alarm event payloads received so far (dicts, in arrival order)
        self.alarms: List[Dict[str, Any]] = []

    # -- plumbing ----------------------------------------------------------- #
    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request line; absorb events until its reply arrives."""
        self._file.write((json.dumps(payload) + "\n").encode("utf-8"))
        self._file.flush()
        while True:
            line = self._file.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            message = json.loads(line.decode("utf-8"))
            if "event" in message:
                self.alarms.append(message)
                continue
            return message

    def _checked(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        reply = self.request(payload)
        if not reply.get("ok"):
            raise RuntimeError(
                f"server rejected {payload.get('op')!r}: {reply.get('error')}"
            )
        return reply

    # -- the protocol, one method per op ------------------------------------ #
    def ping(self) -> Dict[str, Any]:
        return self._checked({"op": "ping"})

    def open(self, stream_id: str,
             max_samples: Optional[int] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "open", "stream": stream_id}
        if max_samples is not None:
            payload["max_samples"] = max_samples
        return self._checked(payload)

    def push(self, stream_id: str, values) -> Dict[str, Any]:
        return self._checked({
            "op": "push", "stream": stream_id,
            "values": [float(v) for v in np.asarray(values).ravel()],
        })

    def push_stream(self, stream_id: str, stream) -> int:
        """Push a whole ``(T, channels)`` recording; returns rows pushed."""
        stream = np.asarray(stream, dtype=np.float64)
        for row in stream:
            self.push(stream_id, row)
        return int(stream.shape[0])

    def close_stream(self, stream_id: str) -> Dict[str, Any]:
        return self._checked({"op": "close", "stream": stream_id})

    def stats(self) -> Dict[str, Any]:
        return self._checked({"op": "stats"})

    def shutdown(self) -> Dict[str, Any]:
        return self._checked({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "TCPClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
