"""Compact binary framing for the serving wire (``repro.serve.wire``).

At edge sample rates the line-JSON protocol spends more time boxing floats
and scanning for newlines than the model spends scoring -- serialization
dominates the ingest path.  This module defines the binary alternative: a
fixed 10-byte header followed by a struct-packed, op-specific payload, with
pushed samples travelling as raw little-endian float32 blocks (many samples
per frame, so one syscall and one ack amortise over a whole burst).

Frame layout (all integers little-endian)::

    offset  size  field
    0       4     magic     0xAB 'V' 'R' 'D'  (first byte is not valid JSON,
                            so the first byte of a connection negotiates the
                            protocol: 0xAB means binary, anything else means
                            line-delimited JSON)
    4       1     version   currently 1
    5       1     op        frame type (below)
    6       4     length    payload byte count (<= MAX_PAYLOAD)
    10      ...   payload   op-specific

Request ops (client -> server) mirror the JSON protocol one to one::

    0x01 OPEN            stream id + optional max_samples + optional tenant
    0x02 PUSH            stream id + (n_samples, n_channels) float32 block
    0x03 CLOSE           stream id
    0x04 STATS           empty
    0x05 PING            empty
    0x06 SHUTDOWN        empty
    0x07 METRICS         empty (Prometheus text exposition snapshot)
    0x08 TRACE           empty (Chrome trace JSON snapshot)
    0x09 SNAPSHOT        empty (rich JSON state: counters + histograms)
    0x0A EXPORT_SESSION  stream id (drain + detach for cluster handoff)
    0x0B IMPORT_SESSION  tenant + base64 state blob (attach a handoff)

Reply ops (server -> client; one reply per request, in request order)::

    0x81 OPEN_ACK            window, incremental flag, optional threshold
    0x82 PUSH_ACK            samples accepted
    0x83 CLOSE_ACK           session summary counters
    0x84 STATS_ACK           service counters + queue-delay p99
    0x85 PING_ACK            empty
    0x86 SHUTDOWN_ACK        empty
    0x87 METRICS_ACK         <I-length-prefixed UTF-8 Prometheus text
    0x88 TRACE_ACK           <I-length-prefixed UTF-8 Chrome trace JSON
    0x89 SNAPSHOT_ACK        <I-length-prefixed UTF-8 JSON snapshot
    0x8A EXPORT_SESSION_ACK  stream id, tenant, base64 state blob
    0x8B IMPORT_SESSION_ACK  stream id
    0xE1 ALARM_EVENT         unsolicited: stream id, index, score, threshold
    0xEE ERROR               echoed request op + UTF-8 message

The OPEN tenant key and the SNAPSHOT/EXPORT/IMPORT ops exist for
``repro.cluster``: the shard router opens tenant-qualified sessions on its
workers and re-homes live sessions between them when the worker ring
changes.  Session state blobs travel as base64 text (they are control-plane
payloads, not hot-path data) and handoff ops are refused by servers unless
explicitly enabled.  An OPEN frame without a tenant is byte-identical to
the pre-cluster encoding, so old clients and new servers interoperate.

Strings (stream ids, error messages) are ``<H``-length-prefixed UTF-8.
Sample blocks are C-ordered ``<f4``; the codec round-trips them
*bit-identically* (NaN payload bits, infinities and subnormals included --
the property suite in ``tests/test_serve/test_wire_properties.py`` holds it
to that).  Note the serving data model is float64: producers that need
exact float64 parity with the JSON protocol must push values that are
exactly representable in float32 (the wire is explicitly a compact,
reduced-precision ingest path).

:class:`FrameDecoder` is the streaming decoder: feed it bytes in whatever
chunks the transport delivers (frames may be coalesced or split
arbitrarily) and iterate complete frames out.  Malformed input raises a
:class:`WireProtocolError` subclass; framing corruption is not resyncable,
so servers answer with one ERROR frame and close the connection.

Example -- encode, then round-trip through an arbitrarily chunked stream:

>>> import numpy as np
>>> frame = Push("press-3", np.ones((2, 3), dtype=np.float32))
>>> data = encode(frame)
>>> data[:4] == MAGIC and data[5] == OP_PUSH
True
>>> decoded, consumed = decode_frame(data)
>>> decoded == frame and consumed == len(data)
True
>>> decoder = FrameDecoder()
>>> blob = encode(Open("press-3")) + encode(Ping())
>>> [type(f).__name__ for f in decoder.drain(blob[:7])]   # header split
[]
>>> [type(f).__name__ for f in decoder.drain(blob[7:])]
['Open', 'Ping']
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Type, Union

import numpy as np

__all__ = [
    "MAGIC", "VERSION", "HEADER", "MAX_PAYLOAD",
    "OP_OPEN", "OP_PUSH", "OP_CLOSE", "OP_STATS", "OP_PING", "OP_SHUTDOWN",
    "OP_METRICS", "OP_TRACE", "OP_SNAPSHOT", "OP_EXPORT_SESSION",
    "OP_IMPORT_SESSION",
    "OP_OPEN_ACK", "OP_PUSH_ACK", "OP_CLOSE_ACK", "OP_STATS_ACK",
    "OP_PING_ACK", "OP_SHUTDOWN_ACK", "OP_METRICS_ACK", "OP_TRACE_ACK",
    "OP_SNAPSHOT_ACK", "OP_EXPORT_SESSION_ACK", "OP_IMPORT_SESSION_ACK",
    "OP_ALARM_EVENT", "OP_ERROR",
    "WireProtocolError", "BadMagicError", "BadVersionError", "BadOpError",
    "FrameTooLargeError", "CorruptPayloadError",
    "Open", "Push", "Close", "Stats", "Ping", "Shutdown", "Metrics", "Trace",
    "Snapshot", "ExportSession", "ImportSession",
    "OpenAck", "PushAck", "CloseAck", "StatsAck", "PingAck", "ShutdownAck",
    "MetricsAck", "TraceAck", "SnapshotAck", "ExportSessionAck",
    "ImportSessionAck", "AlarmEvent", "ErrorReply",
    "Frame", "encode", "decode_frame", "FrameDecoder",
]

#: First byte 0xAB cannot start a JSON document, so one peeked byte decides
#: the protocol of a fresh connection.
MAGIC = b"\xabVRD"
VERSION = 1
HEADER = struct.Struct("<4sBBI")          # magic, version, op, payload length
#: Payload byte cap -- bounds both decoder buffering on hostile length
#: prefixes and the largest sample block one PUSH frame may carry.
MAX_PAYLOAD = 1 << 20

OP_OPEN = 0x01
OP_PUSH = 0x02
OP_CLOSE = 0x03
OP_STATS = 0x04
OP_PING = 0x05
OP_SHUTDOWN = 0x06
OP_METRICS = 0x07
OP_TRACE = 0x08
OP_SNAPSHOT = 0x09
OP_EXPORT_SESSION = 0x0A
OP_IMPORT_SESSION = 0x0B
OP_OPEN_ACK = 0x81
OP_PUSH_ACK = 0x82
OP_CLOSE_ACK = 0x83
OP_STATS_ACK = 0x84
OP_PING_ACK = 0x85
OP_SHUTDOWN_ACK = 0x86
OP_METRICS_ACK = 0x87
OP_TRACE_ACK = 0x88
OP_SNAPSHOT_ACK = 0x89
OP_EXPORT_SESSION_ACK = 0x8A
OP_IMPORT_SESSION_ACK = 0x8B
OP_ALARM_EVENT = 0xE1
OP_ERROR = 0xEE

_STR_LEN = struct.Struct("<H")
_TEXT_LEN = struct.Struct("<I")           # long UTF-8 text (metrics/trace)
_OPEN_TAIL = struct.Struct("<q")          # max_samples, -1 = None
_PUSH_HEAD = struct.Struct("<IH")         # n_samples, n_channels
_OPEN_ACK = struct.Struct("<IBBd")        # window, incremental, has_thr, thr
_PUSH_ACK = struct.Struct("<I")           # samples accepted
_CLOSE_ACK = struct.Struct("<4Q")         # pushed, scored, dropped, adaptation
_STATS_ACK = struct.Struct("<5Qdd")       # counters + mean batch + p99 delay
_ALARM = struct.Struct("<QdBd")           # index, score, has_thr, thr
_ERROR_HEAD = struct.Struct("<B")         # echoed request op (0 = unknown)


class WireProtocolError(ValueError):
    """Malformed binary wire input (framing or payload structure)."""


class BadMagicError(WireProtocolError):
    """The frame does not start with the protocol magic."""


class BadVersionError(WireProtocolError):
    """The frame carries an unsupported protocol version."""


class BadOpError(WireProtocolError):
    """The frame carries an unknown op code."""


class FrameTooLargeError(WireProtocolError):
    """The length prefix exceeds :data:`MAX_PAYLOAD`."""


class CorruptPayloadError(WireProtocolError):
    """The payload does not parse as its op's declared structure."""


# --------------------------------------------------------------------------- #
# String / float-block helpers
# --------------------------------------------------------------------------- #
def _pack_str(text: str) -> bytes:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise ValueError(f"string too long for the wire ({len(data)} bytes)")
    return _STR_LEN.pack(len(data)) + data


def _unpack_str(payload: bytes, offset: int) -> Tuple[str, int]:
    if offset + _STR_LEN.size > len(payload):
        raise CorruptPayloadError("truncated string length prefix")
    (length,) = _STR_LEN.unpack_from(payload, offset)
    offset += _STR_LEN.size
    if offset + length > len(payload):
        raise CorruptPayloadError(
            f"string length {length} exceeds the remaining payload"
        )
    try:
        text = payload[offset:offset + length].decode("utf-8")
    except UnicodeDecodeError as error:
        raise CorruptPayloadError(f"string is not valid UTF-8: {error}") \
            from error
    return text, offset + length


def _pack_text(text: str) -> bytes:
    """``<I``-length-prefixed UTF-8 for long documents (metrics, traces).

    The frame-level :data:`MAX_PAYLOAD` cap still applies at encode time,
    so the 32-bit prefix never admits unbounded buffering.
    """
    data = text.encode("utf-8")
    return _TEXT_LEN.pack(len(data)) + data


def _unpack_text(payload: bytes, offset: int) -> Tuple[str, int]:
    if offset + _TEXT_LEN.size > len(payload):
        raise CorruptPayloadError("truncated text length prefix")
    (length,) = _TEXT_LEN.unpack_from(payload, offset)
    offset += _TEXT_LEN.size
    if offset + length > len(payload):
        raise CorruptPayloadError(
            f"text length {length} exceeds the remaining payload"
        )
    try:
        text = payload[offset:offset + length].decode("utf-8")
    except UnicodeDecodeError as error:
        raise CorruptPayloadError(f"text is not valid UTF-8: {error}") \
            from error
    return text, offset + length


def _as_float32_block(samples) -> np.ndarray:
    block = np.asarray(samples)
    if block.ndim == 1:
        block = block[None, :]
    if block.ndim != 2:
        raise ValueError(
            f"sample blocks must be (n_samples, n_channels), "
            f"got ndim={block.ndim}"
        )
    return np.ascontiguousarray(block, dtype="<f4")


# --------------------------------------------------------------------------- #
# Frame types
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Open:
    """Open a scoring session (``max_samples=None`` = unbounded).

    ``tenant`` selects the packaged artifact on a multi-tenant cluster
    worker; it is encoded as an *optional trailing* string so a tenant-less
    OPEN stays byte-identical to the pre-cluster wire format (and old
    frames decode on new servers, and vice versa).
    """

    stream: str
    max_samples: Optional[int] = None
    tenant: Optional[str] = None

    op = OP_OPEN

    def encode_payload(self) -> bytes:
        max_samples = -1 if self.max_samples is None else int(self.max_samples)
        payload = _pack_str(self.stream) + _OPEN_TAIL.pack(max_samples)
        if self.tenant is not None:
            payload += _pack_str(self.tenant)
        return payload

    @classmethod
    def decode_payload(cls, payload: bytes) -> "Open":
        stream, offset = _unpack_str(payload, 0)
        if offset + _OPEN_TAIL.size > len(payload):
            raise CorruptPayloadError("OPEN payload has the wrong size")
        (max_samples,) = _OPEN_TAIL.unpack_from(payload, offset)
        offset += _OPEN_TAIL.size
        tenant = None
        if offset != len(payload):
            tenant, offset = _unpack_str(payload, offset)
            if offset != len(payload):
                raise CorruptPayloadError("OPEN payload has trailing bytes")
        return cls(stream, None if max_samples < 0 else max_samples, tenant)


class Push:
    """A batched sample block: ``samples`` is ``(n_samples, n_channels)``.

    Not a frozen dataclass because ndarray equality needs bitwise
    semantics: two pushes are equal iff their ids match and their float32
    blocks are byte-identical (NaN payloads included).
    """

    op = OP_PUSH
    __slots__ = ("stream", "samples")

    def __init__(self, stream: str, samples) -> None:
        self.stream = stream
        self.samples = _as_float32_block(samples)

    def __repr__(self) -> str:
        return (f"Push(stream={self.stream!r}, "
                f"samples=<{self.samples.shape[0]}x{self.samples.shape[1]} f4>)")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Push):
            return NotImplemented
        return (self.stream == other.stream
                and self.samples.shape == other.samples.shape
                and self.samples.tobytes() == other.samples.tobytes())

    def encode_payload(self) -> bytes:
        n_samples, n_channels = self.samples.shape
        return (_pack_str(self.stream)
                + _PUSH_HEAD.pack(n_samples, n_channels)
                + self.samples.tobytes())

    @classmethod
    def decode_payload(cls, payload: bytes) -> "Push":
        stream, offset = _unpack_str(payload, 0)
        if offset + _PUSH_HEAD.size > len(payload):
            raise CorruptPayloadError("truncated PUSH block header")
        n_samples, n_channels = _PUSH_HEAD.unpack_from(payload, offset)
        offset += _PUSH_HEAD.size
        expected = n_samples * n_channels * 4
        if len(payload) - offset != expected:
            raise CorruptPayloadError(
                f"PUSH declares {n_samples}x{n_channels} float32 samples "
                f"({expected} bytes) but carries {len(payload) - offset}"
            )
        block = np.frombuffer(payload, dtype="<f4", count=n_samples * n_channels,
                              offset=offset).reshape(n_samples, n_channels)
        push = cls.__new__(cls)
        push.stream = stream
        push.samples = block
        return push


@dataclass(frozen=True)
class Close:
    stream: str

    op = OP_CLOSE

    def encode_payload(self) -> bytes:
        return _pack_str(self.stream)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "Close":
        stream, offset = _unpack_str(payload, 0)
        if offset != len(payload):
            raise CorruptPayloadError("CLOSE payload has trailing bytes")
        return cls(stream)


def _payloadless(name: str, op_code: int):
    """Build a frame type whose payload is empty (STATS/PING/SHUTDOWN...)."""

    @classmethod
    def decode_payload(cls, payload: bytes):
        if payload:
            raise CorruptPayloadError(
                f"{name} frames carry no payload, got {len(payload)} bytes"
            )
        return cls()

    return dataclass(frozen=True)(type(name, (), {
        "op": op_code,
        "encode_payload": lambda self: b"",
        "decode_payload": decode_payload,
        "__annotations__": {},
    }))


Stats = _payloadless("Stats", OP_STATS)
Ping = _payloadless("Ping", OP_PING)
Shutdown = _payloadless("Shutdown", OP_SHUTDOWN)
Metrics = _payloadless("Metrics", OP_METRICS)
Trace = _payloadless("Trace", OP_TRACE)
Snapshot = _payloadless("Snapshot", OP_SNAPSHOT)
PingAck = _payloadless("PingAck", OP_PING_ACK)
ShutdownAck = _payloadless("ShutdownAck", OP_SHUTDOWN_ACK)


@dataclass(frozen=True)
class ExportSession:
    """Drain and detach one live session for a cluster handoff."""

    stream: str

    op = OP_EXPORT_SESSION

    def encode_payload(self) -> bytes:
        return _pack_str(self.stream)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "ExportSession":
        stream, offset = _unpack_str(payload, 0)
        if offset != len(payload):
            raise CorruptPayloadError(
                "EXPORT_SESSION payload has trailing bytes")
        return cls(stream)


@dataclass(frozen=True)
class ExportSessionAck:
    """The detached session: tenant key + base64 state blob.

    The blob stays base64 text end to end (message layer included) --
    handoffs are rare control-plane events, so the 4/3 size tax buys
    strict-JSON transparency on the line protocol and in logs.
    """

    stream: str
    tenant: str
    state: str

    op = OP_EXPORT_SESSION_ACK

    def encode_payload(self) -> bytes:
        return _pack_str(self.stream) + _pack_str(self.tenant) \
            + _pack_text(self.state)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "ExportSessionAck":
        stream, offset = _unpack_str(payload, 0)
        tenant, offset = _unpack_str(payload, offset)
        state, offset = _unpack_text(payload, offset)
        if offset != len(payload):
            raise CorruptPayloadError(
                "EXPORT_SESSION_ACK payload has trailing bytes")
        return cls(stream, tenant, state)


@dataclass(frozen=True)
class ImportSession:
    """Attach an exported session blob under the given tenant."""

    tenant: str
    state: str

    op = OP_IMPORT_SESSION

    def encode_payload(self) -> bytes:
        return _pack_str(self.tenant) + _pack_text(self.state)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "ImportSession":
        tenant, offset = _unpack_str(payload, 0)
        state, offset = _unpack_text(payload, offset)
        if offset != len(payload):
            raise CorruptPayloadError(
                "IMPORT_SESSION payload has trailing bytes")
        return cls(tenant, state)


@dataclass(frozen=True)
class ImportSessionAck:
    """Confirms the stream id now served by the importing worker."""

    stream: str

    op = OP_IMPORT_SESSION_ACK

    def encode_payload(self) -> bytes:
        return _pack_str(self.stream)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "ImportSessionAck":
        stream, offset = _unpack_str(payload, 0)
        if offset != len(payload):
            raise CorruptPayloadError(
                "IMPORT_SESSION_ACK payload has trailing bytes")
        return cls(stream)


@dataclass(frozen=True)
class SnapshotAck:
    """Rich service state as JSON text (counters, histogram states).

    Unlike STATS_ACK's fixed struct, the snapshot schema can grow without
    a wire version bump; :class:`repro.cluster.ClusterStats` merges these
    across workers.
    """

    json_text: str

    op = OP_SNAPSHOT_ACK

    def encode_payload(self) -> bytes:
        return _pack_text(self.json_text)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "SnapshotAck":
        text, offset = _unpack_text(payload, 0)
        if offset != len(payload):
            raise CorruptPayloadError("SNAPSHOT_ACK payload has trailing bytes")
        return cls(text)


@dataclass(frozen=True)
class MetricsAck:
    """Prometheus text exposition snapshot (UTF-8, format 0.0.4)."""

    text: str

    op = OP_METRICS_ACK

    def encode_payload(self) -> bytes:
        return _pack_text(self.text)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "MetricsAck":
        text, offset = _unpack_text(payload, 0)
        if offset != len(payload):
            raise CorruptPayloadError("METRICS_ACK payload has trailing bytes")
        return cls(text)


@dataclass(frozen=True)
class TraceAck:
    """Chrome trace snapshot, carried as its strict-JSON text.

    Kept as text (not re-parsed) so the frame round-trips byte-exactly
    and a dump can be written straight to a ``.json`` file for Perfetto.
    A full default ring (4096 events) serialises well under
    :data:`MAX_PAYLOAD`; far larger rings should be dumped through
    ``--trace-out`` or ``GET /trace`` instead, which have no frame cap.
    """

    json_text: str

    op = OP_TRACE_ACK

    def encode_payload(self) -> bytes:
        return _pack_text(self.json_text)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "TraceAck":
        text, offset = _unpack_text(payload, 0)
        if offset != len(payload):
            raise CorruptPayloadError("TRACE_ACK payload has trailing bytes")
        return cls(text)


@dataclass(frozen=True)
class OpenAck:
    stream: str
    window: int
    incremental: bool
    threshold: Optional[float]

    op = OP_OPEN_ACK

    def encode_payload(self) -> bytes:
        has_threshold = self.threshold is not None
        return _pack_str(self.stream) + _OPEN_ACK.pack(
            self.window, int(self.incremental), int(has_threshold),
            self.threshold if has_threshold else 0.0)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "OpenAck":
        stream, offset = _unpack_str(payload, 0)
        if offset + _OPEN_ACK.size != len(payload):
            raise CorruptPayloadError("OPEN_ACK payload has the wrong size")
        window, incremental, has_threshold, threshold = \
            _OPEN_ACK.unpack_from(payload, offset)
        return cls(stream, window, bool(incremental),
                   threshold if has_threshold else None)


@dataclass(frozen=True)
class PushAck:
    accepted: int

    op = OP_PUSH_ACK

    def encode_payload(self) -> bytes:
        return _PUSH_ACK.pack(self.accepted)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "PushAck":
        if len(payload) != _PUSH_ACK.size:
            raise CorruptPayloadError("PUSH_ACK payload has the wrong size")
        return cls(*_PUSH_ACK.unpack(payload))


@dataclass(frozen=True)
class CloseAck:
    stream: str
    samples_pushed: int
    samples_scored: int
    samples_dropped: int
    adaptation_events: int

    op = OP_CLOSE_ACK

    def encode_payload(self) -> bytes:
        return _pack_str(self.stream) + _CLOSE_ACK.pack(
            self.samples_pushed, self.samples_scored, self.samples_dropped,
            self.adaptation_events)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "CloseAck":
        stream, offset = _unpack_str(payload, 0)
        if offset + _CLOSE_ACK.size != len(payload):
            raise CorruptPayloadError("CLOSE_ACK payload has the wrong size")
        return cls(stream, *_CLOSE_ACK.unpack_from(payload, offset))


@dataclass(frozen=True)
class StatsAck:
    live_sessions: int
    samples_pushed: int
    samples_scored: int
    samples_dropped: int
    flushes: int
    mean_batch_size: float
    queue_delay_p99_s: float     #: NaN when nothing has been scored yet

    op = OP_STATS_ACK

    def encode_payload(self) -> bytes:
        return _STATS_ACK.pack(
            self.live_sessions, self.samples_pushed, self.samples_scored,
            self.samples_dropped, self.flushes, self.mean_batch_size,
            self.queue_delay_p99_s)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "StatsAck":
        if len(payload) != _STATS_ACK.size:
            raise CorruptPayloadError("STATS_ACK payload has the wrong size")
        return cls(*_STATS_ACK.unpack(payload))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StatsAck):
            return NotImplemented
        # NaN-tolerant equality so decode(encode(x)) == x holds for the
        # zero-samples p99 sentinel too.
        def same(a: float, b: float) -> bool:
            return a == b or (np.isnan(a) and np.isnan(b))

        return (
            (self.live_sessions, self.samples_pushed, self.samples_scored,
             self.samples_dropped, self.flushes)
            == (other.live_sessions, other.samples_pushed,
                other.samples_scored, other.samples_dropped, other.flushes)
            and same(self.mean_batch_size, other.mean_batch_size)
            and same(self.queue_delay_p99_s, other.queue_delay_p99_s)
        )

    __hash__ = None


@dataclass(frozen=True)
class AlarmEvent:
    """A pushed alarm notification.

    ``fingerprint`` identifies the artifact that scored the alarming
    sample; like :attr:`Open.tenant` it is an *optional trailing* string,
    so fingerprint-less events stay byte-identical to the pre-lifecycle
    wire format (old frames decode on new clients, and vice versa).
    """

    stream: str
    index: int
    score: float
    threshold: Optional[float]
    fingerprint: Optional[str] = None

    op = OP_ALARM_EVENT

    def encode_payload(self) -> bytes:
        has_threshold = self.threshold is not None
        payload = _pack_str(self.stream) + _ALARM.pack(
            self.index, self.score, int(has_threshold),
            self.threshold if has_threshold else 0.0)
        if self.fingerprint is not None:
            payload += _pack_str(self.fingerprint)
        return payload

    @classmethod
    def decode_payload(cls, payload: bytes) -> "AlarmEvent":
        stream, offset = _unpack_str(payload, 0)
        if offset + _ALARM.size > len(payload):
            raise CorruptPayloadError("ALARM_EVENT payload has the wrong size")
        index, score, has_threshold, threshold = \
            _ALARM.unpack_from(payload, offset)
        offset += _ALARM.size
        fingerprint = None
        if offset != len(payload):
            fingerprint, offset = _unpack_str(payload, offset)
            if offset != len(payload):
                raise CorruptPayloadError(
                    "ALARM_EVENT payload has trailing bytes")
        return cls(stream, index, score,
                   threshold if has_threshold else None, fingerprint)


@dataclass(frozen=True)
class ErrorReply:
    """Structured error: ``request_op`` echoes the offending frame's op.

    ``request_op`` 0 means the op could not be determined (framing-level
    corruption); after such an error the server closes the connection
    because the byte stream cannot be resynchronised.
    """

    request_op: int
    message: str

    op = OP_ERROR

    def encode_payload(self) -> bytes:
        data = self.message.encode("utf-8")[:0xFFFF]
        return _ERROR_HEAD.pack(self.request_op) + _STR_LEN.pack(len(data)) \
            + data

    @classmethod
    def decode_payload(cls, payload: bytes) -> "ErrorReply":
        if len(payload) < _ERROR_HEAD.size:
            raise CorruptPayloadError("truncated ERROR payload")
        (request_op,) = _ERROR_HEAD.unpack_from(payload, 0)
        message, offset = _unpack_str(payload, _ERROR_HEAD.size)
        if offset != len(payload):
            raise CorruptPayloadError("ERROR payload has trailing bytes")
        return cls(request_op, message)


Frame = Union[Open, Push, Close, Stats, Ping, Shutdown, Metrics, Trace,
              Snapshot, ExportSession, ImportSession,
              OpenAck, PushAck, CloseAck, StatsAck, PingAck, ShutdownAck,
              MetricsAck, TraceAck, SnapshotAck, ExportSessionAck,
              ImportSessionAck, AlarmEvent, ErrorReply]

_FRAME_TYPES: Tuple[Type, ...] = (
    Open, Push, Close, Stats, Ping, Shutdown, Metrics, Trace,
    Snapshot, ExportSession, ImportSession,
    OpenAck, PushAck, CloseAck, StatsAck, PingAck, ShutdownAck,
    MetricsAck, TraceAck, SnapshotAck, ExportSessionAck, ImportSessionAck,
    AlarmEvent, ErrorReply,
)
_DECODERS = {frame_type.op: frame_type for frame_type in _FRAME_TYPES}


# --------------------------------------------------------------------------- #
# Encode / decode
# --------------------------------------------------------------------------- #
def encode(frame: Frame) -> bytes:
    """Serialise one frame (header + payload) to bytes."""
    payload = frame.encode_payload()
    if len(payload) > MAX_PAYLOAD:
        raise FrameTooLargeError(
            f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD "
            f"({MAX_PAYLOAD}); split the sample block into smaller frames"
        )
    return HEADER.pack(MAGIC, VERSION, frame.op, len(payload)) + payload


def decode_frame(buffer: Union[bytes, bytearray, memoryview],
                 offset: int = 0) -> Tuple[Optional[Frame], int]:
    """Decode one frame at ``offset``; return ``(frame, next_offset)``.

    Returns ``(None, offset)`` when the buffer holds only part of the
    frame (read more bytes and retry); raises a :class:`WireProtocolError`
    subclass when what *is* there is malformed.  The oversized-length check
    runs as soon as the header is complete, so a hostile length prefix can
    never make the caller buffer gigabytes.
    """
    buffer = memoryview(buffer)
    available = len(buffer) - offset
    if available < 1:
        return None, offset
    # Validate the magic byte-by-byte as it arrives: corruption is
    # detectable from the very first byte, before a full header is read.
    prefix = bytes(buffer[offset:offset + min(available, len(MAGIC))])
    if prefix != MAGIC[:len(prefix)]:
        raise BadMagicError(
            f"bad frame magic {prefix!r} (expected {MAGIC!r}); "
            f"this does not look like the repro binary wire protocol"
        )
    if available < HEADER.size:
        return None, offset
    magic, version, op, length = HEADER.unpack_from(buffer, offset)
    if version != VERSION:
        raise BadVersionError(
            f"unsupported wire protocol version {version} "
            f"(this server speaks version {VERSION})"
        )
    if op not in _DECODERS:
        raise BadOpError(f"unknown op code 0x{op:02X}")
    if length > MAX_PAYLOAD:
        raise FrameTooLargeError(
            f"declared payload of {length} bytes exceeds MAX_PAYLOAD "
            f"({MAX_PAYLOAD})"
        )
    end = offset + HEADER.size + length
    if len(buffer) < end:
        return None, offset
    payload = bytes(buffer[offset + HEADER.size:end])
    return _DECODERS[op].decode_payload(payload), end


class FrameDecoder:
    """Streaming decoder: feed arbitrary chunks, iterate complete frames.

    Transports deliver bytes with no respect for frame boundaries -- one
    read may carry half a frame or twenty coalesced ones.  The decoder
    buffers exactly the unconsumed tail and compacts it after each drain,
    so memory stays bounded by one frame (enforced by ``MAX_PAYLOAD``) plus
    one read chunk.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._offset = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet decoded into a complete frame."""
        return len(self._buffer) - self._offset

    def feed(self, data: Union[bytes, bytearray, memoryview]) -> None:
        self._buffer.extend(data)

    def frames(self) -> Iterator[Frame]:
        """Yield every complete frame currently buffered (may be none)."""
        while True:
            frame, self._offset = decode_frame(self._buffer, self._offset)
            if frame is None:
                break
            yield frame
        if self._offset:
            del self._buffer[:self._offset]
            self._offset = 0

    def drain(self, data: Union[bytes, bytearray, memoryview] = b"") \
            -> List[Frame]:
        """``feed`` + collect all complete frames, as a list."""
        if data:
            self.feed(data)
        return list(self.frames())
