"""Latency-budgeted micro-batching scheduler for session scoring.

Real fleets deliver samples at unaligned, bursty rates; the accelerator-
friendly path is one big :meth:`~repro.core.detector.AnomalyDetector.
score_windows_batch` call, not one Python call per stream.
:class:`MicroBatcher` bridges the two: sessions enqueue
:class:`~repro.serve.session.WindowRequest`\\ s as their samples arrive, and
the batcher coalesces *whatever is pending right now* -- across all live
sessions -- into a single batched scoring call, flushing when ``max_batch``
requests are pending or when the oldest request has waited ``max_delay_ms``.

The batcher is a synchronous core with an injectable clock: the asyncio
:class:`~repro.serve.service.AnomalyService` drives it from its scheduler
task, the reimplemented :class:`repro.edge.MultiStreamRuntime` drives it
once per lockstep tick, and the Hypothesis property suite drives it with a
fake clock.  Scoring order inside a flush is FIFO across sessions, which
preserves per-session order; detectors' batched scoring is batch-invariant
(bit-identical per row regardless of batch composition -- the PR-1 parity
contract), so micro-batching never changes a score.  Requests pre-scored by
a session's incremental lane (:mod:`repro.serve.session`) ride through the
same queue for ordering and backpressure but skip the batched call.

Backpressure
------------

Each session may have at most ``max_queue`` requests pending.  When a
session's queue is full, ``backpressure`` picks the policy:

* ``"block"`` -- make room by flushing now (the async service instead makes
  the pusher *await* until the scheduler drains).  Chooses latency over
  loss: nothing is dropped, pushers slow to the scoring rate.
* ``"drop_oldest"`` -- discard the session's oldest pending request (its
  sample keeps a NaN score) and accept the new one.  Chooses freshness
  over completeness: right for monitoring dashboards where a stale window
  is worthless.
* ``"reject"`` -- raise :class:`QueueFullError` and accept nothing.
  Chooses explicitness: right for ingestion APIs that must tell the
  producer to back off (the TCP server turns it into an error reply).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from ..core.detector import AnomalyDetector
from ..edge.monitor import StreamingHistogram
from .session import ScoredSample, ScoringSession, WindowRequest

__all__ = ["BACKPRESSURE_POLICIES", "QueueFullError", "MicroBatcher",
           "validate_batcher_knobs"]

#: the accepted ``backpressure`` policy names
BACKPRESSURE_POLICIES = ("block", "drop_oldest", "reject")


class QueueFullError(RuntimeError):
    """A session's pending queue is full under the ``"reject"`` policy."""


def validate_batcher_knobs(max_batch: int, max_delay_ms: float,
                           max_queue: int, backpressure: str) -> None:
    """The one validator for the batcher knobs.

    Shared by :class:`MicroBatcher` and
    :class:`repro.serve.ServiceConfig` (and, through the latter,
    ``ServiceSpec``'s parse-time checks), so the accepted ranges and
    policies cannot diverge between spec parsing and service start.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be at least 1")
    if max_delay_ms < 0:
        raise ValueError("max_delay_ms must be non-negative")
    if max_queue < 1:
        raise ValueError("max_queue must be at least 1")
    if backpressure not in BACKPRESSURE_POLICIES:
        raise ValueError(
            f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
            f"got {backpressure!r}"
        )


class MicroBatcher:
    """Coalesce pending windows across sessions into one scoring call.

    Parameters
    ----------
    detector:
        The shared fitted detector.  Every enqueuing session must carry
        this same detector -- one model, many streams.
    max_batch:
        Flush as soon as this many requests are pending.
    max_delay_ms:
        Flush once the oldest pending request has waited this long, even if
        the batch is not full -- the latency budget.  ``0`` batches only
        what arrives between two scheduler wake-ups.
    max_queue:
        Per-session bound on pending requests.
    backpressure:
        ``"block"`` / ``"drop_oldest"`` / ``"reject"`` -- see the module
        docstring for when to pick which.
    clock:
        Monotonic time source (injectable for deterministic tests).
    record_batches:
        Keep per-flush sizes and wall-clock latencies (the bounded-run
        :class:`~repro.edge.FleetStats` consumes them).  Off by default:
        an unbounded service keeps only the streaming histograms.
    tracer:
        Optional :class:`repro.obs.TraceRecorder`.  When set, every flush
        records one ``"flush"`` span on the ``"batcher"`` track plus one
        ``"enqueue_to_score"`` span per request on that request's stream
        track.  ``None`` (the default) records nothing and adds no work
        to the flush path beyond two ``is None`` checks -- scores are
        bit-identical either way.  Construct the tracer with this same
        ``clock`` so span edges share the batcher's timebase.
    """

    def __init__(self, detector: AnomalyDetector, *, max_batch: int = 32,
                 max_delay_ms: float = 5.0, max_queue: int = 256,
                 backpressure: str = "block",
                 clock: Callable[[], float] = time.perf_counter,
                 record_batches: bool = False,
                 tracer=None) -> None:
        validate_batcher_knobs(max_batch, max_delay_ms, max_queue, backpressure)
        self.detector = detector
        self.max_batch = max_batch
        self.max_delay_ms = max_delay_ms
        self.max_queue = max_queue
        self.backpressure = backpressure
        self.clock = clock
        self.record_batches = record_batches
        self.tracer = tracer
        #: optional observer of every flushed batch (the canary shadow
        #: lane): called with the popped request list *after* scores are
        #: assigned and completions delivered.  The callee must not raise
        #: (:meth:`repro.lifecycle.CanaryController.observe_flush`
        #: guards itself); ``None`` costs one ``is None`` check per flush.
        self.shadow: Optional[Callable[[List[WindowRequest]], None]] = None
        self._pending: Deque[WindowRequest] = deque()
        self._per_session: Dict[int, int] = {}   # id(session) -> pending count
        # Telemetry: constant-memory tail-latency + occupancy histograms.
        self.queue_delay_histogram = StreamingHistogram.log_spaced(1e-6, 60.0)
        self.occupancy_histogram = StreamingHistogram.linear(
            0.5, max_batch + 0.5, max_batch)
        self.batch_sizes: List[int] = []
        self.batch_latencies_s: List[float] = []
        self.scoring_time_s = 0.0
        self.flushes = 0
        self.scored = 0
        self.dropped = 0

    # -- state ------------------------------------------------------------- #
    def pending_count(self, session: Optional[ScoringSession] = None) -> int:
        if session is None:
            return len(self._pending)
        return self._per_session.get(id(session), 0)

    def is_full(self, session: ScoringSession) -> bool:
        """Whether this session's queue is at its ``max_queue`` bound."""
        return self.pending_count(session) >= self.max_queue

    @property
    def max_delay_s(self) -> float:
        return self.max_delay_ms / 1000.0

    def due_at(self) -> Optional[float]:
        """Clock time at which the latency budget forces a flush."""
        if not self._pending:
            return None
        return self._pending[0].enqueued_at + self.max_delay_s

    def is_due(self, now: Optional[float] = None) -> bool:
        """Whether a flush is owed: batch full or oldest request over budget."""
        if len(self._pending) >= self.max_batch:
            return True
        due = self.due_at()
        if due is None:
            return False
        return (self.clock() if now is None else now) >= due

    # -- ingestion ---------------------------------------------------------- #
    def enqueue(self, request: WindowRequest) -> List[ScoredSample]:
        """Accept one submitted request, applying the backpressure policy.

        Returns the samples scored as a side effect (non-empty only under
        ``"block"``, which flushes to make room).  Raises
        :class:`QueueFullError` under ``"reject"`` when the session's queue
        is full; the refused request is discarded (its sample keeps a NaN
        score -- it already advanced the session's context window) so the
        session's completion order stays consistent.
        """
        session = request.session
        if session.detector is not self.detector:
            raise ValueError(
                "session and batcher must share one detector instance"
            )
        scored: List[ScoredSample] = []
        if self.is_full(session):
            if self.backpressure == "reject":
                session.discard(request)
                self.dropped += 1
                raise QueueFullError(
                    f"session {session.stream_id!r} has "
                    f"{self.pending_count(session)} pending windows "
                    f"(max_queue={self.max_queue})"
                )
            if self.backpressure == "drop_oldest":
                self._drop_oldest(session)
            else:  # block: make room by scoring now
                while self.is_full(session):
                    scored.extend(self.flush())
        request.enqueued_at = self.clock()
        self._pending.append(request)
        self._per_session[id(session)] = self.pending_count(session) + 1
        return scored

    def _drop_oldest(self, session: ScoringSession) -> None:
        for position, request in enumerate(self._pending):
            if request.session is session:
                del self._pending[position]
                self._release_slot(session)
                session.discard(request)
                self.dropped += 1
                return
        raise AssertionError("is_full() promised a pending request")  # pragma: no cover

    def _release_slot(self, session: ScoringSession) -> None:
        """Decrement a session's pending count, evicting emptied entries
        (long-running services see millions of short-lived sessions)."""
        key = id(session)
        remaining = self._per_session[key] - 1
        if remaining:
            self._per_session[key] = remaining
        else:
            del self._per_session[key]

    # -- flushing ----------------------------------------------------------- #
    def flush(self) -> List[ScoredSample]:
        """Score up to ``max_batch`` pending requests in one batched call.

        Requests that arrive pre-scored by their session's incremental lane
        (:attr:`~repro.serve.session.WindowRequest.score`) are completed
        without entering the batched call -- the gemm covers only the rows
        that still need scoring, and is skipped entirely when none do.
        Completion stays in FIFO pop order across both kinds, so
        per-session ordering is unchanged.
        """
        if not self._pending:
            return []
        take = min(len(self._pending), self.max_batch)
        batch: List[WindowRequest] = []
        for _ in range(take):
            request = self._pending.popleft()
            self._release_slot(request.session)
            batch.append(request)
        if any(request.score is not None for request in batch):
            unscored = [request for request in batch if request.score is None]
            prescored = {id(request) for request in batch
                         if request.score is not None}
        else:
            # All-batch flush (the fleet/lockstep hot path): no extra passes.
            unscored = batch
            prescored = frozenset()
        start = self.clock()
        if unscored:
            windows = np.stack([request.context for request in unscored])
            targets = np.stack([request.target for request in unscored])
            try:
                scores = self.detector.score_windows_batch(windows, targets)
            except Exception:
                # A poisoned batch (e.g. a mis-shaped sample) must not wedge
                # its sessions: the popped requests are discarded so
                # completion order stays consistent, then the error
                # propagates.
                for request in batch:
                    request.session.discard(request)
                    self.dropped += 1
                raise
            for row, request in enumerate(unscored):
                request.score = float(scores[row])
        end = self.clock()
        elapsed = end - start
        # Pre-scored rows paid their scoring cost at submit time; account it
        # here so scoring_time_s keeps meaning "time spent producing scores".
        inline_time = sum(request.score_latency_s for request in batch
                          if id(request) in prescored) if prescored else 0.0
        per_row = elapsed / len(unscored) if unscored else 0.0
        self.flushes += 1
        self.scored += take
        self.scoring_time_s += elapsed + inline_time
        self.occupancy_histogram.add(take)
        if self.record_batches:
            self.batch_sizes.append(take)
            self.batch_latencies_s.append(elapsed + inline_time)
        if self.tracer is not None:
            self.tracer.span("flush", "batcher", start, end,
                             batch=take, prescored=take - len(unscored),
                             pending=len(self._pending))
        results: List[ScoredSample] = []
        for request in batch:
            delay = end - request.enqueued_at
            self.queue_delay_histogram.add(delay)
            latency = request.score_latency_s if id(request) in prescored \
                else per_row
            if self.tracer is not None:
                self.tracer.span("enqueue_to_score",
                                 request.session.stream_id,
                                 request.enqueued_at, end,
                                 index=request.index)
            results.append(request.session.complete(
                request, request.score,
                latency_s=latency, queue_delay_s=delay,
            ))
        if self.shadow is not None:
            self.shadow(batch)
        return results

    def flush_due(self, now: Optional[float] = None) -> List[ScoredSample]:
        """Flush only if the batch is full or the latency budget expired."""
        if not self.is_due(now):
            return []
        return self.flush()

    def drain(self, session: Optional[ScoringSession] = None) -> List[ScoredSample]:
        """Flush until nothing is pending (for ``session``, or at all).

        Draining one session still scores full batches -- requests of other
        sessions that share those batches complete too (their results are
        included in the return value).
        """
        results: List[ScoredSample] = []
        while self._pending if session is None else self.pending_count(session):
            results.extend(self.flush())
        return results

    # -- reporting ---------------------------------------------------------- #
    def stats(self) -> Dict[str, float]:
        return {
            "flushes": float(self.flushes),
            "scored": float(self.scored),
            "dropped": float(self.dropped),
            "pending": float(len(self._pending)),
            "scoring_time_s": self.scoring_time_s,
            "mean_batch_size": self.scored / self.flushes if self.flushes
            else 0.0,
            "queue_delay_p50_s": self.queue_delay_histogram.p50,
            "queue_delay_p95_s": self.queue_delay_histogram.p95,
            "queue_delay_p99_s": self.queue_delay_histogram.p99,
            "occupancy_p50": self.occupancy_histogram.p50,
        }
