"""Asyncio front door: dynamic sessions, micro-batched scoring, alarm stream.

:class:`AnomalyService` is the push-based serving API VARADE's real-time
pitch implies: producers ``await service.push(stream_id, sample)`` at
whatever unaligned, bursty rates their sensors deliver, a single scheduler
task coalesces everything pending into micro-batches under a latency
budget, and consumers ``async for alarm in service.alarms()``.  Sessions
are created and closed dynamically -- there is no fixed fleet at
construction, unlike the lockstep :class:`repro.edge.MultiStreamRuntime`
this package supersedes.

The service is a thin asyncio shell over the deterministic synchronous
core (:class:`~repro.serve.session.ScoringSession` +
:class:`~repro.serve.batcher.MicroBatcher`), so its scores, alarms and
adaptation events are bit-identical to the sequential
:class:`repro.edge.StreamingRuntime` path -- the parity suite in
``tests/test_serve/`` holds it to that.
"""

from __future__ import annotations

import asyncio
import pickle
import time
from dataclasses import dataclass, field, replace
from typing import AsyncIterator, Dict, List, Optional, Sequence

import numpy as np

from ..core.calibration import CalibratedThreshold
from ..core.detector import AnomalyDetector
from ..drift.policy import AdaptationPolicy
from ..edge.monitor import StreamingHistogram
from ..obs import Observability
from .batcher import MicroBatcher, validate_batcher_knobs
from .session import Alarm, ScoredSample, ScoringSession

__all__ = ["ServiceConfig", "ServiceStats", "AnomalyService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`AnomalyService` (see ``spec.service``).

    ``max_batch`` / ``max_delay_ms`` / ``max_queue`` / ``backpressure``
    configure the micro-batcher (:mod:`repro.serve.batcher` documents the
    backpressure trade-offs).  ``event_buffer`` bounds each subscriber's
    event queue -- a slow consumer loses its *oldest* undelivered events
    rather than stalling scoring.  ``record_sessions`` keeps per-sample
    traces on every session (parity tests and bounded replays); leave it
    off for unbounded serving.  ``apply_scaler`` normalises pushed samples
    with the detector's carried training scaler, for producers that push
    raw sensor values.  ``incremental`` lets sessions score each sample
    with the detector's O(1)-per-sample incremental scorer as it arrives
    (bit-identical to the batched call, so purely a latency/throughput
    knob); detectors without an incremental path fall back to batch
    scoring regardless.

    ``observability`` builds a :class:`repro.obs.Observability` for the
    service: a Prometheus-renderable metrics registry (the ``metrics``
    wire op, :meth:`AnomalyService.metrics_text`) plus, when
    ``trace_events > 0``, a bounded ring of Chrome-trace events capturing
    flush spans, enqueue-to-score latencies, incremental-lane engagement
    and drift adaptations (the ``trace`` op,
    :meth:`AnomalyService.trace_export`).  Off by default: the disabled
    path runs the exact pre-observability instructions, scores
    bit-identical.  ``trace_events`` is the ring capacity -- the *oldest*
    events are evicted beyond it, so a dump always shows the most recent
    activity window.

    >>> ServiceConfig(observability=True, trace_events=1024).trace_events
    1024
    >>> ServiceConfig(trace_events=-1)
    Traceback (most recent call last):
        ...
    ValueError: trace_events must be non-negative
    """

    max_batch: int = 32
    max_delay_ms: float = 5.0
    max_queue: int = 256
    backpressure: str = "block"
    event_buffer: int = 1024
    record_sessions: bool = False
    apply_scaler: bool = False
    incremental: bool = True
    observability: bool = False
    trace_events: int = 4096

    def __post_init__(self) -> None:
        validate_batcher_knobs(self.max_batch, self.max_delay_ms,
                               self.max_queue, self.backpressure)
        if self.event_buffer < 1:
            raise ValueError("event_buffer must be at least 1")
        if self.trace_events < 0:
            raise ValueError("trace_events must be non-negative")


@dataclass
class ServiceStats:
    """Aggregate telemetry of one service (histograms, not traces)."""

    sessions_opened: int
    sessions_closed: int
    live_sessions: int
    samples_pushed: int
    samples_scored: int
    samples_dropped: int
    flushes: int
    scoring_time_s: float
    queue_delay_histogram: StreamingHistogram = field(repr=False)
    occupancy_histogram: StreamingHistogram = field(repr=False)
    alarms_total: int = 0
    sessions_exported: int = 0    #: sessions handed off to another worker
    sessions_imported: int = 0    #: sessions received from another worker

    @property
    def queue_delay_p99_s(self) -> float:
        return self.queue_delay_histogram.p99

    @property
    def mean_batch_size(self) -> float:
        return self.samples_scored / self.flushes if self.flushes else 0.0

    def to_dict(self) -> dict:
        """A JSON-safe snapshot (histograms via ``to_state``).

        This is the per-service schema of the ``snapshot`` wire op;
        :meth:`repro.cluster.ClusterStats.from_snapshots` merges a fleet
        of them back into one :class:`ServiceStats` via
        :meth:`~repro.edge.StreamingHistogram.merge`.
        """
        return {
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "live_sessions": self.live_sessions,
            "samples_pushed": self.samples_pushed,
            "samples_scored": self.samples_scored,
            "samples_dropped": self.samples_dropped,
            "flushes": self.flushes,
            "scoring_time_s": self.scoring_time_s,
            "alarms_total": self.alarms_total,
            "sessions_exported": self.sessions_exported,
            "sessions_imported": self.sessions_imported,
            "queue_delay_histogram": self.queue_delay_histogram.to_state(),
            "occupancy_histogram": self.occupancy_histogram.to_state(),
        }

    @classmethod
    def from_dict(cls, state: dict) -> "ServiceStats":
        return cls(
            sessions_opened=state["sessions_opened"],
            sessions_closed=state["sessions_closed"],
            live_sessions=state["live_sessions"],
            samples_pushed=state["samples_pushed"],
            samples_scored=state["samples_scored"],
            samples_dropped=state["samples_dropped"],
            flushes=state["flushes"],
            scoring_time_s=state["scoring_time_s"],
            alarms_total=state["alarms_total"],
            sessions_exported=state["sessions_exported"],
            sessions_imported=state["sessions_imported"],
            queue_delay_histogram=StreamingHistogram.from_state(
                state["queue_delay_histogram"]),
            occupancy_histogram=StreamingHistogram.from_state(
                state["occupancy_histogram"]),
        )


class _Subscriber:
    """One consumer of the event stream (optionally alarms only)."""

    def __init__(self, buffer: int, alarms_only: bool) -> None:
        self.queue: "asyncio.Queue[Optional[ScoredSample]]" = \
            asyncio.Queue(maxsize=buffer)
        self.alarms_only = alarms_only

    def offer(self, sample: ScoredSample) -> None:
        if self.alarms_only and not sample.alarm:
            return
        while True:
            try:
                self.queue.put_nowait(sample)
                return
            except asyncio.QueueFull:
                # Slow consumer: shed its oldest undelivered event instead
                # of stalling the scoring loop.
                try:
                    self.queue.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover - tiny race-free
                    pass

    def finish(self) -> None:
        while True:
            try:
                self.queue.put_nowait(None)
                return
            except asyncio.QueueFull:
                try:
                    self.queue.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover
                    pass


class AnomalyService:
    """Session-based anomaly scoring service with micro-batched inference.

    Usage::

        service = AnomalyService(detector, config=ServiceConfig(max_batch=64))
        await service.start()
        await service.open_session("cell-7")
        ...
        await service.push("cell-7", sample)        # backpressure-aware
        async for alarm in service.alarms():        # ScoredSample, alarm=True
            ...
        await service.close_session("cell-7")       # drains, then closes
        await service.stop()

    ``push`` auto-opens unknown sessions by default, so a producer can
    stream without a handshake; pass ``auto_open=False`` to require an
    explicit :meth:`open_session`.  All sessions share one detector and
    one micro-batcher; each gets its own independent threshold/adaptation
    lane.
    """

    def __init__(self, detector: AnomalyDetector, *,
                 config: Optional[ServiceConfig] = None,
                 threshold: Optional[CalibratedThreshold] = None,
                 adaptation: Optional[AdaptationPolicy] = None,
                 auto_open: bool = True,
                 alarm_sinks: Sequence = (),
                 fingerprint: Optional[str] = None) -> None:
        self.detector = detector
        self.config = config if config is not None else ServiceConfig()
        self.threshold = threshold
        self.adaptation = adaptation
        self.auto_open = auto_open
        #: fingerprint of the artifact ``detector`` was loaded from
        #: (``None`` for ad-hoc detectors).  Stamped on emitted alarms,
        #: exposed on ``/healthz`` + the ``repro_service_artifact_info``
        #: gauge, and updated by :meth:`swap_detector`.
        self.artifact_fingerprint = fingerprint
        #: the artifact pinned for instant rollback (set by
        #: :meth:`swap_detector`; consumed by :meth:`rollback`)
        self.previous_detector: Optional[AnomalyDetector] = None
        self.previous_fingerprint: Optional[str] = None
        #: structured alarm destinations (:mod:`repro.obs.alarms`), fed
        #: every alarming sample beside the wire subscribers.  The caller
        #: owns their lifecycle (``close()`` them after :meth:`stop`); a
        #: sink that raises is counted, not propagated.
        self.alarm_sinks = list(alarm_sinks)
        self._sessions: Dict[str, ScoringSession] = {}
        self._batcher: Optional[MicroBatcher] = None
        self._scheduler: Optional[asyncio.Task] = None
        self._work: Optional[asyncio.Event] = None
        self._batch_full: Optional[asyncio.Event] = None
        self._space: Optional[asyncio.Event] = None
        self._subscribers: List[_Subscriber] = []
        self._running = False
        self._failure: Optional[BaseException] = None
        self._pushed = 0
        self._opened = 0
        self._closed_count = 0
        self._blocked_pushers = 0
        self._n_channels: Optional[int] = None
        self._alarms_total = 0
        self._sink_errors = 0
        self._adaptation_folded = 0   # events of already-closed sessions
        self._exported = 0            # sessions handed off (cluster rebalance)
        self._imported = 0            # sessions received from another worker
        # Model-lifecycle state (canary / hot-swap / meta-watch).
        self._canary = None           # attached lifecycle.CanaryController
        self._watcher = None          # attached lifecycle.MetaWatcher
        self._swaps_total = 0
        self._rollbacks_total = 0
        self._migrated_total = 0      # sessions migrated across swaps
        self._canary_samples_folded = 0   # counters of stopped canaries
        self._canary_alarms_folded = 0
        self._canary_errors_folded = 0
        self._watch_breaches_folded = 0   # breaches of detached watchers
        self._artifact_info = None    # labelled info gauge (observability)
        self._info_labels: Optional[dict] = None
        #: the service's :class:`repro.obs.Observability` (``None`` unless
        #: ``config.observability`` -- the no-op default).
        self.observability: Optional[Observability] = None
        if self.config.observability:
            self.observability = Observability(
                trace_capacity=self.config.trace_events,
                clock=time.perf_counter)
            self._register_metrics(self.observability)

    # -- lifecycle --------------------------------------------------------- #
    async def start(self) -> "AnomalyService":
        if self._running:
            raise RuntimeError("service already started")
        if self._failure is not None:
            raise RuntimeError(
                "service failed while scoring and cannot be restarted; "
                "create a new AnomalyService"
            ) from self._failure
        self._batcher = MicroBatcher(
            self.detector,
            max_batch=self.config.max_batch,
            max_delay_ms=self.config.max_delay_ms,
            max_queue=self.config.max_queue,
            backpressure=self.config.backpressure,
            tracer=self._tracer,
        )
        if self._canary is not None:
            # A canary attached before a (re)start keeps shadow-scoring.
            self._batcher.shadow = self._canary.observe_flush
        self._work = asyncio.Event()
        self._batch_full = asyncio.Event()
        self._space = asyncio.Event()
        self._running = True
        self._scheduler = asyncio.create_task(self._run_scheduler(),
                                              name="repro-serve-scheduler")
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop scoring; by default drain pending windows first.

        After a scoring failure (see ``_fail``) stop is still safe to call:
        it reaps the dead scheduler task and skips the drain (the batcher
        state is what the failed flush left behind).
        """
        if not self._running and self._scheduler is None:
            return
        if self._watcher is not None:
            self._watcher.disarm()
        self._running = False
        self._work.set()           # wake the scheduler so it can exit
        self._batch_full.set()
        if self._scheduler is not None:
            await self._scheduler
            self._scheduler = None
        if drain and self._batcher is not None and self._failure is None:
            try:
                self._broadcast(self._batcher.drain())
            except BaseException as error:
                # The final drain can hit the same poisoned-batch failures
                # the scheduler guards against; unwedge pushers/subscribers
                # before surfacing it.
                self._fail(error)
                raise
        self._signal_space()       # release any pusher blocked on backpressure
        for subscriber in self._subscribers:
            subscriber.finish()
        self._subscribers = []

    async def __aenter__(self) -> "AnomalyService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- sessions ---------------------------------------------------------- #
    @property
    def sessions(self) -> Dict[str, ScoringSession]:
        """Read-only view of the live sessions by stream id."""
        return dict(self._sessions)

    def session(self, stream_id: str) -> ScoringSession:
        try:
            return self._sessions[stream_id]
        except KeyError:
            raise KeyError(f"no live session {stream_id!r}") from None

    async def open_session(self, stream_id: str, *,
                           max_samples: Optional[int] = None,
                           record: Optional[bool] = None) -> ScoringSession:
        """Create a new per-stream session (dynamic -- no fixed fleet)."""
        self._require_running()
        stream_id = str(stream_id)
        if stream_id in self._sessions:
            raise ValueError(f"session {stream_id!r} is already open")
        scaler = getattr(self.detector, "scaler", None) \
            if self.config.apply_scaler else None
        if self.config.apply_scaler and scaler is None:
            raise ValueError(
                "apply_scaler is enabled but the detector carries no scaler"
            )
        session = ScoringSession(
            self.detector, stream_id,
            threshold=self.threshold,
            adaptation=self.adaptation,
            scaler=scaler,
            max_samples=max_samples,
            record=self.config.record_sessions if record is None else record,
            incremental=self.config.incremental,
            tracer=self._tracer,
        )
        self._sessions[stream_id] = session
        self._opened += 1
        if self._tracer is not None:
            self._tracer.instant("session_open", stream_id)
        return session

    async def close_session(self, stream_id: str,
                            drain: bool = True) -> ScoringSession:
        """Close one session; its pending windows drain, others continue."""
        self._require_running()
        session = self.session(stream_id)
        session.close()
        if drain and self._batcher is not None:
            self._broadcast(self._batcher.drain(session))
            self._signal_space()
        del self._sessions[stream_id]
        self._closed_count += 1
        self._adaptation_folded += len(session.adaptation_events)
        if self._tracer is not None:
            self._tracer.instant("session_close", stream_id,
                                 scored=session.samples_scored)
        return session

    # -- handoff (cluster session re-homing) --------------------------------- #
    async def export_session(self, stream_id: str) -> bytes:
        """Drain and detach one live session, returning its state blob.

        The session is *not* closed -- it continues, bit-identically, on
        whichever service :meth:`import_session`\\ s the blob (the cluster
        router re-homes streams this way when the worker ring changes).
        Draining first preserves in-flight completion order: every window
        this service accepted is scored and broadcast here before the
        session travels.
        """
        self._require_running()
        session = self.session(stream_id)
        if self._batcher is not None:
            self._broadcast(self._batcher.drain(session))
            self._signal_space()
        state = session.export_state()
        del self._sessions[stream_id]
        self._exported += 1
        if self._tracer is not None:
            self._tracer.instant("session_export", stream_id,
                                 pushed=session.samples_pushed)
        return pickle.dumps(state, protocol=4)

    async def import_session(self, state_blob: bytes) -> ScoringSession:
        """Attach a session exported by another service over this detector.

        Only meaningful between services scoring the *same* artifact (the
        cluster keys workers by artifact fingerprint); the blob is a pickle
        produced by :meth:`export_session`, so wire servers only accept it
        on explicitly handoff-enabled (cluster-internal) endpoints.
        """
        self._require_running()
        state = pickle.loads(state_blob)
        stream_id = state["stream_id"]
        if stream_id in self._sessions:
            raise ValueError(f"session {stream_id!r} is already open")
        session = ScoringSession.from_state(self.detector, state,
                                            tracer=self._tracer)
        if session._ring is not None:
            n_channels = int(session._ring.shape[1])
            if self._n_channels is None:
                self._n_channels = n_channels
            elif n_channels != self._n_channels:
                raise ValueError(
                    f"imported session {stream_id!r} carries {n_channels} "
                    f"channels; this service scores "
                    f"{self._n_channels}-channel streams")
        self._sessions[stream_id] = session
        self._imported += 1
        return session

    # -- model lifecycle (canary / hot-swap / rollback) ---------------------- #
    @property
    def canary(self):
        """The attached :class:`repro.lifecycle.CanaryController` (or None)."""
        return self._canary

    @property
    def watcher(self):
        """The attached :class:`repro.lifecycle.MetaWatcher` (or None)."""
        return self._watcher

    def attach_canary(self, controller) -> None:
        """Start shadow-scoring ``controller``'s candidate on live traffic.

        The controller's :meth:`~repro.lifecycle.CanaryController.
        observe_flush` becomes the micro-batcher's ``shadow`` hook: every
        flushed batch is offered to it after the live scores are out, and
        the controller re-scores the shadowed slice with the candidate.
        One canary at a time -- two candidates sharing one shadow lane
        would double the overhead and muddle both verdicts.
        """
        self._require_running()
        if self._canary is not None:
            raise RuntimeError(
                "a canary is already active; stop_canary() it first")
        self._canary = controller
        self._batcher.shadow = controller.observe_flush
        if self._tracer is not None:
            self._tracer.instant(
                "canary_start", "service",
                fraction=controller.fraction,
                fingerprint=controller.fingerprint)

    def stop_canary(self):
        """Detach and return the active canary (its stats fold into ours)."""
        controller = self._canary
        if controller is None:
            raise RuntimeError("no canary is active")
        self._canary = None
        controller.stopped = True
        if self._batcher is not None:
            self._batcher.shadow = None
        self._canary_samples_folded += controller.samples
        self._canary_alarms_folded += controller.alarms
        self._canary_errors_folded += controller.errors
        if self._tracer is not None:
            self._tracer.instant("canary_stop", "service",
                                 samples=controller.samples,
                                 alarms=controller.alarms)
        return controller

    def attach_watcher(self, watcher) -> None:
        """Adopt a :class:`repro.lifecycle.MetaWatcher` for post-promotion
        health watching.  It arms automatically when :meth:`promote` swaps
        (and after a triggered rollback it stays attached, disarmed)."""
        if self._watcher is not None:
            self._watch_breaches_folded += self._watcher.breaches
            self._watcher.disarm()
        self._watcher = watcher

    def health_snapshot(self) -> dict:
        """Cumulative health counters for the meta-watcher (JSON-safe)."""
        batcher = self._batcher
        if batcher is None:
            raise RuntimeError("service was never started")
        return {
            "samples_scored": batcher.scored,
            "alarms_total": self._alarms_total,
            "sink_errors": self._sink_errors,
            "queue_delay": batcher.queue_delay_histogram.to_state(),
            "fingerprint": self.artifact_fingerprint,
        }

    async def swap_detector(self, detector: AnomalyDetector, *,
                            fingerprint: Optional[str] = None) -> int:
        """Hot-swap the serving model without dropping a sample.

        Drains every in-flight window (their scores broadcast under the
        *old* model -- the model that accepted them), migrates every live
        session onto ``detector`` via the bit-exact
        ``export_state``/``from_state`` path (PR 9's cluster re-homing
        primitive), re-resolves non-adaptive sessions' thresholds against
        the new model's calibration, and pins the old detector on
        :attr:`previous_detector` for instant :meth:`rollback`.  Runs
        atomically with respect to the event loop (no awaits inside), so
        no push can land between the drain and the swap.  Returns the
        number of migrated sessions.
        """
        from ..edge.runtime import resolve_threshold

        self._require_running()
        if detector is self.detector:
            raise ValueError("the replacement detector is already active")
        self._broadcast(self._batcher.drain())
        self._signal_space()
        adopted = resolve_threshold(self.threshold, detector)
        migrated: Dict[str, ScoringSession] = {}
        for stream_id, session in self._sessions.items():
            moved = ScoringSession.from_state(
                detector, session.export_state(), tracer=self._tracer)
            moved.adopt_threshold(adopted)
            migrated[stream_id] = moved
        self.previous_detector = self.detector
        self.previous_fingerprint = self.artifact_fingerprint
        self.detector = detector
        self.artifact_fingerprint = fingerprint
        self._batcher.detector = detector
        self._sessions = migrated
        self._swaps_total += 1
        self._migrated_total += len(migrated)
        self._set_artifact_info()
        if self._tracer is not None:
            self._tracer.instant("detector_swap", "service",
                                 migrated=len(migrated),
                                 fingerprint=fingerprint)
        return len(migrated)

    async def promote(self, *, force: bool = False) -> dict:
        """Evaluate the active canary and, gates willing, swap it live.

        Returns a JSON-safe result: ``promoted`` (bool), the evaluation
        ``report`` (:meth:`repro.lifecycle.CanaryReport.to_dict`), and on
        promotion the migrated-session count plus old/new fingerprints.
        With ``force=True`` the swap happens regardless of the verdict
        (the report still records it).  A promotion arms the attached
        meta-watcher, which will roll back automatically on regression.
        """
        self._require_running()
        if self._canary is None:
            raise RuntimeError(
                "no canary is active (attach_canary a candidate first)")
        report = self._canary.evaluate()
        result = {
            "promoted": False,
            "migrated_sessions": 0,
            "fingerprint": self.artifact_fingerprint,
            "report": report.to_dict(),
        }
        if not force and report.verdict != "promote":
            return result
        controller = self.stop_canary()
        migrated = await self.swap_detector(
            controller.candidate, fingerprint=controller.fingerprint)
        result.update(
            promoted=True,
            migrated_sessions=migrated,
            fingerprint=self.artifact_fingerprint,
            previous_fingerprint=self.previous_fingerprint,
        )
        if self._watcher is not None and not self._watcher.armed:
            self._watcher.arm(self)
        return result

    async def rollback(self, *, reason: str = "manual") -> dict:
        """Swap the pinned previous artifact back into every session."""
        self._require_running()
        if self.previous_detector is None:
            raise RuntimeError("no pinned previous detector to roll back to")
        migrated = await self.swap_detector(
            self.previous_detector, fingerprint=self.previous_fingerprint)
        self._rollbacks_total += 1
        if self._watcher is not None:
            self._watcher.disarm()
        if self._tracer is not None:
            self._tracer.instant("rollback", "service", reason=reason,
                                 fingerprint=self.artifact_fingerprint)
        return {
            "rolled_back": True,
            "reason": reason,
            "fingerprint": self.artifact_fingerprint,
            "migrated_sessions": migrated,
        }

    # -- ingestion ---------------------------------------------------------- #
    async def push(self, stream_id: str, values) -> None:
        """Ingest one sample for ``stream_id``, respecting backpressure.

        Under the ``"block"`` policy a full per-session queue makes this
        coroutine wait for the scheduler to drain -- it never deadlocks,
        because the scheduler task flushes independently.  Under
        ``"reject"`` a full queue raises
        :class:`~repro.serve.batcher.QueueFullError`; under
        ``"drop_oldest"`` the session's stalest pending window is shed.
        Alarms surface on :meth:`alarms` / :meth:`events`, not here.
        """
        self._require_running()
        stream_id = str(stream_id)
        session = self._sessions.get(stream_id)
        if session is None:
            if not self.auto_open:
                raise KeyError(
                    f"no session {stream_id!r} (auto_open is off; call "
                    f"open_session first)"
                )
            session = await self.open_session(stream_id)
        values = np.asarray(values, dtype=np.float64).ravel()
        if self._n_channels is None:
            self._n_channels = int(values.shape[0])
        elif values.shape[0] != self._n_channels:
            raise ValueError(
                f"stream {stream_id!r} pushed {values.shape[0]} channels; "
                f"this service scores {self._n_channels}-channel streams"
            )
        if self.config.backpressure == "block":
            while self._running and self._batcher.is_full(session):
                self._space.clear()
                # A stalled producer overrides the latency budget: flush now
                # rather than sleeping out max_delay_ms with a full queue.
                # The counter (checked synchronously by the scheduler before
                # it commits to a timed wait) closes the lost-wakeup race of
                # setting the event while the scheduler is mid-flush.
                self._blocked_pushers += 1
                try:
                    self._work.set()
                    self._batch_full.set()
                    await self._space.wait()
                finally:
                    self._blocked_pushers -= 1
            self._require_running()
            # The wait may have spanned a detector hot-swap, which migrates
            # every live session onto fresh ScoringSession objects -- re-fetch
            # so the sample lands in the live session, not the stale one.
            session = self._sessions.get(stream_id, session)
        request = session.submit(values)
        self._pushed += 1
        if request is None:
            return
        # Non-"block" policies are handled inside the core (drop/reject).
        self._broadcast(self._batcher.enqueue(request))
        self._work.set()
        if self._batcher.pending_count() >= self._batcher.max_batch:
            # Wake a scheduler sleeping out its latency budget: the batch
            # is full, there is nothing left to wait for.  (Idle->working
            # transitions ride on _work; per-push wake-ups would churn a
            # timer per sample.)
            self._batch_full.set()

    # -- event stream -------------------------------------------------------- #
    async def events(self) -> AsyncIterator[ScoredSample]:
        """Every scored sample, in scoring order, until :meth:`stop`."""
        async for sample in self._subscribe(alarms_only=False):
            yield sample

    async def alarms(self) -> AsyncIterator[Alarm]:
        """Only the samples that crossed their session's threshold."""
        async for sample in self._subscribe(alarms_only=True):
            yield sample

    async def _subscribe(self, alarms_only: bool) -> AsyncIterator[ScoredSample]:
        # A subscriber registered after stop() would wait forever: nothing
        # will ever broadcast to it or enqueue its end-of-stream marker.
        self._require_running()
        subscriber = _Subscriber(self.config.event_buffer, alarms_only)
        self._subscribers.append(subscriber)
        try:
            while True:
                sample = await subscriber.queue.get()
                if sample is None:
                    return
                yield sample
        finally:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    # -- telemetry ----------------------------------------------------------- #
    def stats(self) -> ServiceStats:
        batcher = self._batcher
        if batcher is None:
            raise RuntimeError("service was never started")
        return ServiceStats(
            sessions_opened=self._opened,
            sessions_closed=self._closed_count,
            live_sessions=len(self._sessions),
            samples_pushed=self._pushed,
            samples_scored=batcher.scored,
            samples_dropped=batcher.dropped,
            flushes=batcher.flushes,
            scoring_time_s=batcher.scoring_time_s,
            queue_delay_histogram=batcher.queue_delay_histogram,
            occupancy_histogram=batcher.occupancy_histogram,
            alarms_total=self._alarms_total,
            sessions_exported=self._exported,
            sessions_imported=self._imported,
        )

    # -- observability -------------------------------------------------------- #
    @property
    def _tracer(self):
        return self.observability.tracer \
            if self.observability is not None else None

    def _register_metrics(self, obs: Observability) -> None:
        """Register the service's metric families (all read-through).

        Every value is read at scrape time from the counters the hot path
        already maintains, so a scrape reconciles with :meth:`stats` by
        construction and an un-scraped service pays nothing.
        """
        registry = obs.registry

        def batcher_field(name: str, default: float = 0.0):
            return lambda: getattr(self._batcher, name, default) \
                if self._batcher is not None else default

        registry.counter(
            "repro_service_sessions_opened_total",
            "Sessions opened since service start.", fn=lambda: self._opened)
        registry.counter(
            "repro_service_sessions_closed_total",
            "Sessions closed since service start.",
            fn=lambda: self._closed_count)
        registry.gauge(
            "repro_service_sessions_live",
            "Currently open sessions.", fn=lambda: len(self._sessions))
        registry.gauge(
            "repro_service_sessions_incremental",
            "Open sessions scoring through the O(1) incremental lane.",
            fn=lambda: sum(1 for s in self._sessions.values()
                           if s.incremental_active))
        registry.counter(
            "repro_service_samples_pushed_total",
            "Samples ingested across all sessions.",
            fn=lambda: self._pushed)
        registry.counter(
            "repro_service_samples_scored_total",
            "Windows scored (batched + incremental).",
            fn=batcher_field("scored"))
        registry.counter(
            "repro_service_samples_dropped_total",
            "Windows shed by backpressure (drop_oldest / reject).",
            fn=batcher_field("dropped"))
        registry.counter(
            "repro_service_alarms_total",
            "Scored samples that crossed their session's threshold.",
            fn=lambda: self._alarms_total)
        registry.counter(
            "repro_service_adaptation_events_total",
            "Drift adaptations (recalibrations + refinements) across "
            "all sessions, live and closed.",
            fn=lambda: self._adaptation_folded + sum(
                len(s.adaptation_events) for s in self._sessions.values()))
        registry.counter(
            "repro_service_sessions_exported_total",
            "Sessions handed off to another worker (cluster rebalance).",
            fn=lambda: self._exported)
        registry.counter(
            "repro_service_sessions_imported_total",
            "Sessions received from another worker (cluster rebalance).",
            fn=lambda: self._imported)
        registry.counter(
            "repro_service_alarm_sink_errors_total",
            "Alarm-sink emit() calls that raised (and were swallowed).",
            fn=lambda: self._sink_errors)
        registry.gauge(
            "repro_service_blocked_pushers",
            "push() coroutines currently waiting on backpressure.",
            fn=lambda: self._blocked_pushers)
        registry.counter(
            "repro_batcher_flushes_total",
            "Micro-batch scoring calls issued.", fn=batcher_field("flushes"))
        registry.counter(
            "repro_batcher_scoring_seconds_total",
            "Wall-clock seconds spent producing scores.",
            fn=batcher_field("scoring_time_s"))
        registry.gauge(
            "repro_batcher_pending_windows",
            "Windows queued and not yet scored.",
            fn=lambda: self._batcher.pending_count()
            if self._batcher is not None else 0)
        registry.summary(
            "repro_batcher_queue_delay_seconds",
            "Enqueue-to-score latency per scored window.",
            histogram=lambda: self._batcher.queue_delay_histogram
            if self._batcher is not None
            else StreamingHistogram.log_spaced(1e-6, 60.0))
        registry.summary(
            "repro_batcher_batch_occupancy",
            "Requests coalesced per flush.",
            histogram=lambda: self._batcher.occupancy_histogram
            if self._batcher is not None
            else StreamingHistogram.linear(0.5, 1.5, 1))
        self._artifact_info = registry.gauge(
            "repro_service_artifact_info",
            "Identity of the active artifact (constant 1; a promotion "
            "moves the 1 to the new label set and zeroes the old).",
            labels=("fingerprint", "detector"))
        self._set_artifact_info()
        registry.gauge(
            "repro_lifecycle_canary_active",
            "Whether a canary is currently shadow-scoring (0/1).",
            fn=lambda: 1 if self._canary is not None else 0)
        registry.counter(
            "repro_lifecycle_canary_samples_total",
            "Windows shadow-scored by canary candidates (all canaries).",
            fn=lambda: self._canary_samples_folded
            + (self._canary.samples if self._canary is not None else 0))
        registry.counter(
            "repro_lifecycle_canary_alarms_total",
            "Would-be alarms raised by canary candidates (never emitted).",
            fn=lambda: self._canary_alarms_folded
            + (self._canary.alarms if self._canary is not None else 0))
        registry.counter(
            "repro_lifecycle_canary_errors_total",
            "Shadow-lane scoring errors (counted, swallowed).",
            fn=lambda: self._canary_errors_folded
            + (self._canary.errors if self._canary is not None else 0))
        registry.counter(
            "repro_lifecycle_swaps_total",
            "Detector hot-swaps (promotions + rollbacks).",
            fn=lambda: self._swaps_total)
        registry.counter(
            "repro_lifecycle_rollbacks_total",
            "Hot-swaps back to the pinned previous artifact.",
            fn=lambda: self._rollbacks_total)
        registry.counter(
            "repro_lifecycle_sessions_migrated_total",
            "Live sessions migrated across detector hot-swaps.",
            fn=lambda: self._migrated_total)
        registry.counter(
            "repro_lifecycle_watch_breaches_total",
            "Meta-watcher health-band breaches (all watchers).",
            fn=lambda: self._watch_breaches_folded
            + (self._watcher.breaches if self._watcher is not None else 0))
        if obs.tracer is not None:
            registry.gauge(
                "repro_trace_events_recorded",
                "Trace events currently held in the bounded ring.",
                fn=lambda: len(obs.tracer))
            registry.counter(
                "repro_trace_events_dropped_total",
                "Trace events evicted from the full ring (oldest first).",
                fn=lambda: obs.tracer.dropped)

    def _set_artifact_info(self) -> None:
        """Point the info gauge's ``1`` at the active artifact identity."""
        if self._artifact_info is None:
            return
        labels = {
            "fingerprint": self.artifact_fingerprint or "unknown",
            "detector": getattr(self.detector, "name",
                                type(self.detector).__name__),
        }
        if labels == self._info_labels:
            return
        if self._info_labels is not None:
            self._artifact_info.labels(**self._info_labels).set(0)
        self._artifact_info.labels(**labels).set(1)
        self._info_labels = labels

    def metrics_text(self) -> str:
        """Prometheus text exposition of the service's metrics registry.

        Raises ``RuntimeError`` when observability is disabled -- the wire
        servers turn that into a structured error reply.
        """
        if self.observability is None:
            raise RuntimeError(
                "observability is disabled "
                "(enable with ServiceConfig(observability=True))"
            )
        return self.observability.registry.render()

    def trace_export(self) -> dict:
        """The bounded trace ring as a Chrome/Perfetto trace object."""
        if self.observability is None or self.observability.tracer is None:
            raise RuntimeError(
                "tracing is disabled (enable with "
                "ServiceConfig(observability=True, trace_events=N))"
            )
        return self.observability.tracer.to_chrome()

    def trace_export_json(self) -> str:
        """:meth:`trace_export` serialised as strict JSON text."""
        if self.observability is None or self.observability.tracer is None:
            raise RuntimeError(
                "tracing is disabled (enable with "
                "ServiceConfig(observability=True, trace_events=N))"
            )
        return self.observability.tracer.dumps()

    # -- internals ------------------------------------------------------------ #
    def _require_running(self) -> None:
        if self._failure is not None:
            raise RuntimeError(
                f"service failed while scoring: {self._failure!r}"
            ) from self._failure
        if not self._running:
            raise RuntimeError("service is not running (call start())")

    def _fail(self, error: BaseException) -> None:
        """A scoring error is fatal: unwedge everyone instead of hanging.

        Blocked pushers wake (and get the failure from ``_require_running``),
        subscribers see end-of-stream, and every later call raises with the
        original error attached -- a crashed flush loop must never look like
        a healthy-but-slow service.
        """
        self._failure = error
        self._running = False
        self._signal_space()
        for subscriber in self._subscribers:
            subscriber.finish()
        self._subscribers = []

    def _signal_space(self) -> None:
        self._space.set()

    def _broadcast(self, samples: List[ScoredSample]) -> None:
        if not samples:
            return
        for sample in samples:
            if sample.alarm:
                if self.artifact_fingerprint is not None \
                        and sample.fingerprint is None:
                    # Stamp the active artifact on alarms (only): after a
                    # hot-swap an operator must be able to tell which model
                    # raised what.  Non-alarm samples skip the copy.
                    sample = replace(
                        sample, fingerprint=self.artifact_fingerprint)
                self._alarms_total += 1
                for sink in self.alarm_sinks:
                    try:
                        sink.emit(sample)
                    except Exception:
                        # A broken sink (full disk, dead callback) must not
                        # take scoring down; the error counter surfaces it.
                        self._sink_errors += 1
            for subscriber in self._subscribers:
                subscriber.offer(sample)

    async def _run_scheduler(self) -> None:
        """The one flush loop: batch-full flushes now, else by the deadline."""
        try:
            await self._scheduler_loop()
        except asyncio.CancelledError:  # pragma: no cover - defensive
            raise
        except BaseException as error:
            self._fail(error)

    async def _scheduler_loop(self) -> None:
        batcher = self._batcher
        while self._running:
            if not batcher.pending_count():
                self._work.clear()
                # Nothing pending: sleep until a push signals work.
                await self._work.wait()
                continue
            if batcher.pending_count() < batcher.max_batch \
                    and not self._blocked_pushers:
                due = batcher.due_at()
                delay = max(0.0, due - batcher.clock())
                if delay > 0:
                    # Wait out the latency budget; waking per push would
                    # spend more on timer churn than on scoring, so only
                    # flush-now signals cut the wait short: a full batch, a
                    # producer blocked on backpressure, or stop().  All of
                    # them want an immediate flush, so no re-check below.
                    self._batch_full.clear()
                    try:
                        await asyncio.wait_for(self._batch_full.wait(), delay)
                    except asyncio.TimeoutError:
                        pass
            if not self._running:
                break
            self._broadcast(batcher.flush())
            self._signal_space()
            # Yield so pushers/consumers run between batches even when the
            # queue never empties.
            await asyncio.sleep(0)
