"""Async serving API: session-based ingestion with micro-batched scoring.

VARADE's pitch is real-time multivariate anomaly detection on the edge; a
production deployment of it is a *service*: many streams, unaligned and
bursty sample arrival, sessions that come and go, one small model that
should spend its time in batched inference rather than per-call Python
overhead.  :mod:`repro.serve` is that serving layer, built from three
pieces that compose:

* :class:`ScoringSession` -- the per-stream handle.  Owns the stream's
  rolling context window, (optional) input scaler, resolved alarm
  threshold and an independent drift-adaptation lane;
  ``push(sample) -> Optional[Alarm]`` scores inline, while the
  ``submit``/``complete`` halves let a scheduler batch the scoring.
  Sessions are created and closed dynamically -- no fixed fleet.
* :class:`MicroBatcher` -- the latency-budgeted scheduler.  Coalesces the
  windows pending across *all* live sessions into one
  :meth:`~repro.core.detector.AnomalyDetector.score_windows_batch` call,
  flushing on ``max_batch`` or ``max_delay_ms``, with bounded per-session
  queues and an explicit backpressure policy (``"block"`` /
  ``"drop_oldest"`` / ``"reject"``).
* :class:`AnomalyService` -- the asyncio front door
  (``await service.push(stream_id, sample)``,
  ``async for alarm in service.alarms()``), plus the networked wire layer
  so out-of-process producers can stream samples in.  Wired into the
  pipeline as :meth:`repro.pipeline.Pipeline.deploy_service` and the CLI
  as ``repro serve``.

The wire layer itself is pluggable along two orthogonal axes:

* **Protocol** -- every connection's *first byte* negotiates it, no
  handshake round trip.  Line-delimited JSON (any byte but ``0xAB``) is
  the debuggability path: one object per line, usable from ``nc``.  The
  binary protocol (:mod:`repro.serve.wire`; first byte ``0xAB``) is the
  compact ingest path: struct-packed frames, float32 sample blocks,
  many samples per PUSH frame -- at edge sample rates JSON serialization
  otherwise dominates scoring (``benchmarks/bench_wire_protocol.py``
  gates >= 4x ingest throughput binary vs JSON).
* **Transport** -- :class:`AnomalyWireServer` listens on any
  :class:`~repro.serve.transport.Transport`: TCP
  (:class:`AnomalyTCPServer`, reachable off-host) or a Unix-domain
  socket (:class:`~repro.serve.transport.UnixSocketTransport`, for
  co-located producers -- no TCP/IP stack in the path, filesystem
  permissions gate access).  ``ServiceSpec``/``repro serve`` select via
  ``transport``/``protocol``/``uds_path`` knobs.

:class:`TCPClient` (JSON) and :class:`BinaryClient` (binary, batched
pushes) share one blocking request core, surface identical reply dicts,
both accept ``uds_path=`` to connect over a Unix socket, and both raise a
descriptive :class:`ServerTimeoutError` instead of hanging on a stalled or
half-closed server (``timeout_s``, default 30s).

Everything downstream of a session is bit-identical to the sequential
:class:`repro.edge.StreamingRuntime` path -- scores, alarms, NaN warm-up
prefix and adaptation events -- because batched scoring is batch-invariant
(the PR-1 parity contract) and sessions enforce per-stream completion
order.  ``tests/test_serve/`` holds the whole stack to that;
``benchmarks/bench_service_throughput.py`` measures the micro-batching
win at 32 unaligned streams.

The stack is observable in production via :mod:`repro.obs`: with
``ServiceConfig(observability=True)`` the service exposes a Prometheus
text page (``metrics`` op on both protocols, or ``repro serve
--metrics-port``), a Chrome/Perfetto trace of flush spans and
enqueue-to-score latencies (``trace`` op / ``--trace-out``), and
structured alarm sinks (``AnomalyService(alarm_sinks=...)``).  The
default-off path stays bit-identical and within noise of the
uninstrumented build.

Operational guidance -- backpressure-policy selection, latency-budget
tuning, the ``MultiStreamRuntime`` migration table, and every exported
metric -- lives in ``docs/OPERATIONS.md``; the package-by-package data
flow is mapped in ``docs/ARCHITECTURE.md``.
"""

from . import wire
from .batcher import BACKPRESSURE_POLICIES, MicroBatcher, QueueFullError
from .service import AnomalyService, ServiceConfig, ServiceStats
from .session import (Alarm, ScoredSample, ScoringSession, SessionClosedError,
                      WindowRequest)
from .tcp import (PROTOCOLS, AnomalyTCPServer, AnomalyWireServer,
                  BinaryClient, ServerTimeoutError, TCPClient,
                  write_endpoint_file)
from .transport import (HAS_UNIX_SOCKETS, TCPTransport, Transport,
                        UnixSocketTransport, make_transport)

__all__ = [
    "Alarm",
    "ScoredSample",
    "WindowRequest",
    "ScoringSession",
    "SessionClosedError",
    "BACKPRESSURE_POLICIES",
    "MicroBatcher",
    "QueueFullError",
    "AnomalyService",
    "ServiceConfig",
    "ServiceStats",
    "AnomalyWireServer",
    "AnomalyTCPServer",
    "TCPClient",
    "BinaryClient",
    "ServerTimeoutError",
    "PROTOCOLS",
    "Transport",
    "TCPTransport",
    "UnixSocketTransport",
    "make_transport",
    "HAS_UNIX_SOCKETS",
    "write_endpoint_file",
    "wire",
]
