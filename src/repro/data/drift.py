"""Concept-drift scenario generators with ground-truth drift marks.

The drift adaptation subsystem (:mod:`repro.drift`) needs streams whose
distribution shifts at a *known* sample so detection delay and recovery can
be measured against ground truth.  This module builds such streams: a clean
quasi-periodic base signal, short labelled anomaly bursts throughout, and
one of four drift transformations applied from ``drift_start`` on --

* ``mean_shift``    -- an additive step on the affected channels (a sensor
  re-mounted or re-zeroed, a changed operating point);
* ``gradual_ramp``  -- the same offset fading in linearly over ``ramp_len``
  samples (mechanical wear, slow thermal trends);
* ``sensor_gain``   -- a multiplicative gain change (an amplifier or ADC
  recalibration);
* ``channel_dropout`` -- the affected channels freeze at a constant fill
  value (a sensor or its link dying).

Anomaly bursts are injected *after* the drift transformation, so they stay
detectable relative to the drifted signal -- the scenario the adaptive
runtime must win: keep flagging true anomalies while absorbing the shift.

Everything is seeded and pure-functional; the injectors also work on any
``(T, channels)`` array (see :mod:`repro.robot.drift` for the robot-cell
recording variant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DriftScenario",
    "DRIFT_KINDS",
    "inject_mean_shift",
    "inject_gradual_ramp",
    "inject_sensor_gain",
    "inject_channel_dropout",
    "build_drift_scenario",
]

DRIFT_KINDS = ("mean_shift", "gradual_ramp", "sensor_gain", "channel_dropout")


@dataclass
class DriftScenario:
    """A drift benchmark stream plus all its ground truth."""

    kind: str
    train: np.ndarray        # clean normal stream for fit/calibration, (T0, C)
    stream: np.ndarray       # test stream: anomalies + drift applied, (T, C)
    labels: np.ndarray       # (T,) anomaly ground truth of ``stream``
    drift_mask: np.ndarray   # (T,) bool, True where the distribution is shifted

    @property
    def drift_start(self) -> int:
        """Index of the first drifted sample (-1 when the mask is empty)."""
        hits = np.flatnonzero(self.drift_mask)
        return int(hits[0]) if hits.size else -1

    @property
    def n_channels(self) -> int:
        return int(self.stream.shape[1])


def _resolve_channels(n_channels: int,
                      channels: Optional[Sequence[int]]) -> np.ndarray:
    if channels is None:
        return np.arange(n_channels)
    index = np.asarray(channels, dtype=np.int64)
    if index.size == 0:
        raise ValueError("channels must name at least one channel")
    if (index < 0).any() or (index >= n_channels).any():
        raise ValueError(f"channel indices must lie in [0, {n_channels})")
    return index


def _check_start(n_samples: int, start: int) -> None:
    if not 0 <= start < n_samples:
        raise ValueError(f"drift start {start} outside the stream [0, {n_samples})")


def inject_mean_shift(data: np.ndarray, start: int, magnitude: float,
                      channels: Optional[Sequence[int]] = None
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Add a step of ``magnitude`` to ``channels`` from ``start`` on.

    Returns ``(shifted_copy, drift_mask)``; the input is not modified.
    """
    data = np.array(data, dtype=np.float64, copy=True)
    _check_start(data.shape[0], start)
    index = _resolve_channels(data.shape[1], channels)
    data[start:, index] += magnitude
    mask = np.zeros(data.shape[0], dtype=bool)
    mask[start:] = True
    return data, mask


def inject_gradual_ramp(data: np.ndarray, start: int, magnitude: float,
                        ramp_len: int,
                        channels: Optional[Sequence[int]] = None
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Fade an offset in linearly over ``ramp_len`` samples, then hold it."""
    data = np.array(data, dtype=np.float64, copy=True)
    _check_start(data.shape[0], start)
    if ramp_len < 1:
        raise ValueError("ramp_len must be at least 1")
    index = _resolve_channels(data.shape[1], channels)
    n_samples = data.shape[0]
    profile = np.zeros(n_samples)
    ramp_end = min(start + ramp_len, n_samples)
    profile[start:ramp_end] = np.linspace(0.0, 1.0, ramp_end - start,
                                          endpoint=False)
    profile[ramp_end:] = 1.0
    data[:, index] += magnitude * profile[:, None]
    mask = np.zeros(n_samples, dtype=bool)
    mask[start:] = True
    return data, mask


def inject_sensor_gain(data: np.ndarray, start: int, gain: float,
                       channels: Optional[Sequence[int]] = None
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Multiply ``channels`` by ``gain`` from ``start`` on."""
    data = np.array(data, dtype=np.float64, copy=True)
    _check_start(data.shape[0], start)
    if gain <= 0:
        raise ValueError("gain must be positive")
    index = _resolve_channels(data.shape[1], channels)
    data[start:, index] *= gain
    mask = np.zeros(data.shape[0], dtype=bool)
    mask[start:] = True
    return data, mask


def inject_channel_dropout(data: np.ndarray, start: int,
                           channels: Sequence[int], fill: float = 0.0
                           ) -> Tuple[np.ndarray, np.ndarray]:
    """Freeze ``channels`` at ``fill`` from ``start`` on (a dead sensor)."""
    data = np.array(data, dtype=np.float64, copy=True)
    _check_start(data.shape[0], start)
    if channels is None:
        raise ValueError("channel_dropout needs an explicit channel list: "
                         "dropping every channel leaves nothing to score")
    index = _resolve_channels(data.shape[1], channels)
    if index.size >= data.shape[1]:
        raise ValueError("channel_dropout must leave at least one live channel")
    data[start:, index] = fill
    mask = np.zeros(data.shape[0], dtype=bool)
    mask[start:] = True
    return data, mask


def _base_stream(n_samples: int, n_channels: int,
                 rng: np.random.Generator) -> np.ndarray:
    """Quasi-periodic multi-channel base signal with mild noise."""
    t = np.arange(n_samples) / 50.0
    channels = [
        np.sin(2.0 * np.pi * (0.4 + 0.13 * c) * t + 0.9 * c)
        + 0.3 * np.cos(2.0 * np.pi * (0.11 + 0.05 * c) * t)
        + 0.05 * rng.normal(size=n_samples)
        for c in range(n_channels)
    ]
    return np.stack(channels, axis=1)


def _inject_anomalies(stream: np.ndarray, rng: np.random.Generator,
                      n_bursts: int, burst_len: int,
                      magnitude: float, guard: int) -> np.ndarray:
    """Add short large additive bursts; returns the per-sample labels."""
    n_samples, n_channels = stream.shape
    labels = np.zeros(n_samples, dtype=np.int64)
    occupied = np.zeros(n_samples, dtype=bool)
    placed = 0
    attempts = 0
    while placed < n_bursts and attempts < n_bursts * 50:
        attempts += 1
        start = int(rng.integers(guard, n_samples - burst_len))
        lo, hi = max(start - guard, 0), min(start + burst_len + guard, n_samples)
        if occupied[lo:hi].any():
            continue
        occupied[start:start + burst_len] = True
        hit = rng.choice(n_channels, size=max(n_channels // 2, 1), replace=False)
        sign = rng.choice((-1.0, 1.0))
        stream[start:start + burst_len, hit] += sign * magnitude
        labels[start:start + burst_len] = 1
        placed += 1
    return labels


def build_drift_scenario(kind: str = "mean_shift", *,
                         n_train: int = 1200, n_test: int = 2400,
                         n_channels: int = 6, drift_start: int = 1200,
                         magnitude: float = 0.8, gain: float = 1.8,
                         ramp_len: int = 400,
                         channels: Optional[Sequence[int]] = None,
                         n_anomalies: int = 24, anomaly_len: int = 5,
                         anomaly_magnitude: float = 6.0,
                         seed: int = 0) -> DriftScenario:
    """Build a seeded drift scenario with anomalies and drift ground truth.

    The train stream is clean (no anomalies, no drift); the test stream
    carries ``n_anomalies`` labelled bursts throughout and the ``kind``
    drift from ``drift_start`` on.  ``channels`` restricts the drift to a
    channel subset (default: all channels for the additive/multiplicative
    kinds, the first half of the channels for ``channel_dropout``, which
    must leave live channels behind).

    ``anomaly_magnitude`` should stay well clear of the drift magnitude:
    online recalibration can only distinguish anomalies from a shifted
    normal regime when the anomaly scores sit comfortably above the shifted
    normal score tail (about 2x is a safe margin for the quantile
    calibrators; anomalies closer than that to the post-drift tail risk
    being absorbed into an online recalibration, a limitation the
    adaptation metrics make visible).
    """
    if kind not in DRIFT_KINDS:
        raise ValueError(f"kind must be one of {DRIFT_KINDS}, got {kind!r}")
    rng = np.random.default_rng(seed)
    train = _base_stream(n_train, n_channels, rng)
    base = _base_stream(n_test, n_channels, rng)

    if kind == "mean_shift":
        stream, mask = inject_mean_shift(base, drift_start, magnitude, channels)
    elif kind == "gradual_ramp":
        stream, mask = inject_gradual_ramp(base, drift_start, magnitude,
                                           ramp_len, channels)
    elif kind == "sensor_gain":
        stream, mask = inject_sensor_gain(base, drift_start, gain, channels)
    else:
        if channels is None:
            channels = tuple(range(max(n_channels // 2, 1)))
        stream, mask = inject_channel_dropout(base, drift_start, channels)

    labels = _inject_anomalies(stream, rng, n_bursts=n_anomalies,
                               burst_len=anomaly_len,
                               magnitude=anomaly_magnitude,
                               guard=4 * anomaly_len)
    return DriftScenario(kind=kind, train=train, stream=stream,
                         labels=labels, drift_mask=mask)
